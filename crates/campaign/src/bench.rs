//! The `sta bench` perf-trajectory harness.
//!
//! Performance work on a solver is only trustworthy against a pinned
//! workload measured the same way every time. This module provides:
//!
//! * named, pinned campaign suites ([`suite`]) — the job lists never
//!   change shape, so two `BENCH_*.json` files measure the same work;
//! * [`run_suite`] — runs a suite `reps` times, takes per-job *medians*
//!   of wall/encode/search time (medians shrug off one noisy rep), and
//!   merges the per-rep latency histograms;
//! * a schema-versioned JSON format ([`BenchResult::to_json`] /
//!   [`parse_result`]) with an environment block (CPU count, OS/arch,
//!   commit) so a trajectory file records where it came from;
//! * [`diff`] — compares a candidate against a baseline file and flags
//!   per-job wall-time regressions past a percentage threshold (with an
//!   absolute floor so microsecond jitter on trivial jobs cannot trip
//!   it), plus verdict changes, which are always flagged.
//!
//! The CLI wires this to `sta bench` (see `src/bin/sta.rs`); `verify.sh`
//! runs the smoke suite once per commit and self-diffs the checked-in
//! baseline to keep the schema and the diff path honest.

use crate::histogram::LatencyHistogram;
use crate::pool::{run_with, RunOptions};
use crate::report::CampaignReport;
use crate::spec::CampaignSpec;
use sta_core::attack::{AttackModel, StateTarget};
use sta_core::synthesis::SynthesisConfig;
use sta_grid::{ieee14, BusId};
use sta_smt::json::{escape_into, parse, Json};
use std::fmt::Write as _;

/// Version tag of the `BENCH_*.json` schema. Bump on any breaking field
/// change; [`parse_result`] rejects files from other schema versions.
pub const SCHEMA: &str = "sta-bench/v1";

/// Jitter floor for regression flagging: a job must slow down by more
/// than this many microseconds *and* by more than the percentage
/// threshold to count as regressed.
pub const MIN_REGRESSION_US: u64 = 1000;

/// Returns the pinned campaign spec of a named bench suite, or `None`
/// for unknown names. Suites are part of the measurement contract:
/// editing one invalidates every existing baseline file for it.
pub fn suite(name: &str) -> Option<CampaignSpec> {
    match name {
        "smoke" => {
            let mut spec = CampaignSpec::new("bench-smoke");
            let case = spec.add_case("ieee14", ieee14::system());
            spec.verify(
                case,
                "open-11",
                AttackModel::new(14).target(BusId(11), StateTarget::MustChange),
            );
            spec.verify(
                case,
                "capped-7",
                AttackModel::new(14)
                    .target(BusId(7), StateTarget::MustChange)
                    .max_altered_measurements(10)
                    .max_compromised_buses(4),
            );
            spec.verify(
                case,
                "blocked",
                AttackModel::new(14).max_altered_measurements(0),
            );
            spec.verify(
                case,
                "limited-knowledge",
                AttackModel::new(14).unknown_lines(20, &[2, 16]),
            );
            spec.synthesize(
                case,
                "synth-budget-3",
                AttackModel::new(14)
                    .target(BusId(11), StateTarget::MustChange)
                    .max_altered_measurements(8),
                SynthesisConfig::with_budget(3),
            );
            Some(spec)
        }
        "sweep" => Some(CampaignSpec::standard_sweep("ieee14", ieee14::system())),
        // Paired warm/cold CEGIS runs: the same attacker and budget, once
        // on the persistent incremental cores and once on the
        // clone-per-check baseline. Diffing `warm-*` against `cold-*`
        // rows in one trajectory point is the solver-reuse speedup story.
        "cegis" => {
            let mut spec = CampaignSpec::new("bench-cegis");
            let case = spec.add_case("ieee14-unsecured", ieee14::system_unsecured());
            let attacker = AttackModel::new(14)
                .target(BusId(11), StateTarget::MustChange)
                .max_altered_measurements(8);
            for budget in [3usize, 4] {
                spec.synthesize(
                    case,
                    format!("warm-budget-{budget}"),
                    attacker.clone(),
                    SynthesisConfig::with_budget(budget),
                );
                spec.synthesize(
                    case,
                    format!("cold-budget-{budget}"),
                    attacker.clone(),
                    SynthesisConfig::with_budget(budget).with_incremental(false),
                );
            }
            Some(spec)
        }
        _ => None,
    }
}

/// Names of the available suites (for usage messages).
pub fn suite_names() -> &'static [&'static str] {
    &["smoke", "sweep", "cegis"]
}

/// Bus counts of the `scale` suite — the paper's §V-B scalability ladder,
/// extended past the dense tableau's practical ceiling by the revised
/// simplex (1354- and 2000-bus rungs).
pub const SCALE_BUSES: [usize; 7] = [14, 30, 57, 118, 300, 1354, 2000];

/// Largest case the dense oracles (dense WLS pipeline, dense eager
/// tableau) still run at bench-friendly speed. Above this the suite
/// measures the sparse/revised path only — which is the point of the
/// ladder's upper rungs.
pub const DENSE_ORACLE_MAX_BUSES: usize = 300;

/// Per-job deadline of the scale suite's verify jobs, generous enough
/// that a completed run certifies "the 2000-bus verification finishes
/// within the deadline" (a timeout shows up as a `unknown(timeout)`
/// verdict and fails the `verify.sh` gate).
pub const SCALE_VERIFY_TIMEOUT_MS: u64 = 120_000;

/// Runs the `scale` suite: the estimation-stack scaling curve.
///
/// Per IEEE case size (see [`SCALE_BUSES`]), up to six jobs:
///
/// * `wls-sparse-{b}` — a full WLS solve (estimator construction, i.e.
///   sparse gain build + AMD-ordered factorization, plus one estimate)
///   on the default sparse pipeline;
/// * `wls-dense-{b}` — the identical solve on the dense-oracle pipeline,
///   so a trajectory point carries its own sparse-vs-dense speedup
///   (sizes up to [`DENSE_ORACLE_MAX_BUSES`] only);
/// * `obs-{b}` — a sparse observability check;
/// * `verify-{b}` — one blocked verification (`T_CZ = 0`) on the revised
///   simplex at every size. Pivot-light — encode dominates — so it is
///   cheap at small sizes, and at 1354/2000 buses it is the size-ceiling
///   story: the rung completes within [`SCALE_VERIFY_TIMEOUT_MS`] or its
///   verdict degrades to `unknown(timeout)` and fails the `verify.sh`
///   gate;
/// * `verify-dense-{b}` / `verify-revised-{b}` — the engine A/B pair
///   (up to [`DENSE_ORACLE_MAX_BUSES`]): the same pivot-heavy
///   multi-target scenario ([`scale_ab_model`]) run once per engine.
///   Identical deterministic trajectory, so the wall-time ratio is a
///   pure engine comparison — `verify.sh` gates on the 300-bus pair.
///
/// Unlike the registry suites this one is not a pure [`CampaignSpec`] —
/// the WLS and observability jobs run outside the pool — so it builds
/// its [`BenchResult`] directly, like the serve suite does.
///
/// # Errors
/// Fails if a synthetic case does not power-flow or is unobservable —
/// either means the suite definition itself is broken.
pub fn run_scale_suite(reps: usize, workers: usize) -> Result<BenchResult, String> {
    run_scale_suite_for(&SCALE_BUSES, reps, workers)
}

/// The engine A/B workload of the scale suite: four `MustChange` targets
/// spread across the case, pairwise-different changes between adjacent
/// targets, and tight resource caps. The caps force the search to
/// enumerate thousands of candidate attack supports, each a theory check
/// with real pivot work — the regime the revised engine exists for. (A
/// blocked scenario would measure encode time, where the engines tie;
/// see `EXPERIMENTS.md`.) The verdict varies with topology (sat at 14
/// and 300 buses, unsat between) but is identical across engines, as is
/// the whole pivot trajectory.
pub fn scale_ab_model(b: usize) -> AttackModel {
    let t = [BusId(b / 4), BusId(b / 2), BusId(3 * b / 4), BusId(b - 1)];
    let mut model = AttackModel::new(b);
    for &bus in &t {
        model = model.target(bus, StateTarget::MustChange);
    }
    model
        .require_different_change(t[0], t[1])
        .require_different_change(t[1], t[2])
        .require_different_change(t[2], t[3])
        .max_altered_measurements(20)
        .max_compromised_buses(8)
}

/// [`run_scale_suite`] over an explicit bus-count list (kept separate so
/// tests can exercise the harness on the small cases only).
pub fn run_scale_suite_for(
    buses: &[usize],
    reps: usize,
    workers: usize,
) -> Result<BenchResult, String> {
    use sta_estimator::{dcflow, observability, WlsEstimator};

    let reps = reps.max(1);
    let clock = sta_smt::Clock::monotonic();

    /// Runs `f` `reps` times, returning its (stable) verdict token and
    /// the median wall time in microseconds.
    fn timed<F: FnMut() -> Result<String, String>>(
        clock: &sta_smt::Clock,
        reps: usize,
        mut f: F,
    ) -> Result<(String, u64), String> {
        let mut walls = Vec::with_capacity(reps);
        let mut verdict = String::new();
        for _ in 0..reps {
            let t0 = clock.now();
            verdict = f()?;
            walls.push(clock.now().saturating_sub(t0).as_micros() as u64);
        }
        Ok((verdict, median(&mut walls)))
    }

    let mut jobs: Vec<JobMeasurement> = Vec::new();
    let mut push = |label: String, case: &str, verdict: String, wall_us: u64| {
        jobs.push(JobMeasurement {
            id: 0, // reassigned sequentially below
            label,
            case: case.to_string(),
            verdict,
            wall_us,
            encode_us: 0,
            search_us: 0,
        });
    };

    let mut dense_spec = CampaignSpec::new("bench-scale-dense")
        .with_simplex(sta_smt::SimplexMode::Dense)
        .with_timeout_ms(SCALE_VERIFY_TIMEOUT_MS);
    let mut revised_spec = CampaignSpec::new("bench-scale-revised")
        .with_simplex(sta_smt::SimplexMode::Revised)
        .with_timeout_ms(SCALE_VERIFY_TIMEOUT_MS);
    for &b in buses {
        let sys = sta_grid::synthetic::ieee_case(b);
        let case_name = format!("ieee{b}");
        // An untimed warm-up estimator pins the measurement snapshot the
        // timed solves all consume.
        let injections = dcflow::synthetic_injections(b, b as u64);
        let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
            .map_err(|e| format!("{case_name}: power flow failed: {e}"))?;
        let warmup = WlsEstimator::for_system(&sys)
            .map_err(|e| format!("{case_name}: {e}"))?;
        let z = warmup.measure(&op);

        let wls_verdict = |est: &WlsEstimator| -> Result<String, String> {
            let r = est
                .estimate(&z)
                .map_err(|e| format!("{case_name}: estimate failed: {e}"))?;
            Ok(if r.residual_norm < 1e-6 { "ok" } else { "residual" }.to_string())
        };
        let (v, wall) = timed(&clock, reps, || {
            let est = WlsEstimator::new(
                &sys.grid,
                &sys.topology,
                &sys.measurements,
                sys.reference_bus,
                None,
            )
            .map_err(|e| format!("{case_name}: {e}"))?;
            wls_verdict(&est)
        })?;
        push(format!("wls-sparse-{b}"), &case_name, v, wall);

        if b <= DENSE_ORACLE_MAX_BUSES {
            let (v, wall) = timed(&clock, reps, || {
                let est = WlsEstimator::new_dense(
                    &sys.grid,
                    &sys.topology,
                    &sys.measurements,
                    sys.reference_bus,
                    None,
                )
                .map_err(|e| format!("{case_name}: {e}"))?;
                wls_verdict(&est)
            })?;
            push(format!("wls-dense-{b}"), &case_name, v, wall);
        }

        let (v, wall) = timed(&clock, reps, || {
            Ok(if observability::is_observable(
                &sys.grid,
                &sys.topology,
                &sys.measurements,
                sys.reference_bus,
            ) {
                "observable"
            } else {
                "unobservable"
            }
            .to_string())
        })?;
        push(format!("obs-{b}"), &case_name, v, wall);

        if b <= DENSE_ORACLE_MAX_BUSES {
            let case = dense_spec.add_case(case_name.clone(), sys.clone());
            dense_spec.verify(case, format!("verify-dense-{b}"), scale_ab_model(b));
        }
        let case = revised_spec.add_case(case_name, sys);
        let blocked = AttackModel::new(b).max_altered_measurements(0);
        revised_spec.verify(case, format!("verify-{b}"), blocked);
        if b <= DENSE_ORACLE_MAX_BUSES {
            revised_spec.verify(case, format!("verify-revised-{b}"), scale_ab_model(b));
        }
    }

    // The verify jobs go through the standard pool harness for real
    // encode/search phase medians; their latency rollup is the suite's.
    let dense = run_suite("scale", &dense_spec, reps, workers);
    let revised = run_suite("scale", &revised_spec, reps, workers);
    jobs.extend(dense.jobs);
    jobs.extend(revised.jobs);
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = i as u64;
    }
    let mut latency = dense.latency;
    for (phase, hist) in revised.latency {
        match latency.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, existing)) => existing.merge(&hist),
            None => latency.push((phase, hist)),
        }
    }
    Ok(BenchResult {
        schema: SCHEMA.to_string(),
        suite: "scale".to_string(),
        reps: reps as u64,
        workers: workers.max(1) as u64,
        env: BenchEnv::capture(),
        jobs,
        latency,
    })
}

/// Where a trajectory file was measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnv {
    /// Logical CPUs available to the process.
    pub cpus: u64,
    /// `std::env::consts::OS` at measurement time.
    pub os: String,
    /// `std::env::consts::ARCH` at measurement time.
    pub arch: String,
    /// Short git commit of the working tree, or `"unknown"`.
    pub commit: String,
}

impl BenchEnv {
    /// Captures the current environment. The commit comes from `git
    /// rev-parse --short HEAD` and degrades to `"unknown"` anywhere git
    /// or the repository is unavailable.
    pub fn capture() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        let commit = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        BenchEnv {
            cpus,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            commit,
        }
    }
}

/// One job's measurement: medians over the run's repetitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobMeasurement {
    /// Job id within the suite.
    pub id: u64,
    /// The job's label (stable across runs of the same suite).
    pub label: String,
    /// The case the job ran against.
    pub case: String,
    /// The verdict token (deterministic; a change is always flagged).
    pub verdict: String,
    /// Median whole-job wall time in microseconds.
    pub wall_us: u64,
    /// Median encode-phase wall time in microseconds.
    pub encode_us: u64,
    /// Median search-phase wall time in microseconds.
    pub search_us: u64,
}

/// A measured perf trajectory point: one suite, one environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Schema tag (always [`SCHEMA`] for files this code writes).
    pub schema: String,
    /// Suite name.
    pub suite: String,
    /// Repetitions the medians were taken over.
    pub reps: u64,
    /// Worker count the suite ran with.
    pub workers: u64,
    /// Measurement environment.
    pub env: BenchEnv,
    /// Per-job medians, in job-id order.
    pub jobs: Vec<JobMeasurement>,
    /// Per-phase latency histograms merged over all repetitions.
    pub latency: Vec<(&'static str, LatencyHistogram)>,
}

/// Median of a slice of samples (even lengths average the middle pair).
fn median(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] / 2) + (samples[mid] / 2) + (samples[mid - 1] % 2 + samples[mid] % 2) / 2
    }
}

/// Runs `spec` `reps` times on `workers` threads and folds the runs into
/// one [`BenchResult`]. Verdicts are deterministic, so they are taken
/// from the first repetition; wall clocks are per-job medians.
///
/// # Panics
/// Panics if `reps` is zero (the CLI rejects `--reps 0` as a usage
/// error before getting here).
pub fn run_suite(
    suite_name: &str,
    spec: &CampaignSpec,
    reps: usize,
    workers: usize,
) -> BenchResult {
    assert!(reps > 0, "reps must be positive");
    let mut reports: Vec<CampaignReport> = Vec::with_capacity(reps);
    for _ in 0..reps {
        reports.push(run_with(spec, &RunOptions::with_workers(workers), None));
    }
    let mut jobs = Vec::with_capacity(spec.jobs.len());
    for (id, _) in spec.jobs.iter().enumerate() {
        let first = &reports[0].results[id];
        let mut walls: Vec<u64> = reports
            .iter()
            .map(|r| r.results[id].wall.as_micros() as u64)
            .collect();
        let phase_us = |f: fn(&sta_smt::PhaseTimings) -> std::time::Duration| {
            let mut v: Vec<u64> = reports
                .iter()
                .filter_map(|r| r.results[id].phase_wall.as_ref())
                .map(|pw| f(pw).as_micros() as u64)
                .collect();
            median(&mut v)
        };
        jobs.push(JobMeasurement {
            id: id as u64,
            label: first.label.clone(),
            case: first.case.clone(),
            verdict: first.verdict.token().to_string(),
            wall_us: median(&mut walls),
            encode_us: phase_us(|pw| pw.encode),
            search_us: phase_us(|pw| pw.search),
        });
    }
    let mut latency: Vec<(&'static str, LatencyHistogram)> = Vec::new();
    for report in &reports {
        for (phase, hist) in report.latency_rollup() {
            match latency.iter_mut().find(|(p, _)| *p == phase) {
                Some((_, existing)) => existing.merge(&hist),
                None => latency.push((phase, hist)),
            }
        }
    }
    BenchResult {
        schema: SCHEMA.to_string(),
        suite: suite_name.to_string(),
        reps: reps as u64,
        workers: workers.max(1) as u64,
        env: BenchEnv::capture(),
        jobs,
        latency,
    }
}

impl BenchResult {
    /// Serializes the trajectory point as schema-versioned JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"schema\":");
        escape_into(&self.schema, &mut out);
        out.push_str(",\"suite\":");
        escape_into(&self.suite, &mut out);
        let _ = write!(
            out,
            ",\"reps\":{},\"workers\":{},\"env\":{{\"cpus\":{},\"os\":",
            self.reps, self.workers, self.env.cpus
        );
        escape_into(&self.env.os, &mut out);
        out.push_str(",\"arch\":");
        escape_into(&self.env.arch, &mut out);
        out.push_str(",\"commit\":");
        escape_into(&self.env.commit, &mut out);
        out.push_str("},\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"label\":", j.id);
            escape_into(&j.label, &mut out);
            out.push_str(",\"case\":");
            escape_into(&j.case, &mut out);
            out.push_str(",\"verdict\":");
            escape_into(&j.verdict, &mut out);
            let _ = write!(
                out,
                ",\"wall_us\":{},\"encode_us\":{},\"search_us\":{}}}",
                j.wall_us, j.encode_us, j.search_us
            );
        }
        out.push_str("],\"latency\":{");
        for (i, (phase, hist)) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{phase}\":");
            hist.to_json_into(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Reads a required string field off a JSON object.
fn str_field(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(|v| v.as_str())
        .map(|s| s.to_string())
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

/// Reads a required unsigned-integer field off a JSON object.
fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

/// Parses and schema-validates a `BENCH_*.json` document. The latency
/// histograms are not reconstructed (diffing works on the per-job
/// medians); only their presence is checked.
pub fn parse_result(text: &str) -> Result<BenchResult, String> {
    let doc = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = str_field(&doc, "schema")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema {schema:?} (expected {SCHEMA:?})"));
    }
    let env_doc = doc.get("env").ok_or("missing field \"env\"")?;
    let env = BenchEnv {
        cpus: u64_field(env_doc, "cpus")?,
        os: str_field(env_doc, "os")?,
        arch: str_field(env_doc, "arch")?,
        commit: str_field(env_doc, "commit")?,
    };
    let jobs_doc = doc
        .get("jobs")
        .and_then(|v| v.as_arr())
        .ok_or("missing or non-array field \"jobs\"")?;
    let mut jobs = Vec::with_capacity(jobs_doc.len());
    for j in jobs_doc {
        jobs.push(JobMeasurement {
            id: u64_field(j, "id")?,
            label: str_field(j, "label")?,
            case: str_field(j, "case")?,
            verdict: str_field(j, "verdict")?,
            wall_us: u64_field(j, "wall_us")?,
            encode_us: u64_field(j, "encode_us")?,
            search_us: u64_field(j, "search_us")?,
        });
    }
    if doc.get("latency").is_none() {
        return Err("missing field \"latency\"".into());
    }
    Ok(BenchResult {
        schema,
        suite: str_field(&doc, "suite")?,
        reps: u64_field(&doc, "reps")?,
        workers: u64_field(&doc, "workers")?,
        env,
        jobs,
        latency: Vec::new(),
    })
}

/// One row of a trajectory comparison.
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// The job's label.
    pub label: String,
    /// Baseline median wall, microseconds.
    pub base_us: u64,
    /// Candidate median wall, microseconds.
    pub cand_us: u64,
    /// Signed change in percent of the baseline (0 when the baseline
    /// is zero and the candidate is too).
    pub change_pct: f64,
    /// Whether this row trips the regression gate: the verdict changed,
    /// or the slowdown exceeds both the percentage threshold and the
    /// [`MIN_REGRESSION_US`] floor.
    pub regressed: bool,
    /// Human-readable note (`"verdict sat -> unsat"`, `"missing in
    /// candidate"`, empty for plain timing rows).
    pub note: String,
}

/// A full baseline-vs-candidate comparison.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// Per-job rows, baseline order.
    pub lines: Vec<DiffLine>,
    /// The threshold the comparison ran with, in percent.
    pub threshold_pct: f64,
}

impl BenchDiff {
    /// Whether any row regressed.
    pub fn regressed(&self) -> bool {
        self.lines.iter().any(|l| l.regressed)
    }

    /// Renders the comparison as an aligned table.
    pub fn table(&self) -> String {
        let mut table = sta_smt::Table::new(&[
            ("job", sta_smt::Align::Left),
            ("base ms", sta_smt::Align::Right),
            ("cand ms", sta_smt::Align::Right),
            ("change", sta_smt::Align::Right),
            ("status", sta_smt::Align::Left),
        ]);
        for l in &self.lines {
            let status = if l.regressed {
                if l.note.is_empty() { "REGRESSED".to_string() } else { l.note.clone() }
            } else if !l.note.is_empty() {
                l.note.clone()
            } else {
                "ok".to_string()
            };
            table.row(&[
                l.label.clone(),
                format!("{:.3}", l.base_us as f64 / 1e3),
                format!("{:.3}", l.cand_us as f64 / 1e3),
                format!("{:+.1}%", l.change_pct),
                status,
            ]);
        }
        table.render()
    }
}

/// Compares `candidate` against `baseline`, flagging wall-time
/// regressions beyond `threshold_pct` (and beyond the absolute
/// [`MIN_REGRESSION_US`] floor) and any verdict change. Jobs are matched
/// by `(case, label)`; a job present in only one file is flagged.
pub fn diff(baseline: &BenchResult, candidate: &BenchResult, threshold_pct: f64) -> BenchDiff {
    let mut lines = Vec::with_capacity(baseline.jobs.len());
    for b in &baseline.jobs {
        let Some(c) = candidate
            .jobs
            .iter()
            .find(|c| c.case == b.case && c.label == b.label)
        else {
            lines.push(DiffLine {
                label: b.label.clone(),
                base_us: b.wall_us,
                cand_us: 0,
                change_pct: 0.0,
                regressed: true,
                note: "missing in candidate".to_string(),
            });
            continue;
        };
        let change_pct = if b.wall_us == 0 {
            if c.wall_us == 0 { 0.0 } else { 100.0 }
        } else {
            (c.wall_us as f64 - b.wall_us as f64) / b.wall_us as f64 * 100.0
        };
        let verdict_changed = b.verdict != c.verdict;
        let slowed = c.wall_us > b.wall_us
            && c.wall_us - b.wall_us > MIN_REGRESSION_US
            && change_pct > threshold_pct;
        lines.push(DiffLine {
            label: b.label.clone(),
            base_us: b.wall_us,
            cand_us: c.wall_us,
            change_pct,
            regressed: verdict_changed || slowed,
            note: if verdict_changed {
                format!("verdict {} -> {}", b.verdict, c.verdict)
            } else {
                String::new()
            },
        });
    }
    for c in &candidate.jobs {
        if !baseline.jobs.iter().any(|b| b.case == c.case && b.label == c.label) {
            lines.push(DiffLine {
                label: c.label.clone(),
                base_us: 0,
                cand_us: c.wall_us,
                change_pct: 0.0,
                regressed: false,
                note: "new in candidate".to_string(),
            });
        }
    }
    BenchDiff { lines, threshold_pct }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(label: &str, wall_us: u64, verdict: &str) -> JobMeasurement {
        JobMeasurement {
            id: 0,
            label: label.to_string(),
            case: "ieee14".to_string(),
            verdict: verdict.to_string(),
            wall_us,
            encode_us: wall_us / 2,
            search_us: wall_us / 2,
        }
    }

    fn result(jobs: Vec<JobMeasurement>) -> BenchResult {
        BenchResult {
            schema: SCHEMA.to_string(),
            suite: "smoke".to_string(),
            reps: 1,
            workers: 1,
            env: BenchEnv {
                cpus: 4,
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                commit: "abc1234".to_string(),
            },
            jobs,
            latency: vec![("wall", LatencyHistogram::new())],
        }
    }

    #[test]
    fn median_handles_edges() {
        assert_eq!(median(&mut []), 0);
        assert_eq!(median(&mut [7]), 7);
        assert_eq!(median(&mut [1, 3]), 2);
        assert_eq!(median(&mut [5, 1, 9]), 5);
        assert_eq!(median(&mut [4, 2, 8, 6]), 5);
        // No overflow near u64::MAX.
        assert_eq!(median(&mut [u64::MAX, u64::MAX]), u64::MAX);
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let original = result(vec![job("open-11", 5000, "sat"), job("blocked", 800, "unsat")]);
        let text = original.to_json();
        let parsed = parse_result(&text).expect("round trip");
        assert_eq!(parsed.schema, SCHEMA);
        assert_eq!(parsed.suite, "smoke");
        assert_eq!(parsed.env, original.env);
        assert_eq!(parsed.jobs, original.jobs);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_malformed_files() {
        let mut r = result(vec![]);
        r.schema = "sta-bench/v0".to_string();
        let err = parse_result(&r.to_json()).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(parse_result("not json").is_err());
        assert!(parse_result("{}").is_err());
    }

    #[test]
    fn self_diff_never_regresses() {
        let r = result(vec![job("open-11", 5000, "sat"), job("blocked", 0, "unsat")]);
        let d = diff(&r, &r, 10.0);
        assert!(!d.regressed(), "{:?}", d.lines);
        assert!(d.lines.iter().all(|l| l.change_pct == 0.0));
    }

    #[test]
    fn slowdowns_past_threshold_and_floor_regress() {
        let base = result(vec![job("a", 10_000, "sat"), job("b", 100, "sat")]);
        // Job a: +50% and +5000 µs — regression. Job b: +500% but only
        // +500 µs — under the absolute floor, not flagged.
        let cand = result(vec![job("a", 15_000, "sat"), job("b", 600, "sat")]);
        let d = diff(&base, &cand, 20.0);
        assert!(d.lines[0].regressed);
        assert!(!d.lines[1].regressed);
        assert!(d.regressed());
        // A generous threshold lets the same slowdown pass.
        assert!(!diff(&base, &cand, 60.0).regressed());
    }

    #[test]
    fn verdict_changes_always_regress() {
        let base = result(vec![job("a", 1000, "sat")]);
        let cand = result(vec![job("a", 900, "unsat")]);
        let d = diff(&base, &cand, 50.0);
        assert!(d.regressed());
        assert!(d.lines[0].note.contains("verdict sat -> unsat"));
        assert!(d.table().contains("verdict sat -> unsat"));
    }

    #[test]
    fn missing_and_new_jobs_are_reported() {
        let base = result(vec![job("gone", 1000, "sat")]);
        let cand = result(vec![job("fresh", 1000, "sat")]);
        let d = diff(&base, &cand, 50.0);
        assert_eq!(d.lines.len(), 2);
        assert!(d.lines[0].regressed, "dropped jobs must fail the gate");
        assert!(d.lines[0].note.contains("missing"));
        assert!(!d.lines[1].regressed, "added jobs are informational");
        assert!(d.lines[1].note.contains("new"));
    }

    #[test]
    fn suites_are_pinned_and_named() {
        let smoke = suite("smoke").expect("smoke suite");
        assert_eq!(smoke.jobs.len(), 5);
        assert!(suite("sweep").is_some());
        assert!(suite("nope").is_none());
        assert!(suite_names().contains(&"smoke"));
        assert!(suite_names().contains(&"cegis"));
    }

    /// The cegis suite pairs each warm job with a cold twin of the same
    /// attacker and budget, differing only in the incremental flag.
    #[test]
    fn cegis_suite_pairs_warm_and_cold_jobs() {
        let cegis = suite("cegis").expect("cegis suite");
        assert_eq!(cegis.jobs.len(), 4);
        for pair in cegis.jobs.chunks(2) {
            assert!(pair[0].label.starts_with("warm-"));
            assert!(pair[1].label.starts_with("cold-"));
            let crate::spec::JobKind::Synthesize { config: warm, .. } = &pair[0].kind
            else {
                panic!("cegis jobs must be synthesize jobs");
            };
            let crate::spec::JobKind::Synthesize { config: cold, .. } = &pair[1].kind
            else {
                panic!("cegis jobs must be synthesize jobs");
            };
            assert!(warm.incremental && !cold.incremental);
        }
    }

    #[test]
    fn scale_suite_shape_and_verdicts() {
        // The small end of the ladder only — the full 300-bus ladder is
        // CI's job (verify.sh), not the unit suite's.
        let r = run_scale_suite_for(&[14, 30], 1, 1).expect("scale harness runs");
        assert_eq!(r.suite, "scale");
        assert_eq!(r.jobs.len(), 12, "6 jobs per dense-oracle case size");
        let labels: Vec<&str> = r.jobs.iter().map(|j| j.label.as_str()).collect();
        for want in [
            "wls-sparse-14",
            "wls-dense-14",
            "obs-14",
            "verify-14",
            "verify-dense-14",
            "verify-revised-14",
            "wls-sparse-30",
            "wls-dense-30",
            "obs-30",
            "verify-30",
            "verify-dense-30",
            "verify-revised-30",
        ] {
            assert!(labels.contains(&want), "missing {want} in {labels:?}");
        }
        let verdict = |label: &str| {
            &r.jobs
                .iter()
                .find(|j| j.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
                .verdict
        };
        for j in &r.jobs {
            match j.label.split('-').next() {
                Some("wls") => assert_eq!(j.verdict, "ok", "{}", j.label),
                Some("obs") => assert_eq!(j.verdict, "observable", "{}", j.label),
                Some("verify") => assert!(
                    j.verdict == "sat" || j.verdict == "unsat",
                    "{}: {}",
                    j.label,
                    j.verdict
                ),
                other => panic!("unexpected label family {other:?}"),
            }
        }
        for b in [14, 30] {
            // Blocked ladder rows are unsat by construction; the A/B
            // pair's verdict varies with topology but never with engine.
            assert_eq!(verdict(&format!("verify-{b}")), "unsat");
            assert_eq!(
                verdict(&format!("verify-dense-{b}")),
                verdict(&format!("verify-revised-{b}")),
                "engine verdicts diverged at {b} buses"
            );
        }
        // Ids are sequential, and the artifact is schema-valid and
        // self-diffable like every other suite's.
        for (i, j) in r.jobs.iter().enumerate() {
            assert_eq!(j.id, i as u64);
        }
        let parsed = parse_result(&r.to_json()).expect("schema-valid");
        assert!(!diff(&parsed, &parsed, 10.0).regressed());
    }

    #[test]
    fn run_suite_measures_every_job() {
        let spec = {
            let mut s = CampaignSpec::new("mini");
            let c = s.add_case("ieee14", ieee14::system());
            s.verify(c, "blocked", AttackModel::new(14).max_altered_measurements(0));
            s
        };
        let r = run_suite("mini", &spec, 2, 1);
        assert_eq!(r.reps, 2);
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].verdict, "unsat");
        assert_eq!(r.latency.len(), 3);
        assert_eq!(r.latency[0].1.count(), 2, "one wall sample per rep");
        // And its serialization is immediately diffable against itself.
        let parsed = parse_result(&r.to_json()).expect("schema-valid");
        assert!(!diff(&parsed, &parsed, 10.0).regressed());
    }
}
