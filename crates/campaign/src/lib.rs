//! Parallel threat-analytics campaign engine.
//!
//! The paper's evaluation (§V) is a large grid of solver runs: attack
//! scenarios across target states, resource budgets, knowledge limits and
//! topology-poisoning toggles, over several IEEE cases. This crate turns
//! such a grid into a declarative [`CampaignSpec`] executed by a
//! dependency-free work-stealing thread pool ([`run`]):
//!
//! * every job carries an optional wall-clock deadline, threaded into the
//!   CDCL and simplex inner loops as a [`sta_smt::Budget`] — a stuck
//!   instance reports `unknown(timeout)` instead of hanging the sweep;
//! * jobs over the same case share a worker-local [`base encoding`]
//!   ([`sta_core::attack::VerifySession`]), so the grid constraints are
//!   encoded once per worker and each variant only pays its own delta;
//! * results aggregate deterministically by job id into a
//!   [`CampaignReport`] whose JSON form — per-job phase counters and
//!   their campaign-wide rollup included — is byte-identical across
//!   worker counts once the `timing` keys are stripped;
//! * [`run_traced`] additionally streams [`sta_smt::TraceEvent`]s into a
//!   shared sink as jobs finish (the `--trace` JSONL backend).
//!
//! The `sta campaign` CLI subcommand and every `sta-bench` binary are
//! thin builders over this crate.
//!
//! [`base encoding`]: sta_core::attack::VerifySession
//!
//! # Examples
//!
//! ```
//! use sta_campaign::{run, CampaignSpec};
//! use sta_core::attack::AttackModel;
//! use sta_grid::ieee14;
//!
//! let mut spec = CampaignSpec::new("demo");
//! let case = spec.add_case("ieee14", ieee14::system());
//! spec.verify(case, "open", AttackModel::new(14));
//! spec.verify(case, "blocked", AttackModel::new(14).max_altered_measurements(0));
//! let report = run(&spec, 2);
//! assert_eq!(report.results[0].verdict.token(), "sat");
//! assert_eq!(report.results[1].verdict.token(), "unsat");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(missing_docs)]

pub mod bench;
pub mod histogram;
pub mod pool;
pub mod report;
pub mod spec;

pub use bench::{BenchDiff, BenchEnv, BenchResult, JobMeasurement};
pub use histogram::LatencyHistogram;
pub use pool::{run, run_traced, run_with, RunOptions, ServicePool, SubmitError};
pub use report::{CampaignReport, JobResult, Verdict};
pub use spec::{CampaignSpec, CaseSpec, JobKind, JobSpec};
