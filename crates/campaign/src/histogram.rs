//! Log-bucketed latency histograms with deterministic merges.
//!
//! Per-job wall clocks are nondeterministic, but their *aggregation
//! structure* need not be: this histogram uses fixed power-of-two bucket
//! boundaries (bucket `b ≥ 1` covers `[2^(b-1), 2^b)` microseconds;
//! bucket 0 holds exact zeros), so merging is element-wise `u64`
//! addition — associative, commutative, and independent of worker count
//! or job order. The campaign report records one sample per job per
//! phase, merges the per-job histograms into a campaign-level rollup,
//! and derives p50/p90/p99/max from the buckets.
//!
//! Sample *counts* depend only on the spec and live in the
//! timing-stripped report; bucket contents and percentiles are wall
//! clock and stay under the `timing` key (see [`crate::report`]).

use std::fmt::Write as _;
use std::time::Duration;

/// Number of buckets: one for exact zero plus one per bit of a `u64`
/// microsecond value.
const BUCKETS: usize = 65;

/// A latency histogram over power-of-two microsecond buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; BUCKETS], count: 0, max_us: 0 }
    }
}

/// The bucket index of a microsecond value: 0 for 0, else the value's
/// bit length (so 1 µs → bucket 1, 100 µs → bucket 7, covering
/// `[64, 128)`).
fn bucket_index(us: u64) -> usize {
    (u64::BITS - us.leading_zeros()) as usize
}

/// The `[lower, upper)` microsecond bounds of bucket `index`; the last
/// bucket's upper bound saturates at `u64::MAX`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    if index == 0 {
        (0, 1)
    } else {
        let lower = 1u64 << (index - 1);
        let upper = if index == BUCKETS - 1 { u64::MAX } else { 1u64 << index };
        (lower, upper)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration (truncated to whole microseconds).
    pub fn record(&mut self, d: Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one raw microsecond sample.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_index(us)] = self.buckets[bucket_index(us)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.max_us = self.max_us.max(us);
    }

    /// Merges `other` into `self`: element-wise saturating addition plus
    /// count/max combination. Associative and commutative, so any merge
    /// tree over any partition of the samples yields the same histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest sample seen, in microseconds (exact, not bucketed).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `p`-th percentile in microseconds, `0.0 < p ≤ 1.0`: the upper
    /// edge of the bucket containing the sample of that rank, clamped to
    /// the exact maximum (so a single-sample histogram reports its one
    /// value exactly). Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Non-empty buckets as `(lower_bound_us, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_bounds(i).0, n))
            .collect()
    }

    /// Serializes the histogram with its derived percentiles:
    /// `{"count":…,"max_us":…,"p50_us":…,"p90_us":…,"p99_us":…,
    ///   "buckets":[[lower_us,count],…]}`.
    pub fn to_json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"max_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"buckets\":[",
            self.count,
            self.max_us,
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
        );
        for (i, (lower, n)) in self.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lower},{n}]");
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic PRNG (xorshift) for the merge property tests.
    fn samples(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Spread across many buckets, including zero.
                state % 3_000_000
            })
            .collect()
    }

    fn from_samples(values: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record_us(v);
        }
        h
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_bounds(0), (0, 1));
        assert_eq!(bucket_bounds(1), (1, 2));
        assert_eq!(bucket_bounds(7), (64, 128));
        assert_eq!(bucket_bounds(64).1, u64::MAX);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(100), 7);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 3, 63, 64, 127, 1_000_000, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(v >= lo && (v < hi || hi == u64::MAX), "{v}");
        }
    }

    /// Merging is associative and commutative, and any partition of the
    /// samples merges to the same histogram as recording them directly —
    /// the property that makes worker count irrelevant to rollups.
    #[test]
    fn merge_is_associative_commutative_and_partition_independent() {
        let a = from_samples(&samples(11, 100));
        let b = from_samples(&samples(22, 57));
        let c = from_samples(&samples(33, 3));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut a_bc = {
            let mut bc = b.clone();
            bc.merge(&c);
            bc
        };
        a_bc.merge(&a);
        // (a+b)+c == (b+c)+a covers both associativity and commutativity.
        assert_eq!(ab_c, a_bc);

        // Recording everything into one histogram gives the same result.
        let mut all = samples(11, 100);
        all.extend(samples(22, 57));
        all.extend(samples(33, 3));
        assert_eq!(from_samples(&all), ab_c);
    }

    #[test]
    fn percentiles_on_empty_histogram_are_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn single_sample_reports_its_exact_value() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        // Bucket [64,128) would report 128; the max clamp restores 100.
        assert_eq!(h.percentile(0.5), 100);
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.max_us(), 100);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn percentiles_at_bucket_edges() {
        let mut h = LatencyHistogram::new();
        // 90 samples in [64,128), 10 in [1024,2048).
        for _ in 0..90 {
            h.record_us(100);
        }
        for _ in 0..10 {
            h.record_us(1500);
        }
        assert_eq!(h.percentile(0.50), 128);
        assert_eq!(h.percentile(0.90), 128); // rank 90 is the last fast one
        assert_eq!(h.percentile(0.91), 1500); // bucket edge crossed; max clamp
        assert_eq!(h.percentile(0.99), 1500);
        assert_eq!(h.max_us(), 1500);
    }

    #[test]
    fn saturating_values_land_in_the_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(0.5), u64::MAX);
        assert_eq!(h.nonzero_buckets(), vec![(1u64 << 63, 1)]);
    }

    #[test]
    fn zero_durations_get_their_own_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::ZERO);
        assert_eq!(h.nonzero_buckets(), vec![(0, 2)]);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = LatencyHistogram::new();
        h.record_us(0);
        h.record_us(100);
        h.record_us(100);
        h.record_us(1500);
        let mut out = String::new();
        h.to_json_into(&mut out);
        assert_eq!(
            out,
            "{\"count\":4,\"max_us\":1500,\"p50_us\":128,\"p90_us\":1500,\
             \"p99_us\":1500,\"buckets\":[[0,1],[64,2],[1024,1]]}",
        );
        // Round-trips through the shared parser.
        let doc = sta_smt::json::parse(&out).expect("valid JSON");
        assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(4));
    }
}
