//! Campaign results: deterministic aggregation, JSON and table rendering.
//!
//! A [`CampaignReport`] is ordered by job id regardless of how the worker
//! pool scheduled the jobs, and every nondeterministic quantity (wall
//! times, worker assignment) lives under a `timing` key. Serializing with
//! `to_json(false)` therefore yields byte-identical output for the same
//! spec at any worker count — the determinism contract the campaign tests
//! pin down.

use crate::histogram::LatencyHistogram;
use sta_core::attack::AttackVector;
use sta_grid::BusId;
use sta_smt::json::{escape_into, f64_into};
use sta_smt::{merge_spans, Interrupt, PhaseMetrics, PhaseTimings, SolverStats, SpanNode};
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// The conclusion of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Verification: the scenario admits an attack.
    Sat,
    /// Verification: no attack satisfies the scenario.
    Unsat,
    /// The job's budget ran out before a verdict.
    Unknown(Interrupt),
    /// Synthesis: an architecture was found.
    Architecture,
    /// Synthesis: the candidate space is exhausted.
    NoSolution,
    /// Synthesis: the iteration cap (or a timed-out check) stopped the
    /// loop early.
    Inconclusive,
}

impl Verdict {
    /// Stable lowercase token used in JSON and exit-code mapping.
    pub fn token(&self) -> &'static str {
        match self {
            Verdict::Sat => "sat",
            Verdict::Unsat => "unsat",
            Verdict::Unknown(Interrupt::Timeout) => "unknown(timeout)",
            Verdict::Unknown(Interrupt::Cancelled) => "unknown(cancelled)",
            Verdict::Architecture => "architecture",
            Verdict::NoSolution => "no-solution",
            Verdict::Inconclusive => "inconclusive",
        }
    }

    /// Whether the job ran out of budget.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One job's outcome with its deterministic payload and its timing.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job id (index in the spec's job list).
    pub id: usize,
    /// The job's label from the spec.
    pub label: String,
    /// The case name the job ran against.
    pub case: String,
    /// The conclusion.
    pub verdict: Verdict,
    /// Verification witness, when feasible.
    pub witness: Option<AttackVector>,
    /// Synthesized architecture, when found.
    pub architecture: Option<Vec<BusId>>,
    /// Synthesis round trips, for synthesis jobs.
    pub iterations: Option<usize>,
    /// Solver statistics (verification jobs; synthesis aggregates its own
    /// loop and reports none).
    pub stats: Option<SolverStats>,
    /// Deterministic per-phase counters of the job's solver work — for
    /// synthesis jobs the aggregate over the whole CEGIS loop. These roll
    /// up byte-identically at any worker count.
    pub metrics: Option<PhaseMetrics>,
    /// Per-phase wall clock (nondeterministic; `timing` key only).
    pub phase_wall: Option<PhaseTimings>,
    /// The job's span tree when the run profiled it (nondeterministic;
    /// trace stream and `--profile` rendering only, never report JSON).
    pub spans: Option<Vec<SpanNode>>,
    /// Wall-clock time of the job (nondeterministic; `timing` key only).
    pub wall: Duration,
    /// Worker that executed the job (nondeterministic; `timing` key only).
    pub worker: usize,
}

/// Deterministically aggregated results of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign name from the spec.
    pub name: String,
    /// Worker-pool size of this run (nondeterministic context; only
    /// serialized under `timing`).
    pub workers: usize,
    /// Total wall clock of the run.
    pub total_wall: Duration,
    /// Per-job results, sorted by job id.
    pub results: Vec<JobResult>,
}

/// Serializes an attack witness as the canonical report JSON object
/// (`alterations`/`compromised_buses`/`excluded_lines`/`included_lines`,
/// all ids 1-based). Shared by the campaign report and the service
/// layer's verify responses so both speak the same witness grammar.
pub fn witness_json(w: &AttackVector, out: &mut String) {
    out.push_str("{\"alterations\":[");
    for (i, a) in w.alterations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"measurement\":{},\"delta\":", a.measurement.0 + 1);
        f64_into(a.delta, out);
        out.push('}');
    }
    out.push_str("],\"compromised_buses\":[");
    for (i, b) in w.compromised_buses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", b.0 + 1);
    }
    out.push_str("],\"excluded_lines\":[");
    for (i, l) in w.excluded_lines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", l.0 + 1);
    }
    out.push_str("],\"included_lines\":[");
    for (i, l) in w.included_lines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", l.0 + 1);
    }
    out.push_str("]}");
}

/// Serializes the deterministic solver counters. `estimated_bytes` is
/// emitted only with `include_memory` (the `timing` serialization mode):
/// the footprint estimate depends on the simplex engine's internal
/// representation — dense tableau vs factorized basis — so it would
/// break the cross-engine byte-identity of stripped reports.
fn stats_json(s: &SolverStats, include_memory: bool, out: &mut String) {
    let _ = write!(
        out,
        "{{\"sat_vars\":{},\"clauses\":{},\"decisions\":{},\"propagations\":{},\
         \"conflicts\":{},\"theory_conflicts\":{},\"restarts\":{},\
         \"learned_clauses\":{},\"pivots\":{},\"proof_steps\":{},\
         \"certified\":{},\"lint_errors\":{}",
        s.sat_vars,
        s.clauses,
        s.decisions,
        s.propagations,
        s.conflicts,
        s.theory_conflicts,
        s.restarts,
        s.learned_clauses,
        s.pivots,
        s.proof_steps,
        s.certified,
        s.lint_errors,
    );
    if include_memory {
        let _ = write!(out, ",\"estimated_bytes\":{}", s.estimated_bytes());
    }
    out.push('}');
}

impl CampaignReport {
    /// Counts per verdict token, ordered by first occurrence of the
    /// token in the fixed token list (deterministic).
    pub fn summary(&self) -> Vec<(&'static str, usize)> {
        let tokens = [
            "sat",
            "unsat",
            "unknown(timeout)",
            "unknown(cancelled)",
            "architecture",
            "no-solution",
            "inconclusive",
        ];
        tokens
            .iter()
            .map(|&t| {
                (t, self.results.iter().filter(|r| r.verdict.token() == t).count())
            })
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// Whether any job ran out of budget.
    pub fn any_unknown(&self) -> bool {
        self.results.iter().any(|r| r.verdict.is_unknown())
    }

    /// Sums every job's deterministic phase counters. Addition over `u64`
    /// is associative and commutative and the results are sorted by job
    /// id, so the rollup (and its JSON) is byte-identical regardless of
    /// how many workers ran the campaign — the property that makes the
    /// phase breakdown trustworthy as a cross-run comparison baseline.
    pub fn metrics_rollup(&self) -> PhaseMetrics {
        let mut total = PhaseMetrics::default();
        for r in &self.results {
            if let Some(m) = &r.metrics {
                total.merge(m);
            }
        }
        total
    }

    /// Sums every job's *observational* phase timings: wall clocks,
    /// base-cache hit/miss counters, basis refactorizations. Unlike
    /// [`Self::metrics_rollup`] the result depends on scheduling and on
    /// the simplex engine mode, so it is display-only and never enters
    /// the deterministic report body.
    pub fn timings_rollup(&self) -> PhaseTimings {
        let mut total = PhaseTimings::default();
        for r in &self.results {
            if let Some(pw) = &r.phase_wall {
                total.merge(pw);
            }
        }
        total
    }

    /// Campaign-level latency histograms, one per phase: the whole-job
    /// wall plus the solver's encode and search phases. Each job
    /// contributes one sample per phase; the merge is associative and
    /// commutative (see [`LatencyHistogram::merge`]), so the rollup is
    /// independent of worker count and scheduling — only the bucket
    /// *contents* (wall clock) vary between runs.
    pub fn latency_rollup(&self) -> Vec<(&'static str, LatencyHistogram)> {
        let mut wall = LatencyHistogram::new();
        let mut encode = LatencyHistogram::new();
        let mut search = LatencyHistogram::new();
        for r in &self.results {
            let mut job = LatencyHistogram::new();
            job.record(r.wall);
            wall.merge(&job);
            if let Some(pw) = &r.phase_wall {
                let mut je = LatencyHistogram::new();
                je.record(pw.encode);
                encode.merge(&je);
                let mut js = LatencyHistogram::new();
                js.record(pw.search);
                search.merge(&js);
            }
        }
        vec![("wall", wall), ("encode", encode), ("search", search)]
    }

    /// Per-phase latency *sample counts*. These depend only on the spec
    /// (one wall sample per job; one encode/search sample per job that
    /// tracked phase timings), so they belong to the deterministic report
    /// body — the 1-vs-N-worker byte comparison pins them down, proving
    /// no job was dropped from or double-counted in the histograms.
    pub fn latency_sample_counts(&self) -> Vec<(&'static str, u64)> {
        self.latency_rollup()
            .into_iter()
            .map(|(phase, h)| (phase, h.count()))
            .collect()
    }

    /// The campaign-wide span tree of a profiled run: every job's spans
    /// merged by name in job-id order (the `--profile` view). Empty when
    /// the run did not profile.
    pub fn merged_spans(&self) -> Vec<SpanNode> {
        let mut merged = Vec::new();
        for r in &self.results {
            if let Some(spans) = &r.spans {
                merge_spans(&mut merged, spans);
            }
        }
        merged
    }

    /// Serializes the report as JSON. With `include_timing` false, every
    /// `timing` object (per-job wall/worker, run totals) is omitted and
    /// the output depends only on the spec — not on worker count or
    /// scheduling.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"campaign\":");
        escape_into(&self.name, &mut out);
        let _ = write!(out, ",\"jobs\":{},\"results\":[", self.results.len());
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"label\":", r.id);
            escape_into(&r.label, &mut out);
            out.push_str(",\"case\":");
            escape_into(&r.case, &mut out);
            out.push_str(",\"verdict\":");
            escape_into(r.verdict.token(), &mut out);
            if let Some(w) = &r.witness {
                out.push_str(",\"witness\":");
                witness_json(w, &mut out);
            }
            if let Some(arch) = &r.architecture {
                out.push_str(",\"architecture\":[");
                for (k, b) in arch.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}", b.0 + 1);
                }
                out.push(']');
            }
            if let Some(iters) = r.iterations {
                let _ = write!(out, ",\"iterations\":{iters}");
            }
            if let Some(s) = &r.stats {
                out.push_str(",\"stats\":");
                stats_json(s, include_timing, &mut out);
            }
            if let Some(m) = &r.metrics {
                out.push_str(",\"metrics\":");
                m.to_json_into(&mut out);
            }
            if include_timing {
                let _ = write!(
                    out,
                    ",\"timing\":{{\"wall_ms\":{:.3},\"worker\":{}",
                    r.wall.as_secs_f64() * 1e3,
                    r.worker
                );
                if let Some(pw) = &r.phase_wall {
                    out.push(',');
                    pw.to_json_into(&mut out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"summary\":{");
        for (i, (token, n)) in self.summary().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(token, &mut out);
            let _ = write!(out, ":{n}");
        }
        out.push('}');
        if self.results.iter().any(|r| r.metrics.is_some()) {
            // Deterministic rollup: part of the timing-stripped output on
            // purpose, so the 1-vs-N-worker byte comparison also pins the
            // aggregation down.
            out.push_str(",\"metrics\":");
            self.metrics_rollup().to_json_into(&mut out);
        }
        if !self.results.is_empty() {
            // Deterministic half of the latency rollup: how many samples
            // each phase histogram holds (bucket contents are timing).
            out.push_str(",\"latency_samples\":{");
            for (i, (phase, n)) in self.latency_sample_counts().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{phase}\":{n}");
            }
            out.push('}');
        }
        if include_timing {
            let _ = write!(
                out,
                ",\"timing\":{{\"total_wall_ms\":{:.3},\"workers\":{}",
                self.total_wall.as_secs_f64() * 1e3,
                self.workers
            );
            if !self.results.is_empty() {
                out.push_str(",\"latency\":{");
                for (i, (phase, h)) in self.latency_rollup().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{phase}\":");
                    h.to_json_into(&mut out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Renders the human-readable results table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4}  {:<14} {:<32} {:<18} {:>9} {:>11} {:>9}",
            "id", "case", "label", "verdict", "conflicts", "props", "ms"
        );
        for r in &self.results {
            let (conflicts, props) = match &r.stats {
                Some(s) => (s.conflicts.to_string(), s.propagations.to_string()),
                None => ("-".into(), "-".into()),
            };
            let _ = writeln!(
                out,
                "{:>4}  {:<14} {:<32} {:<18} {:>9} {:>11} {:>9.1}",
                r.id,
                r.case,
                r.label,
                r.verdict.token(),
                conflicts,
                props,
                r.wall.as_secs_f64() * 1e3,
            );
        }
        let _ = writeln!(
            out,
            "{} jobs in {:.1} ms on {} worker(s): {}",
            self.results.len(),
            self.total_wall.as_secs_f64() * 1e3,
            self.workers,
            self.summary()
                .iter()
                .map(|(t, n)| format!("{n} {t}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignReport {
        CampaignReport {
            name: "t".into(),
            workers: 2,
            total_wall: Duration::from_millis(5),
            results: vec![
                JobResult {
                    id: 0,
                    label: "a \"quoted\"".into(),
                    case: "ieee14".into(),
                    verdict: Verdict::Sat,
                    witness: Some(AttackVector::default()),
                    architecture: None,
                    iterations: None,
                    stats: Some(SolverStats::default()),
                    metrics: Some(PhaseMetrics { decisions: 4, pivots: 2, ..PhaseMetrics::default() }),
                    phase_wall: Some(PhaseTimings::default()),
                    spans: None,
                    wall: Duration::from_millis(3),
                    worker: 1,
                },
                JobResult {
                    id: 1,
                    label: "b".into(),
                    case: "ieee14".into(),
                    verdict: Verdict::Unknown(Interrupt::Timeout),
                    witness: None,
                    architecture: Some(vec![BusId(0), BusId(5)]),
                    iterations: Some(3),
                    stats: None,
                    metrics: Some(PhaseMetrics { decisions: 6, clauses: 9, ..PhaseMetrics::default() }),
                    phase_wall: None,
                    spans: None,
                    wall: Duration::from_millis(2),
                    worker: 0,
                },
            ],
        }
    }

    #[test]
    fn json_with_and_without_timing() {
        let report = sample();
        let full = report.to_json(true);
        let bare = report.to_json(false);
        assert!(full.contains("\"timing\""));
        assert!(!bare.contains("\"timing\""));
        assert!(bare.contains("\"verdict\":\"sat\""));
        assert!(bare.contains("\"verdict\":\"unknown(timeout)\""));
        assert!(bare.contains("\\\"quoted\\\""));
        assert!(bare.contains("\"architecture\":[1,6]"));
        assert!(report.any_unknown());
    }

    #[test]
    fn table_lists_every_job() {
        let report = sample();
        let table = report.table();
        assert!(table.contains("unknown(timeout)"));
        assert!(table.contains("2 jobs"));
        assert!(table.contains("1 sat, 1 unknown(timeout)"));
    }

    #[test]
    fn summary_counts_by_token() {
        let s = sample().summary();
        assert_eq!(s, vec![("sat", 1), ("unknown(timeout)", 1)]);
    }

    #[test]
    fn metrics_rollup_sums_jobs_and_serializes_without_timing() {
        let report = sample();
        let rollup = report.metrics_rollup();
        assert_eq!(rollup.decisions, 10);
        assert_eq!(rollup.pivots, 2);
        assert_eq!(rollup.clauses, 9);
        let bare = report.to_json(false);
        // Per-job and campaign-level metrics are deterministic content.
        assert!(bare.contains("\"metrics\":{\"encode\":"));
        assert!(bare.contains("\"decisions\":10"));
        // Phase wall clock appears only under timing.
        assert!(!bare.contains("encode_ms"));
        assert!(report.to_json(true).contains("\"encode_ms\":"));
    }
}
