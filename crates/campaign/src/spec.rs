//! Declarative campaign descriptions: which grid cases, which attack-model
//! variants, which budgets.
//!
//! A [`CampaignSpec`] is a plain data structure — building one runs no
//! solver. The engine ([`crate::pool::run`]) turns each [`JobSpec`] into
//! one independent solver check (or synthesis loop) and aggregates the
//! results deterministically by job id, so a spec is also a reproducible
//! record of an experiment: re-running it reproduces every verdict,
//! witness, and per-phase solver counter byte for byte at any worker
//! count (only wall clocks, worker ids, and base-cache reuse — the
//! observational data — vary; see [`crate::report`] and
//! [`sta_smt::trace`]).

use sta_core::attack::AttackModel;
use sta_core::synthesis::SynthesisConfig;
use sta_grid::{BusId, TestSystem};
use sta_smt::{CertifyLevel, SimplexMode};

/// One grid case a campaign runs against.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Display name (e.g. `ieee14`, `synthetic-30`).
    pub name: String,
    /// The test system itself.
    pub system: TestSystem,
}

/// What one job does.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Check feasibility of one attack scenario (§III verification).
    Verify(AttackModel),
    /// Run the §IV synthesis loop for one attacker/constraint pair.
    Synthesize {
        /// The attack model to defend against.
        attacker: AttackModel,
        /// Operator-side constraints on the architecture search.
        config: SynthesisConfig,
    },
}

/// One unit of campaign work. Jobs are independent: any scheduling order
/// produces the same per-job results.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label carried into the report.
    pub label: String,
    /// Index into [`CampaignSpec::cases`].
    pub case: usize,
    /// The work itself.
    pub kind: JobKind,
    /// Per-job wall-clock deadline in milliseconds; `None` falls back to
    /// the campaign-wide [`CampaignSpec::timeout_ms`].
    pub timeout_ms: Option<u64>,
}

/// A full campaign: cases × variants, plus campaign-wide policy.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (appears in the report).
    pub name: String,
    /// Grid cases jobs refer to by index.
    pub cases: Vec<CaseSpec>,
    /// The job list; a job's id is its index here.
    pub jobs: Vec<JobSpec>,
    /// Certification level applied to every job's solver checks (a job's
    /// own [`AttackModel::certify`] may strengthen it further).
    pub certify: CertifyLevel,
    /// Default per-job deadline in milliseconds; `None` = unlimited.
    pub timeout_ms: Option<u64>,
    /// Run synthesis jobs on persistent incremental solver cores (learned
    /// clauses and the simplex basis survive across CEGIS rounds). On by
    /// default; `false` forces the clone-per-check baseline everywhere —
    /// the `sta --incremental off` A/B switch. Verification jobs are
    /// clone-per-check in both modes, so their reports never depend on
    /// this flag.
    pub incremental: bool,
    /// Simplex engine selection for every job's solver checks (the
    /// `sta --simplex` A/B switch). Verdicts, witnesses and deterministic
    /// counters are identical across modes — only timings move — so
    /// timing-stripped reports never depend on this flag.
    pub simplex: SimplexMode,
}

impl CampaignSpec {
    /// An empty campaign.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            cases: Vec::new(),
            jobs: Vec::new(),
            certify: CertifyLevel::Off,
            timeout_ms: None,
            incremental: true,
            simplex: SimplexMode::Auto,
        }
    }

    /// Chooses between the persistent incremental cores (default) and the
    /// clone-per-check baseline for every synthesis job's loop solvers.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Selects the simplex engine for every job's solver checks (see
    /// [`SimplexMode`]).
    pub fn with_simplex(mut self, mode: SimplexMode) -> Self {
        self.simplex = mode;
        self
    }

    /// Sets the campaign-wide certification level.
    pub fn with_certify(mut self, level: CertifyLevel) -> Self {
        self.certify = level;
        self
    }

    /// Sets the campaign-wide default deadline.
    pub fn with_timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }

    /// Registers a grid case, returning its index for job references.
    pub fn add_case(&mut self, name: impl Into<String>, system: TestSystem) -> usize {
        self.cases.push(CaseSpec { name: name.into(), system });
        self.cases.len() - 1
    }

    /// Appends a verification job, returning its id.
    ///
    /// # Panics
    /// Panics if `case` is out of range.
    pub fn verify(
        &mut self,
        case: usize,
        label: impl Into<String>,
        model: AttackModel,
    ) -> usize {
        assert!(case < self.cases.len(), "job references unknown case");
        self.jobs.push(JobSpec {
            label: label.into(),
            case,
            kind: JobKind::Verify(model),
            timeout_ms: None,
        });
        self.jobs.len() - 1
    }

    /// Appends a synthesis job, returning its id.
    ///
    /// # Panics
    /// Panics if `case` is out of range.
    pub fn synthesize(
        &mut self,
        case: usize,
        label: impl Into<String>,
        attacker: AttackModel,
        config: SynthesisConfig,
    ) -> usize {
        assert!(case < self.cases.len(), "job references unknown case");
        self.jobs.push(JobSpec {
            label: label.into(),
            case,
            kind: JobKind::Synthesize { attacker, config },
            timeout_ms: None,
        });
        self.jobs.len() - 1
    }

    /// Overrides one job's deadline.
    ///
    /// # Panics
    /// Panics if `job` is out of range.
    pub fn set_job_timeout_ms(&mut self, job: usize, ms: u64) {
        self.jobs[job].timeout_ms = Some(ms);
    }

    /// The deadline effective for `job`: its own, else the campaign's.
    pub fn effective_timeout_ms(&self, job: &JobSpec) -> Option<u64> {
        job.timeout_ms.or(self.timeout_ms)
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the campaign has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The standard verification sweep the `sta campaign` subcommand runs:
    /// a grid of single-state targets × `T_CZ` × `T_CB` budgets over one
    /// case. With the defaults (4 targets × 4 × 2) that is 32 jobs.
    pub fn standard_sweep(case_name: &str, system: TestSystem) -> Self {
        let b = system.grid.num_buses();
        let mut spec = CampaignSpec::new(format!("{case_name}-sweep"));
        let case = spec.add_case(case_name, system);
        // Four spread-out non-reference target states.
        let targets = [b / 4, b / 2, (3 * b) / 4, b - 1];
        let tczs: [Option<usize>; 4] = [Some(6), Some(10), Some(14), None];
        let tcbs: [Option<usize>; 2] = [Some(4), None];
        for &t in &targets {
            for &tcz in &tczs {
                for &tcb in &tcbs {
                    let mut model = AttackModel::new(b)
                        .target(BusId(t), sta_core::attack::StateTarget::MustChange);
                    let mut label = format!("state={}", t + 1);
                    if let Some(v) = tcz {
                        model = model.max_altered_measurements(v);
                        label.push_str(&format!(" tcz={v}"));
                    } else {
                        label.push_str(" tcz=inf");
                    }
                    if let Some(v) = tcb {
                        model = model.max_compromised_buses(v);
                        label.push_str(&format!(" tcb={v}"));
                    } else {
                        label.push_str(" tcb=inf");
                    }
                    spec.verify(case, label, model);
                }
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_grid::ieee14;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut spec = CampaignSpec::new("t");
        let c = spec.add_case("ieee14", ieee14::system());
        assert_eq!(spec.verify(c, "a", AttackModel::new(14)), 0);
        assert_eq!(
            spec.synthesize(
                c,
                "b",
                AttackModel::new(14),
                SynthesisConfig::with_budget(3),
            ),
            1
        );
        assert_eq!(spec.len(), 2);
        spec.set_job_timeout_ms(1, 250);
        assert_eq!(spec.effective_timeout_ms(&spec.jobs[0]), None);
        assert_eq!(spec.effective_timeout_ms(&spec.jobs[1]), Some(250));
        let spec = spec.with_timeout_ms(1000);
        assert_eq!(spec.effective_timeout_ms(&spec.jobs[0]), Some(1000));
        assert_eq!(spec.effective_timeout_ms(&spec.jobs[1]), Some(250));
    }

    #[test]
    fn standard_sweep_has_at_least_32_jobs() {
        let spec = CampaignSpec::standard_sweep("ieee14", ieee14::system());
        assert!(spec.len() >= 32, "{}", spec.len());
        assert!(!spec.is_empty());
        assert!(spec.jobs.iter().all(|j| j.case == 0));
    }

    #[test]
    #[should_panic(expected = "unknown case")]
    fn job_with_bad_case_panics() {
        let mut spec = CampaignSpec::new("t");
        spec.verify(0, "a", AttackModel::new(14));
    }
}
