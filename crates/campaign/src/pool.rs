//! The work-stealing execution engine.
//!
//! Jobs are distributed round-robin over per-worker deques; a worker pops
//! its own deque from the front and, when empty, steals from the *back*
//! of a sibling's deque (the classic stealing discipline: owners and
//! thieves contend on opposite ends). Everything is standard-library —
//! scoped threads plus per-deque mutexes — because the job granularity
//! (whole SMT checks, milliseconds to seconds) makes lock-free deques
//! pointless here.
//!
//! # Instance reuse
//!
//! Each worker keeps one [`VerifySession`] per `(case, topology)` pair it
//! encounters, so the scenario-independent base encoding (line semantics,
//! alteration linking, `cz → cb`) is asserted once per worker and every
//! job only pays for its own variant delta — the solver's incremental
//! base cache does the heavy lifting underneath.
//!
//! # Determinism
//!
//! A job's deterministic outputs (verdict, witness, stats) depend only on
//! its spec: sessions hand every check a fresh clone of the same base
//! encoding, so neither the executing worker nor the order of jobs on
//! that worker can leak into the results. The aggregated report is sorted
//! by job id. Only the `timing` fields (wall clock, worker id) vary
//! between runs.
//!
//! # Deadlines
//!
//! A verification job's deadline becomes a [`Budget`] polled in every
//! solver phase — Tseitin/cardinality encoding, the CDCL conflict and
//! decision loops, and the simplex pivot loop — so an exhausted budget
//! surfaces as `unknown(timeout)` rather than a hung worker, even when
//! the job never leaves the encoding phase. Synthesis
//! jobs apply the deadline to each embedded verification check (the
//! CEGIS loop re-checks feasibility many times; a per-check deadline
//! bounds each step, and a timed-out check ends the job as
//! `inconclusive`).

use crate::report::{CampaignReport, JobResult, Verdict};
use crate::spec::{CampaignSpec, JobKind};
use sta_core::attack::{AttackOutcome, AttackVerifier, VerifySession};
use sta_core::synthesis::{Synthesizer, SynthesisOutcome};
use sta_smt::{flatten_spans, Budget, Clock, Profiler, SharedSink, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How a campaign run observes itself. All fields are timing-class: they
/// change what the report's `timing` keys and the trace stream carry,
/// never the deterministic results.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker-pool size (clamped to `1..=jobs`).
    pub workers: usize,
    /// The time source for every wall-clock reading the engine takes —
    /// run total, per-job walls, and span trees. Tests inject
    /// [`sta_smt::Clock::fake`] to make timing exact.
    pub clock: Clock,
    /// Attach a span profiler to every job, collecting per-job
    /// encode/search/simplex (and CEGIS iterate/select) span trees into
    /// [`JobResult::spans`].
    pub profile: bool,
    /// Enable sampled solver progress timelines on verification jobs
    /// (conflict/restart/pivot rates over the search; see
    /// [`sta_smt::ProgressSample`]).
    pub progress: bool,
    /// Emit a campaign-level [`TraceEvent::Heartbeat`] into the trace
    /// sink at this cadence while jobs run (one is always emitted
    /// immediately at run start so even sub-period campaigns show
    /// liveness). Ignored when no sink is attached. `None` disables the
    /// monitor thread entirely.
    pub heartbeat: Option<Duration>,
}

impl RunOptions {
    /// Options for a plain run on `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        RunOptions { workers, ..RunOptions::default() }
    }
}

/// Runs every job of `spec` on a pool of `workers` threads and aggregates
/// the results by job id.
///
/// `workers` is clamped to `1..=jobs`; `run(spec, 1)` executes the whole
/// campaign on one worker thread (the baseline the determinism tests
/// compare against).
pub fn run(spec: &CampaignSpec, workers: usize) -> CampaignReport {
    run_with(spec, &RunOptions::with_workers(workers), None)
}

/// Like [`run`], additionally streaming [`TraceEvent`]s into `sink` as
/// jobs complete (the `--trace` JSONL backend).
///
/// Each finished job's events — `job-start`, three `phase` records, and
/// `job-end` — are emitted in one batch so they stay contiguous in the
/// stream; the relative order of *different* jobs follows completion and
/// is therefore nondeterministic, like every other timing-class quantity.
/// The report itself is identical to [`run`]'s.
pub fn run_traced(
    spec: &CampaignSpec,
    workers: usize,
    sink: Option<&SharedSink>,
) -> CampaignReport {
    run_with(spec, &RunOptions::with_workers(workers), sink)
}

/// The fully-optioned engine entry point: worker count, clock injection,
/// span profiling, and progress sampling (see [`RunOptions`]), plus an
/// optional trace sink.
pub fn run_with(
    spec: &CampaignSpec,
    options: &RunOptions,
    sink: Option<&SharedSink>,
) -> CampaignReport {
    let start = options.clock.now();
    let n_jobs = spec.jobs.len();
    let workers = options.workers.clamp(1, n_jobs.max(1));
    if let Some(sink) = sink {
        sink.emit(&TraceEvent::RunStart { name: spec.name.clone(), jobs: n_jobs });
    }
    // Round-robin initial distribution: job j starts on worker j % W.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n_jobs).step_by(workers).collect()))
        .collect();
    let buckets: Vec<Mutex<Vec<JobResult>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();

    let finished = std::sync::atomic::AtomicUsize::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        use std::sync::atomic::Ordering;
        let stop = &stop;
        let finished = &finished;
        // The heartbeat monitor runs beside the workers: it owns no jobs,
        // only reads the shared done-counter and the clock, and is stopped
        // (and joined by the scope) once every worker has drained.
        if let (Some(sink), Some(period)) = (sink, options.heartbeat) {
            let clock = options.clock.clone();
            scope.spawn(move || loop {
                let elapsed = clock.now().saturating_sub(start);
                sink.emit(&TraceEvent::Heartbeat {
                    done: finished.load(Ordering::Relaxed),
                    total: n_jobs,
                    elapsed_us: elapsed.as_micros() as u64,
                });
                // Sleep in short slices so the stop flag is noticed well
                // before a long period elapses.
                let mut waited = Duration::ZERO;
                while waited < period {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let slice = Duration::from_millis(10).min(period - waited);
                    std::thread::sleep(slice);
                    waited += slice;
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            });
        }
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let buckets = &buckets;
                scope.spawn(move || {
                    let mut sessions: BTreeMap<(usize, bool), VerifySession> =
                        BTreeMap::new();
                    let mut done = Vec::new();
                    while let Some(job) = next_job(queues, w) {
                        let result = execute(spec, job, w, &mut sessions, options);
                        if let Some(sink) = sink {
                            sink.emit_all(&job_events(&result));
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                        done.push(result);
                    }
                    let mut bucket = lock(&buckets[w]);
                    bucket.extend(done);
                })
            })
            .collect();
        let mut panicked = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panicked = Some(payload);
            }
        }
        // Raise the stop flag before re-raising any worker panic: the
        // scope joins the monitor during unwind, and it only exits once
        // the flag is up.
        stop.store(true, Ordering::Relaxed);
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    });

    let mut results: Vec<JobResult> = buckets
        .into_iter()
        .flat_map(|b| b.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect();
    results.sort_unstable_by_key(|r| r.id);
    let report = CampaignReport {
        name: spec.name.clone(),
        workers,
        total_wall: options.clock.now().saturating_sub(start),
        results,
    };
    if let Some(sink) = sink {
        sink.emit(&TraceEvent::RunEnd {
            name: spec.name.clone(),
            wall_us: report.total_wall.as_micros() as u64,
        });
    }
    report
}

/// The trace-event batch of one finished job: `job-start`, a `phase`
/// record per phase (with wall clock where tracked), `job-end`.
fn job_events(result: &JobResult) -> Vec<TraceEvent> {
    let mut events = vec![TraceEvent::JobStart {
        job: result.id,
        label: result.label.clone(),
        case: result.case.clone(),
    }];
    if let Some(metrics) = &result.metrics {
        for (phase, mut counters) in metrics.grouped() {
            let wall_us = result
                .phase_wall
                .as_ref()
                .and_then(|pw| pw.wall_of(phase))
                .map(|d| d.as_micros() as u64);
            // The trace is observational, so the scheduling-dependent
            // cache counters belong here even though the deterministic
            // report excludes them.
            if let (sta_smt::Phase::Encode, Some(pw)) = (phase, &result.phase_wall) {
                counters.push(("cache_hits", pw.cache_hits));
                counters.push(("cache_misses", pw.cache_misses));
            }
            if let (sta_smt::Phase::Search, Some(pw)) = (phase, &result.phase_wall) {
                counters.push(("refactorizations", pw.refactorizations));
            }
            events.push(TraceEvent::Phase { job: result.id, phase, counters, wall_us });
        }
    }
    if let Some(spans) = &result.spans {
        for (path, node) in flatten_spans(spans) {
            events.push(TraceEvent::Span {
                job: result.id,
                path,
                count: node.count,
                incl_us: node.inclusive.as_micros() as u64,
                excl_us: node.exclusive().as_micros() as u64,
            });
        }
    }
    if let Some(stats) = &result.stats {
        for sample in &stats.progress {
            events.push(TraceEvent::Progress {
                job: result.id,
                at_us: sample.at.as_micros() as u64,
                counters: sample.counters(),
            });
        }
    }
    events.push(TraceEvent::JobEnd {
        job: result.id,
        verdict: result.verdict.token().to_string(),
        wall_us: result.wall.as_micros() as u64,
    });
    events
}

/// Locks a mutex, shrugging off poisoning: a panicking sibling worker
/// already propagates through the thread scope, and job results are
/// append-only, so the guarded data is never half-updated.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pops the next job: own deque front first, then steal a sibling's back.
fn next_job(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(job) = lock(&queues[me]).pop_front() {
        return Some(job);
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Some(job) = lock(&queues[victim]).pop_back() {
            return Some(job);
        }
    }
    None
}

/// Executes one job on this worker, reusing or creating the worker's
/// session for the job's `(case, topology)` key.
fn execute(
    spec: &CampaignSpec,
    job_id: usize,
    worker: usize,
    sessions: &mut BTreeMap<(usize, bool), VerifySession>,
    options: &RunOptions,
) -> JobResult {
    let job = &spec.jobs[job_id];
    let case = &spec.cases[job.case];
    let timeout = spec.effective_timeout_ms(job);
    // One clock read per boundary: the job wall is `end − started`, never
    // a second `elapsed()` that could disagree with other readings taken
    // for the same row.
    let started = options.clock.now();
    // A fresh per-job profiler keeps span trees attributable to one job;
    // the report merges them by name for the campaign-level view.
    let profiler = options
        .profile
        .then(|| Profiler::with_clock(options.clock.clone()));
    let mut result = JobResult {
        id: job_id,
        label: job.label.clone(),
        case: case.name.clone(),
        verdict: Verdict::Unsat,
        witness: None,
        architecture: None,
        iterations: None,
        stats: None,
        metrics: None,
        phase_wall: None,
        spans: None,
        wall: Duration::ZERO,
        worker,
    };
    match &job.kind {
        JobKind::Verify(model) => {
            let key = (job.case, model.allow_topology_attack);
            let session = sessions.entry(key).or_insert_with(|| {
                VerifySession::with_verifier(
                    AttackVerifier::new(&case.system)
                        .with_certify(spec.certify)
                        .with_simplex(spec.simplex),
                    model.allow_topology_attack,
                )
            });
            if let Some(p) = &profiler {
                session.set_profiler(p.clone());
            }
            session.set_progress_sampling(options.progress);
            // The budget starts ticking at job start, not spec build.
            let budget = match timeout {
                Some(ms) => Budget::with_timeout(Duration::from_millis(ms)),
                None => Budget::unlimited(),
            };
            let report = session.verify_with_budget(model, &budget);
            result.metrics = Some(report.stats.phase_metrics());
            result.phase_wall = Some(report.stats.phase_timings());
            result.stats = Some(report.stats);
            result.verdict = match report.outcome {
                AttackOutcome::Feasible(v) => {
                    result.witness = Some(*v);
                    Verdict::Sat
                }
                AttackOutcome::Infeasible => Verdict::Unsat,
                AttackOutcome::Unknown(why) => Verdict::Unknown(why),
            };
        }
        JobKind::Synthesize { attacker, config } => {
            let mut synth = Synthesizer::new(&case.system)
                .with_certify(spec.certify)
                .with_simplex(spec.simplex);
            if let Some(p) = &profiler {
                synth = synth.with_profiler(p.clone());
            }
            let mut attacker = attacker.clone();
            if attacker.timeout_ms.is_none() {
                attacker.timeout_ms = timeout;
            }
            // The campaign-wide A/B switch can only downgrade a job to the
            // clone-per-check baseline, never force a core on a job whose
            // own config opted out.
            let mut config = config.clone();
            config.incremental &= spec.incremental;
            let (outcome, obs) = synth.synthesize_with_metrics(&attacker, &config);
            result.metrics = Some(obs.metrics);
            result.phase_wall = Some(obs.timings);
            result.verdict = match outcome {
                SynthesisOutcome::Architecture(a) => {
                    result.iterations = Some(a.iterations);
                    result.architecture = Some(a.secured_buses);
                    Verdict::Architecture
                }
                SynthesisOutcome::NoSolution { iterations } => {
                    result.iterations = Some(iterations);
                    Verdict::NoSolution
                }
                SynthesisOutcome::Inconclusive { iterations } => {
                    result.iterations = Some(iterations);
                    Verdict::Inconclusive
                }
            };
        }
    }
    if let Some(p) = &profiler {
        result.spans = Some(p.take());
    }
    result.wall = options.clock.now().saturating_sub(started);
    result
}

/// A queued unit of foreign work: the closure receives the index of the
/// worker that executes it.
type ForeignJob = Box<dyn FnOnce(usize) + Send + 'static>;

/// Why [`ServicePool::submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — admission control rejected the job.
    /// The caller should shed load (the service layer answers
    /// `overloaded`) rather than block.
    Overloaded,
    /// The pool is draining or closed; no new work is accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => f.write_str("queue full (overloaded)"),
            SubmitError::Closed => f.write_str("pool closed"),
        }
    }
}

struct PoolState {
    /// Per-worker deques, same stealing discipline as [`run_with`]:
    /// owners pop their own front, thieves take a sibling's back.
    queues: Vec<VecDeque<ForeignJob>>,
    /// Round-robin submission cursor.
    next: usize,
    /// Jobs queued but not yet picked up — the admission-control gauge.
    pending: usize,
    /// Admission bound: `submit` rejects once `pending` reaches this.
    capacity: usize,
    closed: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    ready: Condvar,
}

/// A persistent work-stealing pool accepting *foreign* jobs — arbitrary
/// boxed closures — with bounded admission.
///
/// [`run_with`] executes one campaign and tears its threads down; a
/// long-running service instead keeps this pool alive across requests and
/// submits each request as a job. The scheduling discipline is the same
/// (per-worker deques, owner-front pop, sibling-back steal); the
/// difference is the bounded queue: once `capacity` jobs are waiting,
/// [`ServicePool::submit`] fails fast with [`SubmitError::Overloaded`]
/// instead of queueing unboundedly — explicit load shedding for the
/// service layer's admission control.
///
/// Dropping the pool (or calling [`ServicePool::close`]) stops accepting
/// work, lets queued jobs finish, and joins the worker threads.
pub struct ServicePool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.shared.state);
        f.debug_struct("ServicePool")
            .field("workers", &self.handles.len())
            .field("pending", &state.pending)
            .field("closed", &state.closed)
            .finish()
    }
}

impl ServicePool {
    /// Spawns a pool of `workers` threads (at least one) whose queue
    /// admits at most `capacity` not-yet-started jobs (at least one).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                next: 0,
                pending: 0,
                capacity: capacity.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        ServicePool { shared, handles }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs queued but not yet started (the admission-control gauge; the
    /// job currently running on each worker is not counted).
    pub fn pending(&self) -> usize {
        lock(&self.shared.state).pending
    }

    /// Submits a job, failing fast when the pool is full or closed. The
    /// job lands on the next worker's deque round-robin and may be stolen
    /// by an idle sibling. At most the constructor's `capacity` jobs wait
    /// at any instant, however many clients race.
    pub fn submit(
        &self,
        job: impl FnOnce(usize) + Send + 'static,
    ) -> Result<(), SubmitError> {
        let mut state = lock(&self.shared.state);
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.pending >= state.capacity {
            return Err(SubmitError::Overloaded);
        }
        let w = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        state.queues[w].push_back(Box::new(job));
        state.pending += 1;
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Stops accepting work, runs every already-queued job to completion,
    /// and joins the workers. Equivalent to dropping the pool, but
    /// explicit at service-drain call sites.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.closed = true;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            // A panicked worker already surfaced its panic through the
            // job; nothing further to do with the join result.
            let _ = h.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: pop own front, steal sibling back, sleep when idle, exit
/// when closed and drained.
fn worker_loop(shared: &PoolShared, me: usize) {
    let mut state = lock(&shared.state);
    loop {
        let job = {
            let n = state.queues.len();
            match state.queues[me].pop_front() {
                Some(job) => Some(job),
                None => (1..n)
                    .filter_map(|offset| state.queues[(me + offset) % n].pop_back())
                    .next(),
            }
        };
        match job {
            Some(job) => {
                state.pending -= 1;
                drop(state);
                job(me);
                state = lock(&shared.state);
            }
            None if state.closed => return,
            None => {
                state = shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_core::attack::{AttackModel, StateTarget};
    use sta_grid::{ieee14, BusId};

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new("tiny");
        let c = spec.add_case("ieee14", ieee14::system());
        spec.verify(
            c,
            "open",
            AttackModel::new(14).target(BusId(11), StateTarget::MustChange),
        );
        spec.verify(c, "blocked", AttackModel::new(14).max_altered_measurements(0));
        spec.verify(
            c,
            "capped",
            AttackModel::new(14)
                .target(BusId(7), StateTarget::MustChange)
                .max_altered_measurements(10),
        );
        spec
    }

    #[test]
    fn runs_all_jobs_and_sorts_by_id() {
        let spec = tiny_spec();
        let report = run(&spec, 2);
        assert_eq!(report.results.len(), 3);
        let ids: Vec<usize> = report.results.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(report.results[0].verdict, Verdict::Sat);
        assert!(report.results[0].witness.is_some());
        assert_eq!(report.results[1].verdict, Verdict::Unsat);
        assert_eq!(report.results[2].verdict, Verdict::Sat);
    }

    #[test]
    fn worker_count_is_clamped() {
        let spec = tiny_spec();
        let report = run(&spec, 64);
        assert_eq!(report.workers, 3);
        let report = run(&spec, 0);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn empty_campaign_yields_empty_report() {
        let spec = CampaignSpec::new("empty");
        let report = run(&spec, 4);
        assert!(report.results.is_empty());
        assert_eq!(report.summary(), Vec::<(&str, usize)>::new());
    }

    #[test]
    fn heartbeat_monitor_emits_at_least_one_event() {
        let spec = tiny_spec();
        let collect = sta_smt::CollectSink::new();
        let shared = SharedSink::new(Box::new(collect.clone()));
        let mut options = RunOptions::with_workers(2);
        options.heartbeat = Some(Duration::from_millis(5));
        let report = run_with(&spec, &options, Some(&shared));
        assert_eq!(report.results.len(), 3);
        let events = collect.events();
        let heartbeats: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Heartbeat { done, total, .. } => Some((*done, *total)),
                _ => None,
            })
            .collect();
        // One heartbeat fires unconditionally at run start, so even a
        // campaign faster than the period shows liveness.
        assert!(!heartbeats.is_empty());
        for (done, total) in heartbeats {
            assert_eq!(total, 3);
            assert!(done <= 3);
        }
    }

    #[test]
    fn service_pool_runs_jobs_on_every_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ServicePool::new(3, 64);
        assert_eq!(pool.workers(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..24 {
            let counter = Arc::clone(&counter);
            pool.submit(move |_w| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .expect("pool accepts under capacity");
        }
        pool.close();
        assert_eq!(counter.load(Ordering::SeqCst), 24);
    }

    #[test]
    fn service_pool_sheds_load_past_capacity() {
        use std::sync::mpsc;
        let pool = ServicePool::new(1, 1);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        pool.submit(move |_w| {
            let _ = started_tx.send(());
            let _ = release_rx.recv();
        })
        .expect("first job admitted");
        // Wait until the blocker occupies the only worker, then fill the
        // one queue slot; the next submit must be rejected, not queued.
        started_rx.recv().expect("blocker started");
        pool.submit(|_w| {}).expect("one job may wait");
        assert_eq!(pool.submit(|_w| {}), Err(SubmitError::Overloaded));
        assert_eq!(pool.pending(), 1);
        release_tx.send(()).expect("release the blocker");
        pool.close();
    }

    #[test]
    fn closed_service_pool_rejects_and_drains() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ServicePool::new(2, 16);
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            pool.submit(move |_w| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .expect("admitted");
        }
        pool.close();
        // All queued jobs ran before close returned.
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
