//! Campaign-engine integration tests: scheduling determinism and deadline
//! behavior over the real IEEE 14-bus encoding.

use sta_campaign::{run, run_traced, run_with, CampaignSpec, RunOptions, Verdict};
use sta_core::attack::{AttackModel, AttackVerifier, StateTarget};
use sta_core::synthesis::SynthesisConfig;
use sta_grid::{ieee14, BusId};
use sta_smt::{CollectSink, SharedSink, TraceEvent};
use std::time::Instant;

/// A mixed campaign touching every job shape: sat/unsat verification,
/// topology poisoning, knowledge limits, and a synthesis job.
fn mixed_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("mixed");
    let case = spec.add_case("ieee14", ieee14::system());
    let unsecured = spec.add_case("ieee14-unsecured", ieee14::system_unsecured());
    for (i, t) in [3usize, 7, 11].into_iter().enumerate() {
        spec.verify(
            case,
            format!("open-{i}"),
            AttackModel::new(14).target(BusId(t), StateTarget::MustChange),
        );
        spec.verify(
            case,
            format!("capped-{i}"),
            AttackModel::new(14)
                .target(BusId(t), StateTarget::MustChange)
                .max_altered_measurements(10)
                .max_compromised_buses(4),
        );
    }
    spec.verify(case, "blocked", AttackModel::new(14).max_altered_measurements(0));
    spec.verify(
        case,
        "limited-knowledge",
        AttackModel::new(14).unknown_lines(20, &[2, 16]),
    );
    spec.verify(
        unsecured,
        "topology",
        AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .with_topology_attack(),
    );
    spec.synthesize(
        case,
        "synth-budget-3",
        AttackModel::new(14)
            .target(BusId(11), StateTarget::MustChange)
            .max_altered_measurements(8),
        SynthesisConfig::with_budget(3),
    );
    spec
}

/// Satellite: the same spec at 1 worker and at 8 workers must produce
/// byte-identical reports once the `timing` keys are stripped — witness
/// bytes, stats and ordering included.
#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let spec = mixed_spec();
    let serial = run(&spec, 1);
    let parallel = run(&spec, 8);
    assert_eq!(serial.workers, 1);
    assert!(parallel.workers > 1);
    let a = serial.to_json(false);
    let b = parallel.to_json(false);
    assert_eq!(a, b, "deterministic JSON must not depend on scheduling");
    // Sanity: the timing-bearing form really differs in content shape.
    assert!(serial.to_json(true).contains("\"timing\""));
    // And the campaign actually exercised both polarities.
    assert!(a.contains("\"verdict\":\"sat\""));
    assert!(a.contains("\"verdict\":\"unsat\""));
    assert!(a.contains("\"verdict\":\"architecture\""));
}

/// Satellite: the per-phase counter rollup is part of the deterministic
/// report — identical at 1 and 4 workers, both as a struct and byte for
/// byte in the stripped JSON, and nontrivial (the campaign really ran).
#[test]
fn metrics_rollup_is_byte_identical_across_worker_counts() {
    let spec = mixed_spec();
    let serial = run(&spec, 1);
    let parallel = run(&spec, 4);
    let a = serial.metrics_rollup();
    let b = parallel.metrics_rollup();
    assert_eq!(a, b, "counter rollup must not depend on scheduling");
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.decisions > 0 && a.clauses > 0 && a.pivots > 0, "{a:?}");
    // Every job carries its own metrics, and the deterministic JSON
    // embeds both the per-job objects and the campaign rollup.
    assert!(serial.results.iter().all(|r| r.metrics.is_some()));
    let json = serial.to_json(false);
    assert!(json.contains("\"metrics\":{\"encode\":"));
    assert!(json.contains(&format!(",\"metrics\":{}", a.to_json())));
    // The latency histogram's deterministic half — per-phase sample
    // counts — closes the stripped report: one wall sample per job, one
    // encode/search sample per phase-tracked job.
    let n = spec.jobs.len() as u64;
    assert!(json.ends_with(&format!(
        ",\"latency_samples\":{{\"wall\":{n},\"encode\":{n},\"search\":{n}}}}}"
    )));
    assert_eq!(
        serial.latency_sample_counts(),
        parallel.latency_sample_counts(),
        "histogram sample counts must not depend on scheduling"
    );
    // The bucket contents are wall clock: they live under `timing` only.
    assert!(!json.contains("\"buckets\""));
    let timed = serial.to_json(true);
    assert!(timed.contains("\"latency\":{\"wall\":{\"count\":"));
    assert!(timed.contains("\"p99_us\""));
}

/// Tentpole: `run_traced` streams a well-formed event sequence — one
/// run-start/run-end bracket, and a contiguous job-start → phase× →
/// job-end batch per job.
#[test]
fn traced_run_emits_contiguous_job_batches() {
    let spec = mixed_spec();
    let collect = CollectSink::new();
    let sink = SharedSink::new(Box::new(collect.clone()));
    let report = run_traced(&spec, 4, Some(&sink));
    let events = collect.events();
    assert!(matches!(&events[0], TraceEvent::RunStart { jobs, .. } if *jobs == spec.jobs.len()));
    assert!(matches!(events.last(), Some(TraceEvent::RunEnd { .. })));
    // Each job's batch is contiguous: job-start, its phase records, then
    // its job-end, with no other job's events interleaved.
    let mut open: Option<usize> = None;
    let mut ended = 0usize;
    for ev in &events[1..events.len() - 1] {
        match ev {
            TraceEvent::JobStart { job, .. } => {
                assert_eq!(open, None, "job {job} started inside another batch");
                open = Some(*job);
            }
            TraceEvent::Phase { job, .. } => assert_eq!(open, Some(*job)),
            TraceEvent::JobEnd { job, verdict, .. } => {
                assert_eq!(open, Some(*job));
                assert!(!verdict.is_empty());
                open = None;
                ended += 1;
            }
            other => panic!("unexpected event inside run: {other:?}"),
        }
    }
    assert_eq!(open, None);
    assert_eq!(ended, spec.jobs.len());
    // The trace carries real counters and the cache behavior the
    // deterministic report deliberately omits.
    let phase_json: Vec<String> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Phase { .. }))
        .map(|e| e.to_json())
        .collect();
    assert!(phase_json.iter().any(|j| j.contains("\"phase\":\"search\"")));
    assert!(phase_json.iter().any(|j| j.contains("\"cache_hits\":")));
    // The traced report matches the untraced one byte for byte.
    assert_eq!(report.to_json(false), run(&spec, 1).to_json(false));
}

/// Tentpole: a profiled run attaches a span tree to every job — `verify`
/// wrapping `encode`/`search` for verification jobs, `iterate`/`select`
/// for synthesis — streams span and progress events into the trace, and
/// leaves the deterministic report untouched.
#[test]
fn profiled_run_collects_spans_and_progress() {
    let spec = mixed_spec();
    let collect = CollectSink::new();
    let sink = SharedSink::new(Box::new(collect.clone()));
    let options = RunOptions {
        workers: 2,
        profile: true,
        progress: true,
        ..RunOptions::default()
    };
    let report = run_with(&spec, &options, Some(&sink));
    // Observation must not perturb the deterministic output.
    assert_eq!(report.to_json(false), run(&spec, 1).to_json(false));
    assert!(report.results.iter().all(|r| r.spans.is_some()));
    let merged = report.merged_spans();
    let verify = merged
        .iter()
        .find(|n| n.name == "verify")
        .expect("verify root span");
    assert!(verify.children.iter().any(|n| n.name == "encode"));
    assert!(verify.children.iter().any(|n| n.name == "search"));
    let iterate = merged
        .iter()
        .find(|n| n.name == "iterate")
        .expect("synthesis iterate span");
    assert!(iterate.children.iter().any(|n| n.name == "select"));
    // The trace stream carries per-job span paths and sampled progress
    // timelines alongside the usual phase records.
    let events = collect.events();
    assert!(events.iter().any(
        |e| matches!(e, TraceEvent::Span { path, .. } if path == "verify/encode/delta")
    ));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Progress { .. })));
    // An unprofiled run attaches nothing.
    assert!(run(&spec, 2).results.iter().all(|r| r.spans.is_none()));
}

/// Satellite: worker-count edge cases — one worker, and more workers than
/// jobs — complete every job and agree with each other.
#[test]
fn worker_count_edge_cases_complete_all_jobs() {
    let spec = mixed_spec();
    let one = run(&spec, 1);
    let many = run(&spec, spec.jobs.len() + 50);
    assert_eq!(one.results.len(), spec.jobs.len());
    assert_eq!(many.results.len(), spec.jobs.len());
    assert_eq!(many.workers, spec.jobs.len(), "workers clamp to the job count");
    assert_eq!(one.to_json(false), many.to_json(false));
}

/// Campaign verdicts agree with the one-shot verifier path.
#[test]
fn campaign_verdicts_match_one_shot_verification() {
    let spec = mixed_spec();
    let report = run(&spec, 4);
    for (job, result) in spec.jobs.iter().zip(&report.results) {
        if let sta_campaign::JobKind::Verify(model) = &job.kind {
            let sys = &spec.cases[job.case].system;
            let expected = AttackVerifier::new(sys).verify(model).is_feasible();
            assert_eq!(
                result.verdict == Verdict::Sat,
                expected,
                "job {} ({})",
                result.id,
                result.label
            );
        }
    }
}

/// A job with an already-expired deadline reports `unknown(timeout)`
/// promptly, and its worker carries on with the remaining jobs.
#[test]
fn expired_deadline_job_times_out_and_pool_continues() {
    let mut spec = CampaignSpec::new("deadline");
    let case = spec.add_case("ieee14", ieee14::system());
    let doomed = spec.verify(case, "doomed", AttackModel::new(14));
    spec.verify(
        case,
        "fine",
        AttackModel::new(14).target(BusId(11), StateTarget::MustChange),
    );
    spec.set_job_timeout_ms(doomed, 0);
    let start = Instant::now();
    let report = run(&spec, 1);
    assert!(report.results[0].verdict.is_unknown(), "{:?}", report.results[0].verdict);
    assert_eq!(report.results[1].verdict, Verdict::Sat);
    assert!(report.any_unknown());
    // The doomed job must die at the first budget poll, not after a full
    // solve; the whole 2-job campaign staying under 30 s (debug builds
    // are slow, but the doomed job itself is near-instant) is ample.
    assert!(start.elapsed().as_secs() < 30, "{:?}", start.elapsed());
    let json = report.to_json(true);
    assert!(json.contains("\"verdict\":\"unknown(timeout)\""));
}

/// A campaign-wide default deadline applies to jobs without their own,
/// and a generous deadline changes nothing about the verdicts.
#[test]
fn campaign_default_timeout_is_inherited_and_generous_deadline_is_harmless() {
    let mut spec = CampaignSpec::new("inherit");
    let case = spec.add_case("ieee14", ieee14::system());
    spec.verify(case, "a", AttackModel::new(14));
    spec.verify(case, "b", AttackModel::new(14).max_altered_measurements(0));
    let spec = spec.with_timeout_ms(600_000);
    let report = run(&spec, 2);
    assert_eq!(report.results[0].verdict, Verdict::Sat);
    assert_eq!(report.results[1].verdict, Verdict::Unsat);
    assert!(!report.any_unknown());
}

/// Certified campaigns: every verification job's answer is certified and
/// the deny-mode lint stays clean, across both worker counts.
#[test]
fn certified_campaign_certifies_every_job() {
    let mut spec = CampaignSpec::new("certified");
    let case = spec.add_case("ieee14", ieee14::system());
    spec.verify(
        case,
        "sat",
        AttackModel::new(14).target(BusId(11), StateTarget::MustChange),
    );
    spec.verify(case, "unsat", AttackModel::new(14).max_altered_measurements(0));
    let spec = spec.with_certify(sta_smt::CertifyLevel::Full);
    for workers in [1, 2] {
        let report = run(&spec, workers);
        for r in &report.results {
            let stats = r.stats.as_ref().expect("verification jobs carry stats");
            assert!(stats.certified, "job {} uncertified", r.id);
            assert_eq!(stats.lint_errors, 0);
            if r.verdict == Verdict::Unsat {
                assert!(stats.proof_steps > 0, "unsat proof must replay");
            }
        }
    }
}
