//! Topology error detection.
//!
//! The paper's topology-poisoning analysis presumes the EMS runs
//! topology error detection ("since there are topology error detection
//! algorithms [4], it is important to examine if an adversary can
//! strengthen the potency of UFDI attacks by introducing topology
//! errors", §I) — so the attack must *coordinate* measurement injections
//! with the falsified statuses. This module implements the classical
//! checks such detectors use:
//!
//! 1. **Open-line flow check** — a meter on a mapped-open line must read
//!    (approximately) zero; a nonzero reading means the line is actually
//!    energized (a wrongly excluded line).
//! 2. **Residual concentration** — status errors produce gross model
//!    mismatch whose normalized residuals cluster on the meters incident
//!    to the offending line; if bad data is detected and one line's
//!    meters dominate the normalized residuals, that line's status is
//!    suspect.
//!
//! A *naive* topology falsification trips these checks; a coordinated
//! attack (paper Eqs. 11–13) adjusts every affected meter consistently
//! and sails through — exactly the behavior the test suite pins down.

use crate::bdd::BadDataDetector;
use crate::wls::WlsEstimator;
use sta_grid::{Grid, LineId, MeasurementConfig, Topology};
use sta_linalg::Vector;
use std::fmt;

/// What the detector concluded about one line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySuspicion {
    /// A mapped-open line whose meter reads nonzero — it is probably
    /// energized (wrong exclusion). Carries the offending reading.
    EnergizedOpenLine(LineId, f64),
    /// A line whose incident meters dominate an abnormal residual — its
    /// status (or parameters) are probably wrong. Carries the share of
    /// the residual mass its neighborhood holds.
    InconsistentLine(LineId, f64),
}

impl TopologySuspicion {
    /// The suspected line.
    pub fn line(&self) -> LineId {
        match *self {
            TopologySuspicion::EnergizedOpenLine(l, _) => l,
            TopologySuspicion::InconsistentLine(l, _) => l,
        }
    }
}

impl fmt::Display for TopologySuspicion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySuspicion::EnergizedOpenLine(l, v) => {
                write!(f, "line {} mapped open but metering {v:+.4} pu", l.0 + 1)
            }
            TopologySuspicion::InconsistentLine(l, s) => {
                write!(f, "line {} residual concentration {s:.2}", l.0 + 1)
            }
        }
    }
}

/// A topology error detector.
#[derive(Debug, Clone, Copy)]
pub struct TopologyDetector {
    /// Significance of the underlying chi-square bad data test.
    pub alpha: f64,
    /// Flow magnitude (pu) above which a mapped-open line's meter counts
    /// as energized.
    pub flow_tolerance: f64,
    /// Fraction of the total residual mass one line's neighborhood must
    /// hold to be declared inconsistent. Identification is
    /// neighborhood-accurate, not always line-exact: a wrong status
    /// smears residuals over the adjacent lines too.
    pub concentration_threshold: f64,
    /// Assumed meter standard deviation (pu). The chi-square statistic is
    /// weighted by `1/σ²`; with unit weights a ~1 pu topology mismatch
    /// would drown in the implied 1 pu "noise", so realistic SCADA
    /// precision matters here.
    pub meter_sigma: f64,
}

impl Default for TopologyDetector {
    fn default() -> Self {
        TopologyDetector {
            alpha: 0.05,
            flow_tolerance: 1e-3,
            concentration_threshold: 0.3,
            meter_sigma: 0.02,
        }
    }
}

impl TopologyDetector {
    /// Creates a detector with default thresholds at significance
    /// `alpha`.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0, 1)");
        TopologyDetector { alpha, ..TopologyDetector::default() }
    }

    /// Inspects a measurement snapshot `z` (in taken order for the given
    /// configuration) against the mapped topology.
    ///
    /// Returns every suspicion raised; an empty vector means the snapshot
    /// is topologically consistent.
    ///
    /// # Errors
    /// Returns [`crate::UnobservableError`] if the mapped topology cannot
    /// support an estimate.
    pub fn inspect(
        &self,
        grid: &Grid,
        mapped: &Topology,
        measurements: &MeasurementConfig,
        reference: sta_grid::BusId,
        z: &Vector,
    ) -> Result<Vec<TopologySuspicion>, crate::UnobservableError> {
        let mut suspicions = Vec::new();
        let l = grid.num_lines();

        let weight = 1.0 / (self.meter_sigma * self.meter_sigma);
        let num_taken = measurements.num_taken();
        let estimator = WlsEstimator::new(
            grid,
            mapped,
            measurements,
            reference,
            Some(vec![weight; num_taken]),
        )?;

        // Check 1: meters of mapped-open lines must read ~0.
        for (row, &m) in estimator.taken_rows().iter().enumerate() {
            let line = if m < l {
                Some(LineId(m))
            } else if m < 2 * l {
                Some(LineId(m - l))
            } else {
                None
            };
            if let Some(line) = line {
                if !mapped.is_in_service(line) && z[row].abs() > self.flow_tolerance {
                    // Report each line once (prefer the forward meter).
                    if !suspicions
                        .iter()
                        .any(|s: &TopologySuspicion| s.line() == line)
                    {
                        suspicions
                            .push(TopologySuspicion::EnergizedOpenLine(line, z[row]));
                    }
                }
            }
        }

        // Check 2: residual concentration on a closed line's meters.
        let estimate = estimator.estimate(z)?;
        let detector = BadDataDetector::new(self.alpha);
        if detector.detect(&estimator, &estimate).is_bad() {
            let mut per_line = vec![0.0f64; l];
            let mut total = 0.0f64;
            for (row, &m) in estimator.taken_rows().iter().enumerate() {
                let r2 = estimate.residual[row] * estimate.residual[row];
                total += r2;
                // Attribute the squared residual to incident lines.
                if m < l {
                    per_line[m] += r2;
                } else if m < 2 * l {
                    per_line[m - l] += r2;
                } else {
                    let bus = sta_grid::BusId(m - 2 * l);
                    for (li, _) in grid.lines_at(bus) {
                        per_line[li.0] += r2;
                    }
                }
            }
            if total > 0.0 {
                let (best, score) = per_line
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, &s)| (i, s))
                    .unwrap_or((0, 0.0));
                if score / total >= self.concentration_threshold {
                    suspicions.push(TopologySuspicion::InconsistentLine(
                        LineId(best),
                        score / total,
                    ));
                }
            }
        }
        Ok(suspicions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcflow;
    use sta_grid::{ieee14, MeasurementId};

    fn snapshot() -> (sta_grid::TestSystem, dcflow::OperatingPoint, Vector) {
        let sys = ieee14::system();
        // Seed 3 puts a substantial flow (≈ 0.38 pu) on line 13, the line
        // the naive-exclusion tests falsify.
        let injections = dcflow::synthetic_injections(14, 3);
        let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
            .unwrap();
        let est = WlsEstimator::for_system(&sys).unwrap();
        let z = est.measure(&op);
        (sys, op, z)
    }

    #[test]
    fn consistent_snapshot_raises_nothing() {
        let (sys, _op, z) = snapshot();
        let det = TopologyDetector::default();
        let suspicions = det
            .inspect(&sys.grid, &sys.topology, &sys.measurements, sys.reference_bus, &z)
            .unwrap();
        assert!(suspicions.is_empty(), "{suspicions:?}");
    }

    #[test]
    fn naive_exclusion_is_caught_by_flow_check() {
        // The EMS maps line 13 open but the attacker does NOT zero its
        // meters: the energized-open-line check fires.
        let (sys, _op, z) = snapshot();
        let mapped = sys.topology.with_line_open(LineId(12));
        let det = TopologyDetector::default();
        let suspicions = det
            .inspect(&sys.grid, &mapped, &sys.measurements, sys.reference_bus, &z)
            .unwrap();
        assert!(
            suspicions
                .iter()
                .any(|s| matches!(s, TopologySuspicion::EnergizedOpenLine(l, _) if *l == LineId(12))),
            "{suspicions:?}"
        );
    }

    #[test]
    fn naive_exclusion_with_zeroed_meters_still_caught_by_residuals() {
        // The attacker zeroes the line's own meters but does not adjust
        // the incident injections: residual concentration fires on (a
        // neighborhood of) the excluded line.
        let (sys, _op, mut z) = snapshot();
        let mapped = sys.topology.with_line_open(LineId(12));
        let est = WlsEstimator::new(
            &sys.grid,
            &mapped,
            &sys.measurements,
            sys.reference_bus,
            None,
        )
        .unwrap();
        for m in [12usize, 32] {
            if let Some(row) = est.row_of(MeasurementId(m)) {
                z[row] = 0.0;
            }
        }
        let det = TopologyDetector::default();
        let suspicions = det
            .inspect(&sys.grid, &mapped, &sys.measurements, sys.reference_bus, &z)
            .unwrap();
        assert!(!suspicions.is_empty(), "half-coordinated exclusion undetected");
        // Identification is neighborhood-accurate: the suspected line
        // shares a bus with the actually-falsified line 13 (6–13).
        let falsified = sys.grid.line(LineId(12)).clone();
        let suspect = sys.grid.line(suspicions[0].line()).clone();
        assert!(
            suspect.touches(falsified.from) || suspect.touches(falsified.to),
            "suspicion {} not adjacent to line 13",
            suspicions[0]
        );
    }

    #[test]
    fn display_formats() {
        let s = TopologySuspicion::EnergizedOpenLine(LineId(4), 1.25);
        assert!(s.to_string().contains("line 5"));
        let s = TopologySuspicion::InconsistentLine(LineId(0), 0.9);
        assert!(s.to_string().contains("line 1"));
        assert_eq!(s.line(), LineId(0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = TopologyDetector::new(0.0);
    }
}
