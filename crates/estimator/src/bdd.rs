//! Bad data detection and identification.
//!
//! Detection is the chi-square test on the weighted residual SSE (paper
//! §II-B); identification is the classical largest-normalized-residual
//! (LNR) method: normalize each residual by the square root of its
//! diagonal entry in the residual covariance `Ω = S·R` with sensitivity
//! `S = I − H·G⁻¹·Hᵀ·W`, and flag the largest.

use crate::chi2;
use crate::wls::{StateEstimate, WlsEstimator};
use sta_linalg::{CholeskyError, SparseCholesky, Vector};
use std::fmt;

/// Error from LNR identification: the residual covariance could not be
/// formed. This is a *numerical* failure — distinct from the ordinary
/// "no measurement normalizes above the cutoff" outcome, which
/// [`BadDataDetector::identify`] reports as `Ok(None)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdentificationError {
    /// `G = HᵀH` was not positive definite: the estimator's configuration
    /// is (or has numerically become) unobservable, so residual
    /// covariances are undefined. Worth surfacing — it means the estimate
    /// being screened is itself suspect.
    CovarianceNotPositiveDefinite,
    /// A covariance solve failed on dimensions — an internal
    /// inconsistency in the estimator's cached matrices.
    CovarianceSolveFailed,
}

impl fmt::Display for IdentificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentificationError::CovarianceNotPositiveDefinite => f.write_str(
                "residual covariance is not positive definite (configuration unobservable)",
            ),
            IdentificationError::CovarianceSolveFailed => {
                f.write_str("residual covariance solve failed on dimensions")
            }
        }
    }
}

impl std::error::Error for IdentificationError {}

impl From<CholeskyError> for IdentificationError {
    fn from(e: CholeskyError) -> Self {
        match e {
            CholeskyError::NotPositiveDefinite => {
                IdentificationError::CovarianceNotPositiveDefinite
            }
            _ => IdentificationError::CovarianceSolveFailed,
        }
    }
}

/// Verdict of one detection pass.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Residuals are consistent with noise at the configured significance.
    Clean,
    /// Bad data detected; carries the offending statistic value.
    BadData {
        /// The weighted SSE that tripped the test.
        statistic: f64,
        /// The threshold it exceeded.
        threshold: f64,
    },
}

impl Verdict {
    /// Whether bad data was flagged.
    pub fn is_bad(&self) -> bool {
        matches!(self, Verdict::BadData { .. })
    }
}

/// A chi-square bad data detector at a fixed significance level.
///
/// # Examples
///
/// ```
/// use sta_estimator::{dcflow, BadDataDetector, WlsEstimator};
/// use sta_grid::ieee14;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = ieee14::system();
/// let est = WlsEstimator::for_system(&sys)?;
/// let op = dcflow::solve(
///     &sys.grid, &sys.topology,
///     &dcflow::synthetic_injections(14, 1), sys.reference_bus)?;
/// let mut z = est.measure(&op);
/// let detector = BadDataDetector::new(0.05);
/// assert!(!detector.detect(&est, &est.estimate(&z)?).is_bad());
/// z[3] += 50.0; // gross error
/// assert!(detector.detect(&est, &est.estimate(&z)?).is_bad());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BadDataDetector {
    /// False-alarm probability of the chi-square test.
    alpha: f64,
}

impl BadDataDetector {
    /// Creates a detector with false-alarm probability `alpha`.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0, 1)");
        BadDataDetector { alpha }
    }

    /// The significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Chi-square test on a state estimate.
    pub fn detect(&self, est: &WlsEstimator, result: &StateEstimate) -> Verdict {
        let threshold = est.detection_threshold(self.alpha);
        if result.weighted_sse > threshold {
            Verdict::BadData { statistic: result.weighted_sse, threshold }
        } else {
            Verdict::Clean
        }
    }

    /// `l2`-norm variant of the test (the form quoted in the paper's
    /// §II-B): flags when `‖z − H·x̂‖ > τ` with `τ` the square root of the
    /// chi-square threshold (valid for unit weights).
    pub fn detect_by_norm(&self, _est: &WlsEstimator, result: &StateEstimate) -> Verdict {
        let dof = result.degrees_of_freedom.max(1);
        let tau = chi2::chi2_quantile(dof, 1.0 - self.alpha).sqrt();
        if result.residual_norm > tau {
            Verdict::BadData {
                statistic: result.residual_norm,
                threshold: tau,
            }
        } else {
            Verdict::Clean
        }
    }

    /// Largest-normalized-residual identification: the taken-row index of
    /// the most suspicious measurement and its normalized residual.
    /// `Ok(None)` means every residual normalizes below 3.0 (the
    /// conventional identification cutoff) or sits on a critical
    /// measurement (vanishing covariance diagonal) — i.e. nothing to
    /// identify.
    ///
    /// # Errors
    /// Returns [`IdentificationError`] when the residual covariance
    /// cannot be formed — a numerical failure that earlier versions
    /// silently folded into `None`.
    pub fn identify(
        &self,
        est: &WlsEstimator,
        result: &StateEstimate,
    ) -> Result<Option<(usize, f64)>, IdentificationError> {
        let omega = residual_covariance_diag(est)?;
        let mut best: Option<(usize, f64)> = None;
        for (i, r) in result.residual.iter().enumerate() {
            let var = omega[i];
            if var <= 1e-10 {
                continue; // critical measurement: residual always ~0
            }
            let rn = r.abs() / var.sqrt();
            if best.map_or(true, |(_, b)| rn > b) {
                best = Some((i, rn));
            }
        }
        Ok(best.filter(|&(_, rn)| rn > 3.0))
    }
}

/// Diagonal of the residual covariance `Ω = S·R` with unit `R`, i.e. the
/// diagonal of `I − H·G⁻¹·Hᵀ` (unit weights assumed, as everywhere in the
/// paper's DC treatment). Formed sparsely: `G` inherits the bus-adjacency
/// pattern, and each diagonal entry needs one sparse solve against a
/// (≤ `deg+1`)-nonzero right-hand side.
fn residual_covariance_diag(est: &WlsEstimator) -> Result<Vector, IdentificationError> {
    let h = est.jacobian_sparse();
    let g = h.transpose().mul_mat(h);
    let chol = SparseCholesky::factor(&g)?;
    let m = h.num_rows();
    let n = h.num_cols();
    // K = H·G⁻¹·Hᵀ diagonal: for each row hᵢ of H, hᵢ·G⁻¹·hᵢᵀ.
    let mut diag = Vector::zeros(m);
    for i in 0..m {
        let (cols, vals) = h.row(i);
        let mut rhs = Vector::zeros(n);
        for (&j, &v) in cols.iter().zip(vals) {
            rhs[j] = v;
        }
        let sol = chol.solve(&rhs)?;
        let mut k_ii = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            k_ii += v * sol[j];
        }
        diag[i] = (1.0 - k_ii).max(0.0);
    }
    Ok(diag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcflow;
    use crate::wls::WlsEstimator;
    use sta_grid::ieee14;
    use sta_linalg::Vector;

    fn setup() -> (WlsEstimator, Vector) {
        let sys = ieee14::system();
        let est = WlsEstimator::for_system(&sys).unwrap();
        let op = dcflow::solve(
            &sys.grid,
            &sys.topology,
            &dcflow::synthetic_injections(14, 2),
            sys.reference_bus,
        )
        .unwrap();
        let z = est.measure(&op);
        (est, z)
    }

    #[test]
    fn clean_data_passes() {
        let (est, z) = setup();
        let det = BadDataDetector::new(0.05);
        let result = est.estimate(&z).unwrap();
        assert_eq!(det.detect(&est, &result), Verdict::Clean);
        assert_eq!(det.detect_by_norm(&est, &result), Verdict::Clean);
    }

    #[test]
    fn gross_error_detected_and_identified() {
        // LNR correctly fingers a single gross error on any measurement
        // with enough local redundancy; at least half the meters qualify.
        let (est, z) = setup();
        let det = BadDataDetector::new(0.05);
        // For a single error e with unit weights the χ² statistic is
        // exactly rn², so detection needs rn above √threshold.
        let detect_rn = est.detection_threshold(0.05).sqrt();
        let mut identified = 0usize;
        for row in 0..est.num_measurements() {
            let mut zz = z.clone();
            zz[row] += 20.0;
            let result = est.estimate(&zz).unwrap();
            if let Some((idx, rn)) = det.identify(&est, &result).unwrap() {
                assert_eq!(idx, row, "LNR must point at the corrupted meter");
                assert!(rn > 3.0);
                if rn > detect_rn * 1.01 {
                    assert!(det.detect(&est, &result).is_bad());
                }
                identified += 1;
            }
        }
        assert!(
            identified * 2 >= est.num_measurements(),
            "only {identified} of {} identified",
            est.num_measurements()
        );
    }

    #[test]
    fn stealthy_attack_evades_detection() {
        let (est, z) = setup();
        let det = BadDataDetector::new(0.05);
        // a = H·c with a large state change is invisible.
        let mut c = Vector::zeros(est.num_states());
        c[3] = 1.0;
        c[7] = -0.5;
        let a = est.jacobian().mul_vec(&c);
        let attacked = &z + &a;
        let result = est.estimate(&attacked).unwrap();
        assert_eq!(det.detect(&est, &result), Verdict::Clean);
        assert!(det.identify(&est, &result).unwrap().is_none());
    }

    #[test]
    fn small_noise_not_flagged() {
        let (est, mut z) = setup();
        let det = BadDataDetector::new(0.01);
        for i in 0..z.len() {
            z[i] += 1e-4 * ((i * 31 % 7) as f64 - 3.0);
        }
        let result = est.estimate(&z).unwrap();
        assert_eq!(det.detect(&est, &result), Verdict::Clean);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = BadDataDetector::new(1.5);
    }

    #[test]
    fn numerical_failure_maps_to_a_distinguishing_error() {
        // The error taxonomy separates "covariance not PD" (lost
        // observability) from internal dimension inconsistencies — and
        // both from the Ok(None) no-identification outcome.
        assert_eq!(
            IdentificationError::from(CholeskyError::NotPositiveDefinite),
            IdentificationError::CovarianceNotPositiveDefinite
        );
        assert_eq!(
            IdentificationError::from(CholeskyError::DimensionMismatch {
                expected: 3,
                found: 4
            }),
            IdentificationError::CovarianceSolveFailed
        );
        assert_eq!(
            IdentificationError::from(CholeskyError::PatternMismatch),
            IdentificationError::CovarianceSolveFailed
        );
    }

    #[test]
    fn healthy_estimator_identification_is_ok() {
        let (est, z) = setup();
        let det = BadDataDetector::new(0.05);
        let result = est.estimate(&z).unwrap();
        // Clean data: no error, nothing identified.
        assert_eq!(det.identify(&est, &result), Ok(None));
    }
}
