//! DC power flow: solving `B·θ = P` for an operating point.
//!
//! The DC model fixes all voltage magnitudes at 1 p.u. and solves the
//! linear power balance for the phase angles. We use it both to establish
//! base operating points (the flows a topology-poisoning attacker must
//! coordinate with, paper Eqs. 11–13) and as ground truth for end-to-end
//! estimator validation.

use sta_grid::{BusId, Grid, LineId, Topology};
use sta_linalg::{Lu, SingularMatrixError, Vector};

/// A solved operating point of the system.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Voltage phase angle of every bus (reference pinned to zero).
    pub theta: Vector,
    /// Power flow of every line in its reference direction
    /// (`P_i = ld_i(θ_lf − θ_lt)`); zero for out-of-service lines.
    pub line_flows: Vector,
    /// Power consumption of every bus (incoming minus outgoing flows,
    /// paper Eq. 4).
    pub bus_consumption: Vector,
}

/// Error from [`solve`] when the susceptance system is singular — the
/// topology is split into islands or the injections are inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerFlowError;

impl std::fmt::Display for PowerFlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DC power flow is singular (check topology connectivity)")
    }
}

impl std::error::Error for PowerFlowError {}

impl From<SingularMatrixError> for PowerFlowError {
    fn from(_: SingularMatrixError) -> Self {
        PowerFlowError
    }
}

/// Solves the DC power flow for the given *net injections* (generation
/// minus load, per bus; the reference bus balances the rest).
///
/// # Errors
/// Returns [`PowerFlowError`] if the in-service topology does not connect
/// all buses.
///
/// # Panics
/// Panics if `injections.len() != grid.num_buses()`.
///
/// # Examples
///
/// ```
/// use sta_estimator::dcflow;
/// use sta_grid::{ieee14, BusId};
/// use sta_linalg::Vector;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = ieee14::system();
/// let mut injections = vec![0.0; 14];
/// injections[1] = 1.0; // generation at bus 2
/// injections[8] = -1.0; // load at bus 9
/// let op = dcflow::solve(&sys.grid, &sys.topology, &injections, BusId(0))?;
/// assert!(op.theta[0].abs() < 1e-12); // reference angle pinned
/// # Ok(())
/// # }
/// ```
pub fn solve(
    grid: &Grid,
    topo: &Topology,
    injections: &[f64],
    reference: BusId,
) -> Result<OperatingPoint, PowerFlowError> {
    let b = grid.num_buses();
    assert_eq!(injections.len(), b, "one injection per bus");
    // Reduced susceptance matrix: drop the reference row/column.
    let full = sta_grid::topology::b_matrix(grid, topo);
    let keep: Vec<usize> = (0..b).filter(|&j| j != reference.0).collect();
    let reduced = full.select_rows(&keep).select_cols(&keep);
    let rhs: Vector = keep.iter().map(|&j| injections[j]).collect();
    let sol = Lu::factor(&reduced)?.solve(&rhs)?;
    let mut theta = Vector::zeros(b);
    for (k, &j) in keep.iter().enumerate() {
        theta[j] = sol[k];
    }
    Ok(operating_point_from_theta(grid, topo, &theta))
}

/// Computes flows and consumptions implied by a phase-angle vector.
pub fn operating_point_from_theta(
    grid: &Grid,
    topo: &Topology,
    theta: &Vector,
) -> OperatingPoint {
    let l = grid.num_lines();
    let b = grid.num_buses();
    let mut line_flows = Vector::zeros(l);
    let mut bus_consumption = Vector::zeros(b);
    for i in 0..l {
        if !topo.is_in_service(LineId(i)) {
            continue;
        }
        let line = grid.line(LineId(i));
        let p = line.admittance * (theta[line.from.0] - theta[line.to.0]);
        line_flows[i] = p;
        bus_consumption[line.to.0] += p;
        bus_consumption[line.from.0] -= p;
    }
    OperatingPoint { theta: theta.clone(), line_flows, bus_consumption }
}

/// A deterministic, physically sensible base-case injection profile:
/// alternating generation/load scaled to the system size, summing to zero.
///
/// Used by the benchmarks and topology-attack scenarios that need *some*
/// base operating point (the paper's testbed operating points are not
/// published).
pub fn synthetic_injections(num_buses: usize, seed: u64) -> Vec<f64> {
    let mut injections = vec![0.0; num_buses];
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 1000.0
    };
    let mut total = 0.0;
    for (j, slot) in injections.iter_mut().enumerate().skip(1) {
        let magnitude = 0.2 + 0.8 * next();
        let value = if j % 2 == 0 { magnitude } else { -magnitude };
        *slot = value;
        total += value;
    }
    injections[0] = -total; // reference bus balances the system
    injections
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_grid::{ieee14, synthetic, Line};

    #[test]
    fn two_bus_flow() {
        let grid = Grid::new(2, vec![Line::new(BusId(0), BusId(1), 4.0)]);
        let topo = Topology::all_closed(&grid);
        // Bus 1 consumes 1.0 (injection −1), bus 0 generates.
        let op = solve(&grid, &topo, &[1.0, -1.0], BusId(0)).unwrap();
        // P = 4(θ0 − θ1) must carry 1.0 from bus 0 to bus 1.
        assert!((op.line_flows[0] - 1.0).abs() < 1e-12);
        assert!((op.theta[1] + 0.25).abs() < 1e-12);
        assert!((op.bus_consumption[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_holds_on_ieee14() {
        let sys = ieee14::system();
        let injections = synthetic_injections(14, 1);
        let op = solve(&sys.grid, &sys.topology, &injections, sys.reference_bus).unwrap();
        // Net consumption at each bus equals −injection.
        for j in 0..14 {
            assert!(
                (op.bus_consumption[j] + injections[j]).abs() < 1e-9,
                "bus {}: {} vs {}",
                j + 1,
                op.bus_consumption[j],
                -injections[j]
            );
        }
    }

    #[test]
    fn islanded_topology_fails() {
        let grid = Grid::new(2, vec![Line::new(BusId(0), BusId(1), 4.0)]);
        let topo = Topology::all_closed(&grid).with_line_open(LineId(0));
        assert_eq!(
            solve(&grid, &topo, &[1.0, -1.0], BusId(0)).unwrap_err(),
            PowerFlowError
        );
    }

    #[test]
    fn synthetic_injections_balance() {
        for seed in 0..5 {
            let inj = synthetic_injections(30, seed);
            let total: f64 = inj.iter().sum();
            assert!(total.abs() < 1e-9);
            assert!(inj.iter().any(|&x| x != 0.0));
        }
    }

    #[test]
    fn flows_consistent_on_synthetic_case() {
        let sys = synthetic::ieee_case(30);
        let injections = synthetic_injections(30, 9);
        let op = solve(&sys.grid, &sys.topology, &injections, sys.reference_bus).unwrap();
        // Re-derive the operating point from theta and compare.
        let op2 = operating_point_from_theta(&sys.grid, &sys.topology, &op.theta);
        for i in 0..sys.grid.num_lines() {
            assert!((op.line_flows[i] - op2.line_flows[i]).abs() < 1e-12);
        }
    }
}
