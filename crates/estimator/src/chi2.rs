//! Chi-square distribution routines for bad-data detection thresholds.
//!
//! Under the Gaussian error model the weighted sum of squared residuals of
//! a WLS estimate follows a `χ²` distribution with `m − n` degrees of
//! freedom; the BDD threshold is its quantile at a chosen significance
//! level (paper §II-B). Implemented from scratch: Lanczos log-gamma, the
//! regularized lower incomplete gamma `P(a, x)` by series/continued
//! fraction, and quantiles by bisection.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~1e-13 for positive arguments.
#[allow(clippy::excessive_precision)] // canonical Lanczos g=7 table
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// # Panics
/// Panics if `a ≤ 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation converges quickly.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x) (modified Lentz).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// CDF of the chi-square distribution with `k` degrees of freedom.
///
/// # Panics
/// Panics if `k == 0` or `x < 0`.
pub fn chi2_cdf(k: usize, x: f64) -> f64 {
    assert!(k > 0, "degrees of freedom must be positive");
    gamma_p(k as f64 / 2.0, x / 2.0)
}

/// Quantile (inverse CDF) of the chi-square distribution: the `x` with
/// `CDF(x) = p`, found by bisection.
///
/// # Panics
/// Panics unless `0 < p < 1` and `k > 0`.
pub fn chi2_quantile(k: usize, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p in (0, 1)");
    assert!(k > 0, "degrees of freedom must be positive");
    let mut lo = 0.0f64;
    let mut hi = k as f64;
    while chi2_cdf(k, hi) < p {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_cdf(k, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-10);
        close(ln_gamma(0.5), std::f64::consts::PI.ln() / 2.0, 1e-10);
    }

    #[test]
    fn chi2_cdf_reference_points() {
        // χ²(2) CDF is 1 − e^{−x/2}.
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            close(chi2_cdf(2, x), 1.0 - (-x / 2.0f64).exp(), 1e-10);
        }
        // Median of χ²(1) ≈ 0.4549.
        close(chi2_cdf(1, 0.454936), 0.5, 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &k in &[1usize, 2, 5, 10, 40, 100] {
            for &p in &[0.05, 0.5, 0.95, 0.99] {
                let x = chi2_quantile(k, p);
                close(chi2_cdf(k, x), p, 1e-9);
            }
        }
    }

    #[test]
    fn known_critical_values() {
        // Standard table: χ²_{0.95, 10} ≈ 18.307.
        close(chi2_quantile(10, 0.95), 18.307, 1e-3);
        // χ²_{0.99, 30} ≈ 50.892.
        close(chi2_quantile(30, 0.99), 50.892, 1e-3);
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn zero_dof_panics() {
        let _ = chi2_cdf(0, 1.0);
    }
}
