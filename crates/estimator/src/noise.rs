//! Measurement noise models for Monte-Carlo studies.
//!
//! SCADA meters report with Gaussian error; the WLS weights are the
//! reciprocal variances of exactly this noise (paper §II-B). This module
//! provides a deterministic, seedable Gaussian sampler used by the
//! noisy-replay validation and any statistical experiment that needs
//! repeatable snapshots.

use sta_linalg::Vector;

/// A seeded Gaussian meter-noise source.
///
/// Deterministic: the same `(sigma, seed)` always produces the same
/// perturbation sequence (xorshift64* + Box–Muller).
///
/// # Examples
///
/// ```
/// use sta_estimator::noise::GaussianNoise;
/// use sta_linalg::Vector;
///
/// let mut noise = GaussianNoise::new(0.01, 42);
/// let clean = Vector::zeros(4);
/// let noisy = noise.perturb(&clean);
/// assert!(noisy.iter().any(|&x| x != 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    sigma: f64,
    state: u64,
    /// Spare sample from the last Box–Muller pair.
    spare: Option<f64>,
}

impl GaussianNoise {
    /// Creates a source with standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics unless `sigma > 0` and finite.
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        GaussianNoise { sigma, state: seed.max(1), spare: None }
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The WLS weight matching this noise level (`1/σ²`).
    pub fn weight(&self) -> f64 {
        1.0 / (self.sigma * self.sigma)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One standard-normal sample.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(g) = self.spare.take() {
            return g;
        }
        // Box–Muller.
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// One noise sample at the configured `sigma`.
    pub fn sample(&mut self) -> f64 {
        self.sigma * self.standard_normal()
    }

    /// Returns `z` with i.i.d. noise added to every entry.
    pub fn perturb(&mut self, z: &Vector) -> Vector {
        z.iter().map(|&v| v + self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let z = Vector::zeros(16);
        let a = GaussianNoise::new(0.1, 7).perturb(&z);
        let b = GaussianNoise::new(0.1, 7).perturb(&z);
        let c = GaussianNoise::new(0.1, 8).perturb(&z);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn moments_are_plausible() {
        let mut noise = GaussianNoise::new(2.0, 99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| noise.sample()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn weight_is_reciprocal_variance() {
        let noise = GaussianNoise::new(0.02, 1);
        assert!((noise.weight() - 2500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_zero_sigma() {
        let _ = GaussianNoise::new(0.0, 1);
    }

    #[test]
    fn tail_fraction_is_sane() {
        // ~32% of standard normals exceed |1σ|.
        let mut noise = GaussianNoise::new(1.0, 3);
        let n = 10_000;
        let beyond = (0..n)
            .filter(|_| noise.standard_normal().abs() > 1.0)
            .count();
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.317).abs() < 0.03, "frac {frac}");
    }
}
