//! Numerical observability analysis.
//!
//! A measurement set observes the system when the taken-row Jacobian has
//! full column rank over the non-reference states — equivalently, when the
//! WLS gain matrix is positive definite. Both the rank test and the
//! *basic measurement set* extraction (a minimal row subset of full rank,
//! the object Bobba et al.'s defense secures) live here.

use sta_grid::{BusId, Grid, MeasurementConfig, MeasurementId, Topology};
use sta_linalg::{CsrMatrix, Matrix, SparseCholesky};

/// Numerical rank of a matrix by Gaussian elimination with partial
/// pivoting; entries below `1e-9` times the largest are treated as zero.
pub fn rank(matrix: &Matrix) -> usize {
    let mut a = matrix.clone();
    let rows = a.num_rows();
    let cols = a.num_cols();
    let tol = 1e-9 * a.norm_max().max(1.0);
    let mut r = 0usize;
    for c in 0..cols {
        // Find pivot in column c at or below row r.
        let mut piv = r;
        let mut best = 0.0f64;
        for i in r..rows {
            let v = a[(i, c)].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if best <= tol {
            continue;
        }
        if piv != r {
            for j in 0..cols {
                let tmp = a[(r, j)];
                a[(r, j)] = a[(piv, j)];
                a[(piv, j)] = tmp;
            }
        }
        for i in r + 1..rows {
            let f = a[(i, c)] / a[(r, c)];
            if f == 0.0 {
                continue;
            }
            for j in c..cols {
                let upd = f * a[(r, j)];
                a[(i, j)] -= upd;
            }
        }
        r += 1;
        if r == rows {
            break;
        }
    }
    r
}

/// Whether the taken measurements observe every state (full column rank
/// of the reduced Jacobian).
///
/// # Examples
///
/// ```
/// use sta_estimator::observability;
/// use sta_grid::ieee14;
///
/// let sys = ieee14::system();
/// assert!(observability::is_observable(
///     &sys.grid, &sys.topology, &sys.measurements, sys.reference_bus));
/// ```
pub fn is_observable(
    grid: &Grid,
    topo: &Topology,
    measurements: &MeasurementConfig,
    reference: BusId,
) -> bool {
    // Observable ⟺ the gain matrix HᵀH is positive definite. The gain is
    // formed and factored sparsely, so the check is O(lines)-flavored
    // instead of the dense rank test's O(m·n²) — the dense [`rank`] stays
    // available as the oracle (equivalence pinned by property tests).
    let h = reduced_jacobian_sparse(grid, topo, measurements, reference);
    if h.num_cols() == 0 {
        return true; // one-bus system: nothing to estimate
    }
    let gain = h.transpose().mul_mat(&h);
    SparseCholesky::factor(&gain).is_ok()
}

/// The Jacobian restricted to taken rows and non-reference columns.
pub fn reduced_jacobian(
    grid: &Grid,
    topo: &Topology,
    measurements: &MeasurementConfig,
    reference: BusId,
) -> Matrix {
    let h_full = sta_grid::topology::h_matrix(grid, topo);
    let taken: Vec<usize> = measurements.taken_ids().map(|m| m.0).collect();
    let cols: Vec<usize> =
        (0..grid.num_buses()).filter(|&j| j != reference.0).collect();
    h_full.select_rows(&taken).select_cols(&cols)
}

/// Sparse form of [`reduced_jacobian`].
pub fn reduced_jacobian_sparse(
    grid: &Grid,
    topo: &Topology,
    measurements: &MeasurementConfig,
    reference: BusId,
) -> CsrMatrix {
    let h_full = sta_grid::topology::h_matrix_sparse(grid, topo);
    let taken: Vec<usize> = measurements.taken_ids().map(|m| m.0).collect();
    let cols: Vec<usize> =
        (0..grid.num_buses()).filter(|&j| j != reference.0).collect();
    h_full.select_rows(&taken).select_cols(&cols)
}

/// Extracts a *basic measurement set*: a greedy minimal subset of the
/// taken measurements whose rows span the state space. Securing exactly
/// such a set is Bobba et al.'s necessary-and-sufficient defense, the
/// baseline the paper compares its synthesis against.
///
/// Returns `None` if the system is unobservable to begin with.
pub fn basic_measurement_set(
    grid: &Grid,
    topo: &Topology,
    measurements: &MeasurementConfig,
    reference: BusId,
) -> Option<Vec<MeasurementId>> {
    let h_full = sta_grid::topology::h_matrix(grid, topo);
    let cols: Vec<usize> =
        (0..grid.num_buses()).filter(|&j| j != reference.0).collect();
    let target = cols.len();
    let mut chosen: Vec<usize> = Vec::new();
    let mut current_rank = 0usize;
    for id in measurements.taken_ids() {
        if current_rank == target {
            break;
        }
        let mut trial = chosen.clone();
        trial.push(id.0);
        let sub = h_full.select_rows(&trial).select_cols(&cols);
        let r = rank(&sub);
        if r > current_rank {
            chosen.push(id.0);
            current_rank = r;
        }
    }
    if current_rank == target {
        Some(chosen.into_iter().map(MeasurementId).collect())
    } else {
        None
    }
}

/// Identifies the *critical measurements*: taken measurements whose
/// removal makes the system unobservable.
///
/// Critical measurements matter doubly for security: their residual is
/// structurally zero, so bad data on them is undetectable (the LNR
/// identifier skips them), and a single-meter attack on one is already
/// stealthy. A defense design should either secure them or add
/// redundancy.
pub fn critical_measurements(
    grid: &Grid,
    topo: &Topology,
    measurements: &MeasurementConfig,
    reference: BusId,
) -> Vec<MeasurementId> {
    let h_full = sta_grid::topology::h_matrix(grid, topo);
    let cols: Vec<usize> =
        (0..grid.num_buses()).filter(|&j| j != reference.0).collect();
    let taken: Vec<usize> = measurements.taken_ids().map(|m| m.0).collect();
    let full = h_full.select_rows(&taken).select_cols(&cols);
    let base_rank = rank(&full);
    if base_rank < cols.len() {
        return Vec::new(); // already unobservable; criticality undefined
    }
    let mut critical = Vec::new();
    for (k, &m) in taken.iter().enumerate() {
        let keep: Vec<usize> = (0..taken.len()).filter(|&i| i != k).collect();
        let reduced = full.select_rows(&keep);
        if rank(&reduced) < base_rank {
            critical.push(MeasurementId(m));
        }
    }
    critical
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_grid::{ieee14, synthetic};

    #[test]
    fn rank_of_identity_and_rankdeficient() {
        assert_eq!(rank(&Matrix::identity(4)), 4);
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(rank(&m), 1);
        assert_eq!(rank(&Matrix::zeros(3, 3)), 0);
        let wide = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]]);
        assert_eq!(rank(&wide), 2);
    }

    #[test]
    fn ieee14_is_observable() {
        let sys = ieee14::system();
        assert!(is_observable(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus
        ));
    }

    #[test]
    fn dropping_all_bus_meters_of_leaf_breaks_observability() {
        let sys = ieee14::system();
        let mut cfg = sys.measurements.clone();
        // Bus 8 (index 7) connects only through line 14 (7→8). Remove both
        // flow meters of line 14 and bus 8's injection; bus 8 becomes
        // unobservable. Measurements (1-indexed): 14, 34, 48 (2·20 + 8).
        cfg.set_taken(MeasurementId(13), false); // already untaken per Table III
        cfg.set_taken(MeasurementId(33), false);
        cfg.set_taken(MeasurementId(47), false);
        // Its neighbor's injection also sees line 14; remove bus 7's meter.
        cfg.set_taken(MeasurementId(46), false);
        assert!(!is_observable(
            &sys.grid,
            &sys.topology,
            &cfg,
            sys.reference_bus
        ));
    }

    #[test]
    fn basic_set_has_state_count_rows_and_full_rank() {
        let sys = ieee14::system();
        let basic = basic_measurement_set(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
        )
        .expect("observable");
        assert_eq!(basic.len(), 13);
        // The basic rows alone are observable.
        let mut cfg = sys.measurements.clone();
        for m in 0..cfg.len() {
            cfg.set_taken(MeasurementId(m), false);
        }
        for &id in &basic {
            cfg.set_taken(id, true);
        }
        assert!(is_observable(
            &sys.grid,
            &sys.topology,
            &cfg,
            sys.reference_bus
        ));
    }

    #[test]
    fn fully_metered_system_has_no_critical_measurements() {
        // 2l + b meters over b−1 states: redundancy everywhere.
        let sys = synthetic::ieee_case(30);
        let critical = critical_measurements(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
        );
        assert!(critical.is_empty(), "{critical:?}");
    }

    #[test]
    fn basic_set_is_entirely_critical() {
        // Restrict the taken set to a basic measurement set: every member
        // becomes critical (minimality).
        let sys = ieee14::system();
        let basic = basic_measurement_set(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
        )
        .unwrap();
        let mut cfg = sys.measurements.clone();
        for m in 0..cfg.len() {
            cfg.set_taken(MeasurementId(m), false);
        }
        for &id in &basic {
            cfg.set_taken(id, true);
        }
        let critical =
            critical_measurements(&sys.grid, &sys.topology, &cfg, sys.reference_bus);
        assert_eq!(critical.len(), basic.len());
        let mut sorted_basic = basic.clone();
        sorted_basic.sort();
        let mut sorted_critical = critical;
        sorted_critical.sort();
        assert_eq!(sorted_critical, sorted_basic);
    }

    #[test]
    fn unobservable_system_reports_no_criticals() {
        let sys = ieee14::system();
        let mut cfg = sys.measurements.clone();
        for m in 0..cfg.len() {
            cfg.set_taken(MeasurementId(m), m < 3);
        }
        assert!(critical_measurements(
            &sys.grid,
            &sys.topology,
            &cfg,
            sys.reference_bus
        )
        .is_empty());
    }

    #[test]
    fn sparse_check_matches_dense_rank_oracle() {
        let sys = ieee14::system();
        // Sweep configurations that keep the first k measurements: spans
        // unobservable (tiny k) through observable (large k).
        for k in [3usize, 10, 20, 27, 44] {
            let mut cfg = sys.measurements.clone();
            for m in 0..cfg.len() {
                cfg.set_taken(MeasurementId(m), m < k);
            }
            let h = reduced_jacobian(&sys.grid, &sys.topology, &cfg, sys.reference_bus);
            let oracle = rank(&h) == 13;
            assert_eq!(
                is_observable(&sys.grid, &sys.topology, &cfg, sys.reference_bus),
                oracle,
                "k = {k}"
            );
            // The sparse reduced Jacobian is the same matrix.
            let hs =
                reduced_jacobian_sparse(&sys.grid, &sys.topology, &cfg, sys.reference_bus);
            for i in 0..h.num_rows() {
                for j in 0..h.num_cols() {
                    assert_eq!(hs.get(i, j), h[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn synthetic_cases_observable_when_fully_metered() {
        for &b in &[30usize, 57] {
            let sys = synthetic::ieee_case(b);
            assert!(
                is_observable(&sys.grid, &sys.topology, &sys.measurements, sys.reference_bus),
                "case {b}"
            );
        }
    }
}
