//! DC power flow, WLS state estimation, bad-data detection, and
//! observability analysis — the EMS stack the paper's attacks target.
//!
//! * [`dcflow`] — `B·θ = P` operating points (paper §II-A);
//! * [`WlsEstimator`] — `x̂ = (HᵀWH)⁻¹HᵀWz` with reference-bus
//!   elimination (paper Eq. 1);
//! * [`BadDataDetector`] — chi-square residual test and
//!   largest-normalized-residual identification (paper §II-B);
//! * [`observability`] — rank analysis and basic-measurement-set
//!   extraction (the Bobba et al. baseline's core object);
//! * [`chi2`] — the distribution routines behind the detection threshold.
//!
//! # Examples
//!
//! End-to-end: flow → measure → estimate → detect.
//!
//! ```
//! use sta_estimator::{dcflow, BadDataDetector, WlsEstimator};
//! use sta_grid::ieee14;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sys = ieee14::system();
//! let estimator = WlsEstimator::for_system(&sys)?;
//! let op = dcflow::solve(
//!     &sys.grid,
//!     &sys.topology,
//!     &dcflow::synthetic_injections(14, 1),
//!     sys.reference_bus,
//! )?;
//! let z = estimator.measure(&op);
//! let estimate = estimator.estimate(&z)?;
//! let verdict = BadDataDetector::new(0.05).detect(&estimator, &estimate);
//! assert!(!verdict.is_bad());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod bdd;
pub mod chi2;
pub mod dcflow;
pub mod noise;
pub mod observability;
pub mod topology_detect;
pub mod wls;

pub use bdd::{BadDataDetector, IdentificationError, Verdict};
pub use topology_detect::{TopologyDetector, TopologySuspicion};
pub use dcflow::{OperatingPoint, PowerFlowError};
pub use wls::{StateEstimate, UnobservableError, WlsEstimator};

#[cfg(test)]
mod randomized {
    use super::*;
    use sta_grid::synthetic;
    use sta_linalg::rng::Pcg32;
    use sta_linalg::Vector;

    /// On any synthetic grid, a noiseless measurement of a power-flow
    /// solution estimates back to (numerically) zero residual.
    #[test]
    fn noiseless_roundtrip() {
        for seed in 0..24u64 {
            let grid = synthetic::generate(12, 17, seed).unwrap();
            let sys = sta_grid::TestSystem::fully_metered("p", grid);
            let est = WlsEstimator::for_system(&sys).unwrap();
            let op = dcflow::solve(
                &sys.grid,
                &sys.topology,
                &dcflow::synthetic_injections(12, seed),
                sys.reference_bus,
            )
            .unwrap();
            let z = est.measure(&op);
            let result = est.estimate(&z).unwrap();
            assert!(result.residual_norm < 1e-7);
        }
    }

    /// Injecting a = H·c never changes the residual norm (the UFDI
    /// invariant), for arbitrary state perturbations c.
    #[test]
    fn ufdi_invariant() {
        let mut rng = Pcg32::new(0xe511);
        for _ in 0..24 {
            let seed = rng.next_u64() % 30;
            let bump = rng.uniform_f64(-2.0, 2.0);
            let idx = rng.below(11);
            let grid = synthetic::generate(12, 17, seed).unwrap();
            let sys = sta_grid::TestSystem::fully_metered("p", grid);
            let est = WlsEstimator::for_system(&sys).unwrap();
            let op = dcflow::solve(
                &sys.grid,
                &sys.topology,
                &dcflow::synthetic_injections(12, seed),
                sys.reference_bus,
            )
            .unwrap();
            let z = est.measure(&op);
            let base = est.estimate(&z).unwrap();
            let mut c = Vector::zeros(est.num_states());
            c[idx % est.num_states()] = bump;
            let a = est.jacobian().mul_vec(&c);
            let result = est.estimate(&(&z + &a)).unwrap();
            assert!((result.residual_norm - base.residual_norm).abs() < 1e-7);
        }
    }

    /// A single gross error on a redundant (non-critical) measurement
    /// raises the weighted SSE.
    #[test]
    fn gross_error_raises_sse() {
        let mut rng = Pcg32::new(0xe512);
        for _ in 0..20 {
            let seed = rng.next_u64() % 20;
            let row = rng.below(40);
            let grid = synthetic::generate(12, 17, seed).unwrap();
            let sys = sta_grid::TestSystem::fully_metered("p", grid);
            let est = WlsEstimator::for_system(&sys).unwrap();
            let op = dcflow::solve(
                &sys.grid,
                &sys.topology,
                &dcflow::synthetic_injections(12, seed),
                sys.reference_bus,
            )
            .unwrap();
            let mut z = est.measure(&op);
            let r = row % z.len();
            z[r] += 10.0;
            let result = est.estimate(&z).unwrap();
            // With full metering every measurement is redundant, so the
            // error must show up.
            assert!(result.weighted_sse > 1.0);
        }
    }
}
