//! Weighted least squares state estimation (paper Eq. 1).
//!
//! Given the taken-measurement Jacobian `H`, diagonal weights `W`
//! (reciprocal error variances) and a measurement vector `z`, the WLS
//! estimate is `x̂ = (HᵀWH)⁻¹HᵀWz`, computed after eliminating the
//! reference bus column (its angle is the datum). The normal-equation
//! matrix is SPD exactly when the measurement set is observable, so an
//! unobservable configuration surfaces as an error rather than garbage.

use crate::chi2;
use sta_grid::{BusId, Grid, MeasurementConfig, MeasurementId, Topology};
use sta_linalg::{Cholesky, CsrMatrix, Matrix, SparseCholesky, Vector};
use std::fmt;

/// Error from [`WlsEstimator::estimate`]: the taken measurements do not
/// observe every state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnobservableError;

impl fmt::Display for UnobservableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("measurement set does not make the system observable")
    }
}

impl std::error::Error for UnobservableError {}

/// The result of one WLS estimation.
#[derive(Debug, Clone)]
pub struct StateEstimate {
    /// Estimated phase angle of every bus (reference pinned to zero).
    pub theta: Vector,
    /// Estimated values of the *taken* measurements, `H·x̂`, in taken
    /// order.
    pub estimated: Vector,
    /// Raw residual vector `z − H·x̂`, in taken order.
    pub residual: Vector,
    /// The `l2` residual norm `‖z − H·x̂‖` (the paper's detection
    /// statistic).
    pub residual_norm: f64,
    /// Weighted sum of squared residuals `Σ wᵢ·rᵢ²` (the χ² statistic).
    pub weighted_sse: f64,
    /// Degrees of freedom, `m − n` (taken measurements minus estimated
    /// states).
    pub degrees_of_freedom: usize,
}

/// A WLS estimator bound to a grid, topology and measurement
/// configuration.
///
/// # Examples
///
/// ```
/// use sta_estimator::{dcflow, WlsEstimator};
/// use sta_grid::ieee14;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = ieee14::system();
/// let est = WlsEstimator::for_system(&sys)?;
/// let injections = dcflow::synthetic_injections(14, 1);
/// let op = dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)?;
/// let z = est.measure(&op);
/// let result = est.estimate(&z)?;
/// assert!(result.residual_norm < 1e-9); // noiseless: exact fit
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WlsEstimator {
    /// Jacobian restricted to taken rows and non-reference columns, in
    /// compressed sparse rows (the DC Jacobian has ≤ `deg+1` nonzeros
    /// per row, so this is O(lines) storage at any grid size).
    h_sparse: CsrMatrix,
    /// Dense copy of the same Jacobian, materialized lazily on first use
    /// (the [`Self::jacobian`] accessor or the dense-oracle estimation
    /// path) so the sparse pipeline never pays the O(m·n) expansion.
    h_taken: std::sync::OnceLock<Matrix>,
    /// Row map: taken-measurement row → potential measurement index.
    taken_rows: Vec<usize>,
    /// Column map: reduced column → bus index.
    state_cols: Vec<usize>,
    /// Diagonal weights per taken row.
    weights: Vec<f64>,
    /// Cached Cholesky factor of the gain matrix `HᵀWH`.
    gain: Gain,
    num_buses: usize,
    reference: BusId,
}

/// The cached gain-matrix factorization: sparse by default, dense when
/// constructed through the oracle path ([`WlsEstimator::new_dense`]).
#[derive(Debug, Clone)]
enum Gain {
    Sparse(SparseCholesky),
    Dense(Cholesky),
}

impl WlsEstimator {
    /// Builds an estimator for a packaged test system with unit weights.
    ///
    /// # Errors
    /// Returns [`UnobservableError`] if the taken measurements cannot
    /// observe the state.
    pub fn for_system(sys: &sta_grid::TestSystem) -> Result<Self, UnobservableError> {
        Self::new(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
            None,
        )
    }

    /// Builds an estimator.
    ///
    /// `weights` are reciprocal error variances per *taken* measurement,
    /// in taken order; `None` means unit weights.
    ///
    /// # Errors
    /// Returns [`UnobservableError`] if `HᵀWH` is not positive definite.
    ///
    /// # Panics
    /// Panics if `weights` is provided with the wrong length.
    pub fn new(
        grid: &Grid,
        topo: &Topology,
        measurements: &MeasurementConfig,
        reference: BusId,
        weights: Option<Vec<f64>>,
    ) -> Result<Self, UnobservableError> {
        let h_full = sta_grid::topology::h_matrix_sparse(grid, topo);
        let taken_rows: Vec<usize> = measurements.taken_ids().map(|m| m.0).collect();
        let state_cols: Vec<usize> =
            (0..grid.num_buses()).filter(|&j| j != reference.0).collect();
        let h_sparse = h_full.select_rows(&taken_rows).select_cols(&state_cols);
        let weights = match weights {
            Some(w) => {
                assert_eq!(w.len(), taken_rows.len(), "one weight per taken row");
                w
            }
            None => vec![1.0; taken_rows.len()],
        };
        // Gain `HᵀWH` formed sparsely: it inherits the bus-adjacency
        // pattern, so both the product and its AMD-ordered LDLᵀ factor
        // stay O(lines)-sized.
        let htw = h_sparse.transpose().scale_cols(&weights);
        let gain = SparseCholesky::factor(&htw.mul_mat(&h_sparse))
            .map_err(|_| UnobservableError)?;
        Ok(WlsEstimator {
            h_sparse,
            h_taken: std::sync::OnceLock::new(),
            taken_rows,
            state_cols,
            weights,
            gain: Gain::Sparse(gain),
            num_buses: grid.num_buses(),
            reference,
        })
    }

    /// Builds an estimator on the dense pipeline: dense Jacobian, dense
    /// gain product, dense Cholesky. Kept as the correctness oracle for
    /// the sparse path (equivalence is pinned by property tests) and as
    /// the slow side of the `scale` bench suite.
    ///
    /// # Errors
    /// Returns [`UnobservableError`] if `HᵀWH` is not positive definite.
    ///
    /// # Panics
    /// Panics if `weights` is provided with the wrong length.
    pub fn new_dense(
        grid: &Grid,
        topo: &Topology,
        measurements: &MeasurementConfig,
        reference: BusId,
        weights: Option<Vec<f64>>,
    ) -> Result<Self, UnobservableError> {
        let h_full = sta_grid::topology::h_matrix(grid, topo);
        let taken_rows: Vec<usize> = measurements.taken_ids().map(|m| m.0).collect();
        let state_cols: Vec<usize> =
            (0..grid.num_buses()).filter(|&j| j != reference.0).collect();
        let h_taken = h_full.select_rows(&taken_rows).select_cols(&state_cols);
        let weights = match weights {
            Some(w) => {
                assert_eq!(w.len(), taken_rows.len(), "one weight per taken row");
                w
            }
            None => vec![1.0; taken_rows.len()],
        };
        let htw = h_taken.transpose().scale_cols(&weights);
        let gain = Cholesky::factor(&htw.mul_mat(&h_taken))
            .map_err(|_| UnobservableError)?;
        let h_sparse = CsrMatrix::from_dense(&h_taken);
        let dense_cache = std::sync::OnceLock::new();
        let _ = dense_cache.set(h_taken);
        Ok(WlsEstimator {
            h_sparse,
            h_taken: dense_cache,
            taken_rows,
            state_cols,
            weights,
            gain: Gain::Dense(gain),
            num_buses: grid.num_buses(),
            reference,
        })
    }

    /// Number of taken measurements (`m`).
    pub fn num_measurements(&self) -> usize {
        self.taken_rows.len()
    }

    /// Number of estimated states (`n = b − 1`).
    pub fn num_states(&self) -> usize {
        self.state_cols.len()
    }

    /// The taken-row Jacobian (rows in taken order, reference column
    /// removed), expanded to dense storage on first call.
    pub fn jacobian(&self) -> &Matrix {
        self.h_taken.get_or_init(|| self.h_sparse.to_dense())
    }

    /// The same Jacobian in compressed sparse rows.
    pub fn jacobian_sparse(&self) -> &CsrMatrix {
        &self.h_sparse
    }

    /// Potential-measurement indices of the taken rows, in row order.
    pub fn taken_rows(&self) -> &[usize] {
        &self.taken_rows
    }

    /// Builds the taken-measurement vector implied by an operating point
    /// (a perfect, noiseless SCADA snapshot).
    pub fn measure(&self, op: &crate::dcflow::OperatingPoint) -> Vector {
        let l = (op.line_flows.len()).max(0);
        self.taken_rows
            .iter()
            .map(|&row| {
                if row < l {
                    op.line_flows[row]
                } else if row < 2 * l {
                    -op.line_flows[row - l]
                } else {
                    op.bus_consumption[row - 2 * l]
                }
            })
            .collect()
    }

    /// Runs the WLS estimate on a taken-measurement vector `z`.
    ///
    /// # Errors
    /// Returns [`UnobservableError`] only on numerical failure of the
    /// cached factorization (should not occur once constructed).
    ///
    /// # Panics
    /// Panics if `z.len() != self.num_measurements()`.
    pub fn estimate(&self, z: &Vector) -> Result<StateEstimate, UnobservableError> {
        assert_eq!(z.len(), self.num_measurements(), "measurement dimension");
        let (x, estimated) = match &self.gain {
            Gain::Sparse(gain) => {
                // rhs = Hᵀ·(w ∘ z), in one sparse pass.
                let wz: Vector = z
                    .iter()
                    .zip(&self.weights)
                    .map(|(zi, w)| zi * w)
                    .collect();
                let rhs = self.h_sparse.mul_vec_transposed(&wz);
                let x = gain.solve(&rhs).map_err(|_| UnobservableError)?;
                let estimated = self.h_sparse.mul_vec(&x);
                (x, estimated)
            }
            Gain::Dense(gain) => {
                let h = self.jacobian();
                let htw = h.transpose().scale_cols(&self.weights);
                let rhs = htw.mul_vec(z);
                let x = gain.solve(&rhs).map_err(|_| UnobservableError)?;
                let estimated = h.mul_vec(&x);
                (x, estimated)
            }
        };
        let residual = z - &estimated;
        let weighted_sse = residual
            .iter()
            .zip(&self.weights)
            .map(|(r, w)| r * r * w)
            .sum();
        let mut theta = Vector::zeros(self.num_buses);
        for (k, &j) in self.state_cols.iter().enumerate() {
            theta[j] = x[k];
        }
        let dof = self.num_measurements().saturating_sub(self.num_states());
        Ok(StateEstimate {
            theta,
            estimated,
            residual_norm: residual.norm2(),
            residual,
            weighted_sse,
            degrees_of_freedom: dof,
        })
    }

    /// The BDD threshold `τ` on the *weighted SSE* at significance `alpha`
    /// (probability of false alarm), i.e. the `χ²_{m−n}` quantile at
    /// `1 − alpha`.
    ///
    /// # Panics
    /// Panics if there is no redundancy (`m ≤ n`).
    pub fn detection_threshold(&self, alpha: f64) -> f64 {
        let dof = self.num_measurements() - self.num_states();
        assert!(dof > 0, "no measurement redundancy");
        chi2::chi2_quantile(dof, 1.0 - alpha)
    }

    /// The reference bus.
    pub fn reference_bus(&self) -> BusId {
        self.reference
    }

    /// Maps a potential measurement to its taken-row index, if taken.
    pub fn row_of(&self, id: MeasurementId) -> Option<usize> {
        self.taken_rows.iter().position(|&r| r == id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcflow;
    use sta_grid::{ieee14, synthetic, MeasurementId};

    fn noiseless_setup() -> (sta_grid::TestSystem, WlsEstimator, Vector) {
        let sys = ieee14::system();
        let est = WlsEstimator::for_system(&sys).unwrap();
        let injections = dcflow::synthetic_injections(14, 3);
        let op =
            dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
                .unwrap();
        let z = est.measure(&op);
        (sys, est, z)
    }

    #[test]
    fn noiseless_estimate_is_exact() {
        let (sys, est, z) = noiseless_setup();
        let result = est.estimate(&z).unwrap();
        assert!(result.residual_norm < 1e-9);
        assert!(result.weighted_sse < 1e-16);
        assert_eq!(result.degrees_of_freedom, 44 - 13);
        // theta matches a fresh power flow.
        let injections = dcflow::synthetic_injections(14, 3);
        let op =
            dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
                .unwrap();
        for j in 0..14 {
            assert!((result.theta[j] - op.theta[j]).abs() < 1e-8, "bus {j}");
        }
    }

    #[test]
    fn noisy_estimate_smooths() {
        let (_sys, est, z) = noiseless_setup();
        let mut noisy = z.clone();
        // Small random-ish perturbations.
        for i in 0..noisy.len() {
            noisy[i] += 0.001 * ((i as f64 * 0.7).sin());
        }
        let result = est.estimate(&noisy).unwrap();
        assert!(result.residual_norm > 0.0);
        assert!(result.residual_norm < 0.01);
    }

    #[test]
    fn stealthy_attack_leaves_residual_unchanged() {
        // The defining property of UFDI: a = H·c adds nothing to the
        // residual.
        let (_sys, est, z) = noiseless_setup();
        let base = est.estimate(&z).unwrap();
        // c: bump state 5 (column index in reduced space) by 0.1.
        let mut c = Vector::zeros(est.num_states());
        c[5] = 0.1;
        let a = est.jacobian().mul_vec(&c);
        let attacked = &z + &a;
        let result = est.estimate(&attacked).unwrap();
        assert!((result.residual_norm - base.residual_norm).abs() < 1e-9);
        // And the state moved.
        let moved = (0..14).any(|j| (result.theta[j] - base.theta[j]).abs() > 0.05);
        assert!(moved);
    }

    #[test]
    fn random_injection_moves_residual() {
        let (_sys, est, z) = noiseless_setup();
        let mut attacked = z.clone();
        attacked[7] += 1.0; // crude bad data
        let result = est.estimate(&attacked).unwrap();
        assert!(result.residual_norm > 0.1);
    }

    #[test]
    fn unobservable_with_too_few_measurements() {
        let sys = ieee14::system();
        let mut cfg = sys.measurements.clone();
        // Take only the first three measurements.
        for m in 0..cfg.len() {
            cfg.set_taken(MeasurementId(m), m < 3);
        }
        assert_eq!(
            WlsEstimator::new(&sys.grid, &sys.topology, &cfg, sys.reference_bus, None)
                .unwrap_err(),
            UnobservableError
        );
    }

    #[test]
    fn weights_affect_fit() {
        let (_sys, est, z) = noiseless_setup();
        let mut noisy = z.clone();
        noisy[0] += 0.5;
        let base = est.estimate(&noisy).unwrap();
        // Rebuild with a huge weight on row 0: the fit chases z[0] harder.
        let sys = ieee14::system();
        let mut w = vec![1.0; est.num_measurements()];
        w[0] = 1e6;
        let heavy = WlsEstimator::new(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
            Some(w),
        )
        .unwrap();
        let chased = heavy.estimate(&noisy).unwrap();
        assert!(chased.residual[0].abs() < base.residual[0].abs());
    }

    #[test]
    fn works_on_synthetic_300_bus() {
        let sys = synthetic::ieee_case(300);
        let est = WlsEstimator::for_system(&sys).unwrap();
        let injections = dcflow::synthetic_injections(300, 5);
        let op =
            dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
                .unwrap();
        let z = est.measure(&op);
        let result = est.estimate(&z).unwrap();
        assert!(result.residual_norm < 1e-6);
    }

    #[test]
    fn sparse_and_dense_pipelines_agree() {
        let sys = ieee14::system();
        let mut w = vec![1.0; 44];
        for (i, wi) in w.iter_mut().enumerate() {
            *wi = 1.0 + 0.1 * (i % 7) as f64;
        }
        let sparse = WlsEstimator::new(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
            Some(w.clone()),
        )
        .unwrap();
        let dense = WlsEstimator::new_dense(
            &sys.grid,
            &sys.topology,
            &sys.measurements,
            sys.reference_bus,
            Some(w),
        )
        .unwrap();
        let injections = dcflow::synthetic_injections(14, 3);
        let op =
            dcflow::solve(&sys.grid, &sys.topology, &injections, sys.reference_bus)
                .unwrap();
        let mut z = sparse.measure(&op);
        for i in 0..z.len() {
            z[i] += 0.002 * ((i as f64 * 1.3).cos());
        }
        let rs = sparse.estimate(&z).unwrap();
        let rd = dense.estimate(&z).unwrap();
        for j in 0..14 {
            assert!((rs.theta[j] - rd.theta[j]).abs() < 1e-9, "bus {j}");
        }
        assert!((rs.weighted_sse - rd.weighted_sse).abs() < 1e-9);
        // The accessors describe the same Jacobian.
        for i in 0..sparse.num_measurements() {
            for k in 0..sparse.num_states() {
                assert_eq!(
                    sparse.jacobian_sparse().get(i, k),
                    sparse.jacobian()[(i, k)]
                );
            }
        }
    }

    #[test]
    fn dense_oracle_rejects_unobservable_too() {
        let sys = ieee14::system();
        let mut cfg = sys.measurements.clone();
        for m in 0..cfg.len() {
            cfg.set_taken(MeasurementId(m), m < 3);
        }
        assert_eq!(
            WlsEstimator::new_dense(&sys.grid, &sys.topology, &cfg, sys.reference_bus, None)
                .unwrap_err(),
            UnobservableError
        );
    }

    #[test]
    fn detection_threshold_matches_chi2() {
        let (_sys, est, _z) = noiseless_setup();
        let tau = est.detection_threshold(0.05);
        assert!((chi2::chi2_cdf(31, tau) - 0.95).abs() < 1e-9);
    }
}
