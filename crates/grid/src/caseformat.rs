//! A plain-text case format for test systems.
//!
//! The paper's implementation reads "the system configurations and the
//! constraints … in a text file (input file)" (§III-H). This module
//! provides that interface: a line-oriented, comment-friendly format
//! carrying everything a [`TestSystem`] holds, with a parser and writer
//! that round-trip exactly.
//!
//! # Format
//!
//! ```text
//! # comments start with '#'; blank lines are ignored
//! system ieee14
//! buses 14
//! reference 1                    # 1-indexed bus
//! line 1 2 16.90                 # from to admittance [open] [noncore] [status-secured]
//! line 2 5 5.75 noncore
//! not-taken 5 10 14              # 1-indexed measurement ids
//! secured 1 2 6
//! inaccessible 7 8
//! ```
//!
//! Defaults: every line closed, core, status-unsecured; every potential
//! measurement taken, unsecured, accessible; reference bus 1.

use crate::measurement::{MeasurementConfig, MeasurementId};
use crate::model::{BusId, Grid, Line};
use crate::system::TestSystem;
use crate::topology::Topology;
use std::fmt;

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCaseError {
    /// 1-indexed line number of the offending input line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "case file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCaseError {}

fn err(line: usize, message: impl Into<String>) -> ParseCaseError {
    ParseCaseError { line, message: message.into() }
}

/// Parses a case file into a [`TestSystem`].
///
/// # Errors
/// Returns [`ParseCaseError`] on malformed input, out-of-range indices,
/// or a missing `buses` declaration.
pub fn parse(text: &str) -> Result<TestSystem, ParseCaseError> {
    let mut name = String::from("case");
    let mut num_buses: Option<usize> = None;
    let mut reference = 1usize;
    struct RawLine {
        from: usize,
        to: usize,
        admittance: f64,
        open: bool,
        noncore: bool,
        status_secured: bool,
    }
    let mut raw_lines: Vec<RawLine> = Vec::new();
    let mut not_taken: Vec<usize> = Vec::new();
    let mut secured: Vec<usize> = Vec::new();
    let mut inaccessible: Vec<usize> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap();
        let rest: Vec<&str> = parts.collect();
        match keyword {
            "system" => {
                name = rest.first().ok_or_else(|| err(ln, "missing name"))?.to_string();
            }
            "buses" => {
                let b: usize = rest
                    .first()
                    .ok_or_else(|| err(ln, "missing bus count"))?
                    .parse()
                    .map_err(|_| err(ln, "bad bus count"))?;
                num_buses = Some(b);
            }
            "reference" => {
                reference = rest
                    .first()
                    .ok_or_else(|| err(ln, "missing reference bus"))?
                    .parse()
                    .map_err(|_| err(ln, "bad reference bus"))?;
            }
            "line" => {
                if rest.len() < 3 {
                    return Err(err(ln, "line needs: from to admittance"));
                }
                let from: usize =
                    rest[0].parse().map_err(|_| err(ln, "bad from-bus"))?;
                let to: usize = rest[1].parse().map_err(|_| err(ln, "bad to-bus"))?;
                let admittance: f64 =
                    rest[2].parse().map_err(|_| err(ln, "bad admittance"))?;
                let mut open = false;
                let mut noncore = false;
                let mut status_secured = false;
                for &flag in &rest[3..] {
                    match flag {
                        "open" => open = true,
                        "noncore" => noncore = true,
                        "status-secured" => status_secured = true,
                        other => {
                            return Err(err(ln, format!("unknown line flag {other:?}")));
                        }
                    }
                }
                if from == 0 || to == 0 {
                    return Err(err(ln, "bus ids are 1-indexed"));
                }
                raw_lines.push(RawLine {
                    from,
                    to,
                    admittance,
                    open,
                    noncore,
                    status_secured,
                });
            }
            "not-taken" | "secured" | "inaccessible" => {
                let target = match keyword {
                    "not-taken" => &mut not_taken,
                    "secured" => &mut secured,
                    _ => &mut inaccessible,
                };
                for tok in rest {
                    let id: usize =
                        tok.parse().map_err(|_| err(ln, "bad measurement id"))?;
                    if id == 0 {
                        return Err(err(ln, "measurement ids are 1-indexed"));
                    }
                    target.push(id);
                }
            }
            other => return Err(err(ln, format!("unknown keyword {other:?}"))),
        }
    }

    let b = num_buses.ok_or_else(|| err(0, "missing `buses` declaration"))?;
    for (i, rl) in raw_lines.iter().enumerate() {
        if rl.from > b || rl.to > b {
            return Err(err(0, format!("line {} references a bus beyond {b}", i + 1)));
        }
        if !(rl.admittance > 0.0 && rl.admittance.is_finite()) {
            return Err(err(0, format!("line {} has non-positive admittance", i + 1)));
        }
        if rl.from == rl.to {
            return Err(err(0, format!("line {} is a self-loop", i + 1)));
        }
    }
    let lines: Vec<Line> = raw_lines
        .iter()
        .map(|rl| Line::new(BusId(rl.from - 1), BusId(rl.to - 1), rl.admittance))
        .collect();
    let grid = Grid::new(b, lines);
    let m = grid.num_potential_measurements();
    for &id in not_taken.iter().chain(&secured).chain(&inaccessible) {
        if id > m {
            return Err(err(0, format!("measurement {id} exceeds {m}")));
        }
    }
    if reference == 0 || reference > b {
        return Err(err(0, "reference bus out of range"));
    }

    let mut sys = TestSystem::fully_metered(name, grid);
    sys.reference_bus = BusId(reference - 1);
    sys.topology = Topology::from_statuses(
        raw_lines.iter().map(|rl| !rl.open).collect(),
    );
    sys.fixed_lines = raw_lines.iter().map(|rl| !rl.noncore).collect();
    sys.secured_line_status = raw_lines.iter().map(|rl| rl.status_secured).collect();
    let mut cfg = MeasurementConfig::full(&sys.grid);
    for &id in &not_taken {
        cfg.set_taken(MeasurementId(id - 1), false);
    }
    for &id in &secured {
        cfg.set_secured(MeasurementId(id - 1), true);
    }
    for &id in &inaccessible {
        cfg.set_accessible(MeasurementId(id - 1), false);
    }
    sys.measurements = cfg;
    Ok(sys)
}

/// Serializes a [`TestSystem`] to the case format.
pub fn write(sys: &TestSystem) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "system {}", sys.name);
    let _ = writeln!(out, "buses {}", sys.grid.num_buses());
    let _ = writeln!(out, "reference {}", sys.reference_bus.0 + 1);
    for (i, line) in sys.grid.lines().iter().enumerate() {
        let _ = write!(
            out,
            "line {} {} {}",
            line.from.0 + 1,
            line.to.0 + 1,
            line.admittance
        );
        if !sys.topology.is_in_service(crate::model::LineId(i)) {
            let _ = write!(out, " open");
        }
        if !sys.fixed_lines[i] {
            let _ = write!(out, " noncore");
        }
        if sys.secured_line_status[i] {
            let _ = write!(out, " status-secured");
        }
        let _ = writeln!(out);
    }
    let collect = |pred: &dyn Fn(MeasurementId) -> bool| -> Vec<String> {
        (0..sys.measurements.len())
            .map(MeasurementId)
            .filter(|&id| pred(id))
            .map(|id| (id.0 + 1).to_string())
            .collect()
    };
    let not_taken = collect(&|id| !sys.measurements.is_taken(id));
    if !not_taken.is_empty() {
        let _ = writeln!(out, "not-taken {}", not_taken.join(" "));
    }
    let secured = collect(&|id| sys.measurements.is_secured(id));
    if !secured.is_empty() {
        let _ = writeln!(out, "secured {}", secured.join(" "));
    }
    let inaccessible = collect(&|id| !sys.measurements.is_accessible(id));
    if !inaccessible.is_empty() {
        let _ = writeln!(out, "inaccessible {}", inaccessible.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee14;
    use crate::model::LineId;

    #[test]
    fn parses_minimal_case() {
        let text = "
            # two buses, one line
            system tiny
            buses 2
            line 1 2 4.0
        ";
        let sys = parse(text).unwrap();
        assert_eq!(sys.name, "tiny");
        assert_eq!(sys.grid.num_buses(), 2);
        assert_eq!(sys.grid.num_lines(), 1);
        assert_eq!(sys.reference_bus, BusId(0));
        assert!(sys.measurements.is_taken(MeasurementId(0)));
    }

    #[test]
    fn parses_flags_and_sections() {
        let text = "
            system flags
            buses 3
            reference 2
            line 1 2 1.5 noncore
            line 2 3 2.5 open status-secured
            not-taken 1 3
            secured 2
            inaccessible 7
        ";
        let sys = parse(text).unwrap();
        assert_eq!(sys.reference_bus, BusId(1));
        assert!(!sys.fixed_lines[0]);
        assert!(!sys.topology.is_in_service(LineId(1)));
        assert!(sys.secured_line_status[1]);
        assert!(!sys.measurements.is_taken(MeasurementId(0)));
        assert!(!sys.measurements.is_taken(MeasurementId(2)));
        assert!(sys.measurements.is_secured(MeasurementId(1)));
        assert!(!sys.measurements.is_accessible(MeasurementId(6)));
    }

    #[test]
    fn roundtrips_ieee14() {
        let sys = ieee14::system();
        let text = write(&sys);
        let back = parse(&text).unwrap();
        assert_eq!(back.name, sys.name);
        assert_eq!(back.grid, sys.grid);
        assert_eq!(back.topology, sys.topology);
        assert_eq!(back.fixed_lines, sys.fixed_lines);
        assert_eq!(back.secured_line_status, sys.secured_line_status);
        assert_eq!(back.measurements, sys.measurements);
        assert_eq!(back.reference_bus, sys.reference_bus);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("buses nope").is_err());
        assert!(parse("line 1 2 3.0").is_err()); // missing buses
        assert!(parse("buses 2\nline 0 2 1.0").is_err()); // 1-indexed
        assert!(parse("buses 2\nline 1 5 1.0").is_err()); // out of range
        assert!(parse("buses 2\nline 1 2 -1.0").is_err()); // bad admittance
        assert!(parse("buses 2\nline 1 2 1.0 bogus").is_err()); // unknown flag
        assert!(parse("buses 2\nfoo 1").is_err()); // unknown keyword
        assert!(parse("buses 2\nline 1 2 1.0\nnot-taken 99").is_err());
        assert!(parse("buses 2\nreference 3\nline 1 2 1.0").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let e = parse("buses 2\nline 1 2 oops").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }
}
