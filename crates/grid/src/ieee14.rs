//! The IEEE 14-bus test system, exactly as configured in the paper.
//!
//! Line data (endpoints and admittances) reproduce the paper's Table II
//! verbatim; the measurement configuration reproduces Table III's published
//! part: all 54 potential measurements are taken except
//! 5, 10, 14, 19, 22, 27, 30, 35, 43 and 52, and measurements
//! 1, 2, 6, 15, 25, 32 and 41 are secured (all numbers 1-indexed as in the
//! paper). Lines 5 and 13 are outside the fixed core topology, so they are
//! the two candidates for exclusion attacks in the case studies.

use crate::measurement::{MeasurementConfig, MeasurementId};
use crate::model::{BusId, Grid, Line};
use crate::system::TestSystem;

/// `(from, to, admittance)` rows of the paper's Table II, 1-indexed buses.
pub const LINES: [(usize, usize, f64); 20] = [
    (1, 2, 16.90),
    (1, 5, 4.48),
    (2, 3, 5.05),
    (2, 4, 5.67),
    (2, 5, 5.75),
    (3, 4, 5.85),
    (4, 5, 23.75),
    (4, 7, 4.78),
    (4, 9, 1.80),
    (5, 6, 3.97),
    (6, 11, 5.03),
    (6, 12, 3.91),
    (6, 13, 7.68),
    (7, 8, 5.68),
    (7, 9, 9.09),
    (9, 10, 11.83),
    (9, 14, 3.70),
    (10, 11, 5.21),
    (12, 13, 5.00),
    (13, 14, 2.87),
];

/// Measurements *not* taken in Table III (1-indexed).
pub const NOT_TAKEN: [usize; 10] = [5, 10, 14, 19, 22, 27, 30, 35, 43, 52];

/// Measurements secured in Table III (1-indexed).
pub const SECURED: [usize; 7] = [1, 2, 6, 15, 25, 32, 41];

/// Lines outside the fixed core topology (1-indexed): they may be opened.
pub const NON_CORE_LINES: [usize; 2] = [5, 13];

/// Lines whose admittance the Section III-I example attacker does not
/// know (1-indexed).
pub const EXAMPLE_UNKNOWN_LINES: [usize; 3] = [3, 7, 17];

/// The bare 14-bus grid.
pub fn grid() -> Grid {
    let lines = LINES
        .iter()
        .map(|&(f, t, y)| Line::new(BusId(f - 1), BusId(t - 1), y))
        .collect();
    Grid::new(14, lines)
}

/// The full test system with the paper's measurement configuration.
///
/// # Examples
///
/// ```
/// use sta_grid::{ieee14, LineId};
///
/// let sys = ieee14::system();
/// // Lines 5 and 13 (paper numbering) are the only excludable lines.
/// let excludable: Vec<usize> = (0..20)
///     .filter(|&i| sys.excludable(LineId(i)))
///     .map(|i| i + 1)
///     .collect();
/// assert_eq!(excludable, vec![5, 13]);
/// ```
pub fn system() -> TestSystem {
    let grid = grid();
    let mut measurements = MeasurementConfig::full(&grid);
    for &m in &NOT_TAKEN {
        measurements.set_taken(MeasurementId(m - 1), false);
    }
    for &m in &SECURED {
        measurements.set_secured(MeasurementId(m - 1), true);
    }
    let mut sys = TestSystem::fully_metered("ieee14", grid);
    sys.measurements = measurements;
    for &l in &NON_CORE_LINES {
        sys.fixed_lines[l - 1] = false;
    }
    sys
}

/// The test system with Table III's *taken* set but **no** secured
/// measurements.
///
/// The paper's Table III marks measurements 1, 2, 6, 15, 25, 32 and 41 as
/// secured, yet the §III-I Attack Objective 2 reports a solution that
/// alters measurement 32 — the case-study runs evidently did not apply
/// the secured column ("if measurement 46 is considered as secured …" is
/// toggled ad hoc in the narrative). This variant reproduces that
/// case-study configuration; [`system`] keeps the full Table III flags.
pub fn system_unsecured() -> TestSystem {
    let mut sys = system();
    let mut measurements = MeasurementConfig::full(&sys.grid);
    for &m in &NOT_TAKEN {
        measurements.set_taken(MeasurementId(m - 1), false);
    }
    sys.measurements = measurements;
    sys
}

/// The line-admittance knowledge vector of the Section III-I example:
/// `bd_i` is false for lines 3, 7 and 17.
pub fn example_knowledge() -> Vec<bool> {
    let mut bd = vec![true; LINES.len()];
    for &l in &EXAMPLE_UNKNOWN_LINES {
        bd[l - 1] = false;
    }
    bd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::MeasurementId;
    use crate::model::LineId;

    #[test]
    fn matches_paper_counts() {
        let sys = system();
        assert_eq!(sys.grid.num_buses(), 14);
        assert_eq!(sys.grid.num_lines(), 20);
        assert_eq!(sys.grid.num_potential_measurements(), 54);
        assert_eq!(sys.measurements.num_taken(), 44);
    }

    #[test]
    fn admittances_match_table_ii() {
        let g = grid();
        assert_eq!(g.line(LineId(0)).admittance, 16.90);
        assert_eq!(g.line(LineId(6)).admittance, 23.75);
        assert_eq!(g.line(LineId(19)).admittance, 2.87);
        assert_eq!(g.line(LineId(16)).from, BusId(8)); // line 17: 9 → 14
        assert_eq!(g.line(LineId(16)).to, BusId(13));
    }

    #[test]
    fn topology_is_connected() {
        let sys = system();
        assert!(sys.topology.is_connected(&sys.grid));
        assert!((sys.grid.average_degree() - 20.0 * 2.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn secured_and_taken_flags_match_table_iii() {
        let sys = system();
        for &m in &SECURED {
            assert!(sys.measurements.is_secured(MeasurementId(m - 1)), "m{m}");
        }
        for &m in &NOT_TAKEN {
            assert!(!sys.measurements.is_taken(MeasurementId(m - 1)), "m{m}");
        }
        // Spot-check some taken, unsecured ones.
        assert!(sys.measurements.is_taken(MeasurementId(7)));
        assert!(!sys.measurements.is_secured(MeasurementId(7)));
    }

    #[test]
    fn example_knowledge_flags() {
        let bd = example_knowledge();
        assert!(!bd[2] && !bd[6] && !bd[16]);
        assert_eq!(bd.iter().filter(|&&k| k).count(), 17);
    }

    #[test]
    fn every_bus_hosts_a_line() {
        let g = grid();
        for b in 0..14 {
            assert!(g.lines_at(BusId(b)).count() >= 1, "bus {}", b + 1);
        }
    }
}
