//! Measurement configuration: which of the `2l + b` potential meters are
//! taken, secured, and accessible to an adversary.
//!
//! The paper's measurement numbering is preserved: measurements `1..=l`
//! (here `0..l`) are forward line flows, `l+1..=2l` backward flows, and
//! `2l+1..=2l+b` bus consumptions. [`MeasurementConfig`] carries the three
//! per-measurement flags the attack model reads — `mz` (taken), `sz`
//! (secured), `az` (accessible) — plus helpers to manipulate them in bulk.

use crate::model::{BusId, Grid, LineId};
use crate::topology::measurement_bus;
use std::fmt;

/// Index of a potential measurement, `0`-based over `2l + b` slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeasurementId(pub usize);

impl fmt::Display for MeasurementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "measurement {}", self.0 + 1)
    }
}

/// What a measurement meters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasurementKind {
    /// Forward power flow of a line (from-bus → to-bus).
    FlowForward(LineId),
    /// Backward power flow of a line.
    FlowBackward(LineId),
    /// Power consumption at a bus.
    Injection(BusId),
}

/// The `mz`/`sz`/`az` flags of every potential measurement.
///
/// # Examples
///
/// ```
/// use sta_grid::{ieee14, MeasurementId};
///
/// let case = ieee14::system();
/// let cfg = &case.measurements;
/// // Paper Table III: measurement 5 is not taken; measurement 1 is secured.
/// assert!(!cfg.is_taken(MeasurementId(4)));
/// assert!(cfg.is_secured(MeasurementId(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementConfig {
    taken: Vec<bool>,
    secured: Vec<bool>,
    accessible: Vec<bool>,
}

impl MeasurementConfig {
    /// All measurements taken, none secured, all accessible.
    pub fn full(grid: &Grid) -> Self {
        let m = grid.num_potential_measurements();
        MeasurementConfig {
            taken: vec![true; m],
            secured: vec![false; m],
            accessible: vec![true; m],
        }
    }

    /// Total number of potential measurements (`2l + b`).
    pub fn len(&self) -> usize {
        self.taken.len()
    }

    /// Whether there are no measurement slots.
    pub fn is_empty(&self) -> bool {
        self.taken.is_empty()
    }

    /// Whether `id` is recorded for state estimation (`mz`).
    pub fn is_taken(&self, id: MeasurementId) -> bool {
        self.taken[id.0]
    }

    /// Whether `id` is integrity-protected (`sz`).
    pub fn is_secured(&self, id: MeasurementId) -> bool {
        self.secured[id.0]
    }

    /// Whether the adversary can reach `id` (`az`).
    pub fn is_accessible(&self, id: MeasurementId) -> bool {
        self.accessible[id.0]
    }

    /// Sets the taken flag.
    pub fn set_taken(&mut self, id: MeasurementId, v: bool) {
        self.taken[id.0] = v;
    }

    /// Sets the secured flag.
    pub fn set_secured(&mut self, id: MeasurementId, v: bool) {
        self.secured[id.0] = v;
    }

    /// Sets the accessible flag.
    pub fn set_accessible(&mut self, id: MeasurementId, v: bool) {
        self.accessible[id.0] = v;
    }

    /// Ids of taken measurements.
    pub fn taken_ids(&self) -> impl Iterator<Item = MeasurementId> + '_ {
        self.taken
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| MeasurementId(i))
    }

    /// Number of taken measurements.
    pub fn num_taken(&self) -> usize {
        self.taken.iter().filter(|&&t| t).count()
    }

    /// Marks every measurement residing at `bus` as secured — the paper's
    /// bus-level protection model (securing a substation, e.g. with a
    /// tamper-protected PMU, secures all its meters; Eq. 28).
    pub fn secure_bus(&mut self, grid: &Grid, bus: BusId) {
        for i in 0..self.len() {
            if measurement_bus(grid, i) == bus {
                self.secured[i] = true;
            }
        }
    }

    /// Returns a copy with the given buses secured.
    pub fn with_secured_buses(&self, grid: &Grid, buses: &[BusId]) -> Self {
        let mut out = self.clone();
        for &b in buses {
            out.secure_bus(grid, b);
        }
        out
    }

    /// Restricts `taken` to a deterministic subset of the given fraction
    /// (used by the evaluation sweeps over "% of measurements taken").
    ///
    /// Keeps every `ceil(1/fraction)`-ish slot via integer striding so the
    /// same fraction always selects the same subset. A fraction of 1.0
    /// keeps everything.
    ///
    /// # Panics
    /// Panics unless `0 < fraction ≤ 1`.
    pub fn with_taken_fraction(&self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0, 1]");
        let mut out = self.clone();
        for i in 0..self.len() {
            // Deterministic stride: slot i survives iff its scaled position
            // advances the integer count, i.e. ⌊(i+1)f⌋ > ⌊i·f⌋.
            let advances = (((i + 1) as f64) * fraction).floor()
                > ((i as f64) * fraction).floor();
            out.taken[i] = self.taken[i] && advances;
        }
        out
    }

    /// Kind of a measurement slot with respect to `grid`.
    ///
    /// # Panics
    /// Panics if `id` is out of range for `grid`.
    pub fn kind(grid: &Grid, id: MeasurementId) -> MeasurementKind {
        let l = grid.num_lines();
        if id.0 < l {
            MeasurementKind::FlowForward(LineId(id.0))
        } else if id.0 < 2 * l {
            MeasurementKind::FlowBackward(LineId(id.0 - l))
        } else {
            MeasurementKind::Injection(BusId(id.0 - 2 * l))
        }
    }

    /// The substation (bus) where measurement `id` physically resides.
    pub fn bus_of(grid: &Grid, id: MeasurementId) -> BusId {
        measurement_bus(grid, id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Line;

    fn grid() -> Grid {
        Grid::new(
            3,
            vec![
                Line::new(BusId(0), BusId(1), 2.0),
                Line::new(BusId(1), BusId(2), 4.0),
            ],
        )
    }

    #[test]
    fn full_config_flags() {
        let g = grid();
        let cfg = MeasurementConfig::full(&g);
        assert_eq!(cfg.len(), 7);
        assert_eq!(cfg.num_taken(), 7);
        assert!(cfg.is_taken(MeasurementId(0)));
        assert!(!cfg.is_secured(MeasurementId(0)));
        assert!(cfg.is_accessible(MeasurementId(6)));
    }

    #[test]
    fn kinds_partition_by_index() {
        let g = grid();
        assert_eq!(
            MeasurementConfig::kind(&g, MeasurementId(1)),
            MeasurementKind::FlowForward(LineId(1))
        );
        assert_eq!(
            MeasurementConfig::kind(&g, MeasurementId(2)),
            MeasurementKind::FlowBackward(LineId(0))
        );
        assert_eq!(
            MeasurementConfig::kind(&g, MeasurementId(5)),
            MeasurementKind::Injection(BusId(1))
        );
    }

    #[test]
    fn securing_a_bus_secures_its_meters() {
        let g = grid();
        let mut cfg = MeasurementConfig::full(&g);
        cfg.secure_bus(&g, BusId(1));
        // Bus 1 hosts: forward flow of line 1 (meter 1), backward flow of
        // line 0 (meter 2), injection of bus 1 (meter 5).
        assert!(cfg.is_secured(MeasurementId(1)));
        assert!(cfg.is_secured(MeasurementId(2)));
        assert!(cfg.is_secured(MeasurementId(5)));
        assert!(!cfg.is_secured(MeasurementId(0)));
        assert!(!cfg.is_secured(MeasurementId(3)));
    }

    #[test]
    fn taken_fraction_is_deterministic_and_sized() {
        let g = grid();
        let cfg = MeasurementConfig::full(&g);
        let half = cfg.with_taken_fraction(0.5);
        let again = cfg.with_taken_fraction(0.5);
        assert_eq!(half, again);
        let kept = half.num_taken();
        assert!(kept >= 3 && kept <= 4, "kept {kept}");
        assert_eq!(cfg.with_taken_fraction(1.0).num_taken(), 7);
    }

    #[test]
    fn taken_ids_iterates_only_taken() {
        let g = grid();
        let mut cfg = MeasurementConfig::full(&g);
        cfg.set_taken(MeasurementId(3), false);
        let ids: Vec<usize> = cfg.taken_ids().map(|m| m.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 4, 5, 6]);
    }
}
