//! The topology processor: from breaker statuses to the measurement model.
//!
//! The EMS does not use a fixed network model; a *topology processor* maps
//! the statuses of switches and circuit breakers into the set of in-service
//! lines, from which the connectivity matrix `A`, the branch admittance
//! matrix `D`, and the measurement Jacobian
//! `H = [DA; −DA; per-bus consumption rows]` (paper Eq. 2) are assembled.
//! Topology-poisoning attacks work precisely because this mapping trusts
//! telemetered statuses.

use crate::model::{BusId, Grid, LineId};
use sta_linalg::{CsrMatrix, Matrix};

/// The in-service status of every line — the output of the topology
/// processor, i.e. what state estimation believes the network looks like.
///
/// # Examples
///
/// ```
/// use sta_grid::{BusId, Grid, Line, LineId, Topology};
///
/// let grid = Grid::new(2, vec![Line::new(BusId(0), BusId(1), 4.0)]);
/// let topo = Topology::all_closed(&grid);
/// assert!(topo.is_in_service(LineId(0)));
/// assert!(topo.with_line_open(LineId(0)).island_count(&grid) == 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    in_service: Vec<bool>,
}

impl Topology {
    /// A topology with every line of `grid` in service.
    pub fn all_closed(grid: &Grid) -> Self {
        Topology { in_service: vec![true; grid.num_lines()] }
    }

    /// A topology from explicit statuses.
    pub fn from_statuses(in_service: Vec<bool>) -> Self {
        Topology { in_service }
    }

    /// Number of lines covered.
    pub fn num_lines(&self) -> usize {
        self.in_service.len()
    }

    /// Whether `line` is in service.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn is_in_service(&self, line: LineId) -> bool {
        self.in_service[line.0]
    }

    /// A copy with `line` opened (an *exclusion* when applied to a closed
    /// line).
    pub fn with_line_open(&self, line: LineId) -> Topology {
        let mut t = self.clone();
        t.in_service[line.0] = false;
        t
    }

    /// A copy with `line` closed (an *inclusion* when applied to an open
    /// line).
    pub fn with_line_closed(&self, line: LineId) -> Topology {
        let mut t = self.clone();
        t.in_service[line.0] = true;
        t
    }

    /// Ids of in-service lines.
    pub fn in_service_lines(&self) -> impl Iterator<Item = LineId> + '_ {
        self.in_service
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| LineId(i))
    }

    /// Number of connected components (electrical islands) induced on
    /// `grid` by the in-service lines.
    pub fn island_count(&self, grid: &Grid) -> usize {
        let mut uf = UnionFind::new(grid.num_buses());
        for line in self.in_service_lines() {
            let l = grid.line(line);
            uf.union(l.from.0, l.to.0);
        }
        uf.num_components()
    }

    /// The island label of each bus (labels are representative bus
    /// indices).
    pub fn island_of(&self, grid: &Grid) -> Vec<usize> {
        let mut uf = UnionFind::new(grid.num_buses());
        for line in self.in_service_lines() {
            let l = grid.line(line);
            uf.union(l.from.0, l.to.0);
        }
        (0..grid.num_buses()).map(|b| uf.find(b)).collect()
    }

    /// Whether every bus is connected (single island) — the precondition
    /// for an observable state estimate with one reference bus.
    pub fn is_connected(&self, grid: &Grid) -> bool {
        grid.num_buses() <= 1 || self.island_count(grid) == 1
    }
}

/// Builds the grid connectivity (incidence) matrix `A` (`l × b`): row `i`
/// has `+1` at the from-bus and `−1` at the to-bus of line `i`; rows of
/// out-of-service lines are zero.
pub fn connectivity_matrix(grid: &Grid, topo: &Topology) -> Matrix {
    let mut a = Matrix::zeros(grid.num_lines(), grid.num_buses());
    for (i, line) in grid.lines().iter().enumerate() {
        if topo.is_in_service(LineId(i)) {
            a[(i, line.from.0)] = 1.0;
            a[(i, line.to.0)] = -1.0;
        }
    }
    a
}

/// Builds the branch admittance diagonal `D` (`l × l`).
pub fn admittance_matrix(grid: &Grid) -> Matrix {
    Matrix::from_diag(
        &grid
            .lines()
            .iter()
            .map(|l| l.admittance)
            .collect::<Vec<f64>>(),
    )
}

/// Builds the full measurement Jacobian `H` (`(2l+b) × b`) of paper Eq. 2.
///
/// Row layout matches the paper's measurement numbering:
/// * rows `0..l`: forward line flows `P_i = ld_i(θ_lf − θ_lt)`;
/// * rows `l..2l`: backward flows (negated);
/// * rows `2l..2l+b`: bus consumptions, incoming minus outgoing flows
///   (paper Eq. 4).
///
/// Out-of-service lines contribute zero rows and do not enter the
/// consumption rows.
pub fn h_matrix(grid: &Grid, topo: &Topology) -> Matrix {
    let l = grid.num_lines();
    let b = grid.num_buses();
    let mut h = Matrix::zeros(2 * l + b, b);
    for (i, line) in grid.lines().iter().enumerate() {
        if !topo.is_in_service(LineId(i)) {
            continue;
        }
        let (f, t, y) = (line.from.0, line.to.0, line.admittance);
        // Forward flow measurement.
        h[(i, f)] += y;
        h[(i, t)] -= y;
        // Backward flow measurement.
        h[(l + i, f)] -= y;
        h[(l + i, t)] += y;
        // Consumption rows: incoming (to-bus) adds the flow, outgoing
        // (from-bus) subtracts it.
        h[(2 * l + t, f)] += y;
        h[(2 * l + t, t)] -= y;
        h[(2 * l + f, f)] -= y;
        h[(2 * l + f, t)] += y;
    }
    h
}

/// Sparse form of [`h_matrix`]: same `(2l+b) × b` Jacobian built directly
/// from triplets. Every flow row has exactly 2 nonzeros and every
/// consumption row at most `deg(bus) + 1` entries on the bus's neighbor
/// columns, so the matrix has O(l) nonzeros regardless of grid size —
/// this is what lets WLS and observability analysis scale past the
/// 14-bus cases.
pub fn h_matrix_sparse(grid: &Grid, topo: &Topology) -> CsrMatrix {
    let l = grid.num_lines();
    let b = grid.num_buses();
    let mut triplets = Vec::with_capacity(8 * l);
    for (i, line) in grid.lines().iter().enumerate() {
        if !topo.is_in_service(LineId(i)) {
            continue;
        }
        let (f, t, y) = (line.from.0, line.to.0, line.admittance);
        triplets.push((i, f, y));
        triplets.push((i, t, -y));
        triplets.push((l + i, f, -y));
        triplets.push((l + i, t, y));
        triplets.push((2 * l + t, f, y));
        triplets.push((2 * l + t, t, -y));
        triplets.push((2 * l + f, f, -y));
        triplets.push((2 * l + f, t, y));
    }
    CsrMatrix::from_triplets(2 * l + b, b, &triplets)
}

/// The DC power-flow susceptance matrix `B = AᵀDA` (`b × b`) restricted to
/// the in-service topology.
pub fn b_matrix(grid: &Grid, topo: &Topology) -> Matrix {
    let b = grid.num_buses();
    let mut m = Matrix::zeros(b, b);
    for (i, line) in grid.lines().iter().enumerate() {
        if !topo.is_in_service(LineId(i)) {
            continue;
        }
        let (f, t, y) = (line.from.0, line.to.0, line.admittance);
        m[(f, f)] += y;
        m[(t, t)] += y;
        m[(f, t)] -= y;
        m[(t, f)] -= y;
    }
    m
}

/// Disjoint-set forest used for island detection.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n], components: n }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }

    fn num_components(&self) -> usize {
        self.components
    }
}

/// Helper: the bus at which a potential measurement physically resides
/// (paper Eq. 23): forward flow meters sit at the from-bus substation,
/// backward flow meters at the to-bus, injection meters at their bus.
pub fn measurement_bus(grid: &Grid, measurement: usize) -> BusId {
    let l = grid.num_lines();
    if measurement < l {
        grid.line(LineId(measurement)).from
    } else if measurement < 2 * l {
        grid.line(LineId(measurement - l)).to
    } else {
        BusId(measurement - 2 * l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Line;

    fn triangle() -> Grid {
        Grid::new(
            3,
            vec![
                Line::new(BusId(0), BusId(1), 2.0),
                Line::new(BusId(1), BusId(2), 4.0),
                Line::new(BusId(0), BusId(2), 8.0),
            ],
        )
    }

    #[test]
    fn h_matrix_shape_and_flow_rows() {
        let g = triangle();
        let topo = Topology::all_closed(&g);
        let h = h_matrix(&g, &topo);
        assert_eq!(h.num_rows(), 9);
        assert_eq!(h.num_cols(), 3);
        // Line 0 forward: 2(θ0 − θ1).
        assert_eq!(h[(0, 0)], 2.0);
        assert_eq!(h[(0, 1)], -2.0);
        // Backward is negated.
        assert_eq!(h[(3, 0)], -2.0);
        assert_eq!(h[(3, 1)], 2.0);
    }

    #[test]
    fn consumption_rows_are_incoming_minus_outgoing() {
        let g = triangle();
        let topo = Topology::all_closed(&g);
        let h = h_matrix(&g, &topo);
        // Bus 1 (index 1): incoming line 0 (from bus 0), outgoing line 1.
        // P_B1 = 2(θ0−θ1) − 4(θ1−θ2) → coeffs: θ0: 2, θ1: −6, θ2: 4.
        assert_eq!(h[(7, 0)], 2.0);
        assert_eq!(h[(7, 1)], -6.0);
        assert_eq!(h[(7, 2)], 4.0);
    }

    #[test]
    fn consumption_rows_sum_to_zero() {
        // Power balance: the consumption rows over all buses cancel.
        let g = triangle();
        let topo = Topology::all_closed(&g);
        let h = h_matrix(&g, &topo);
        for col in 0..3 {
            let total: f64 = (6..9).map(|r| h[(r, col)]).sum();
            assert!(total.abs() < 1e-12);
        }
    }

    #[test]
    fn open_line_zeroes_its_rows() {
        let g = triangle();
        let topo = Topology::all_closed(&g).with_line_open(LineId(1));
        let h = h_matrix(&g, &topo);
        for col in 0..3 {
            assert_eq!(h[(1, col)], 0.0);
            assert_eq!(h[(4, col)], 0.0);
        }
        // Bus 2 consumption now only sees line 2.
        assert_eq!(h[(8, 1)], 0.0);
    }

    #[test]
    fn sparse_jacobian_matches_dense() {
        let g = triangle();
        for topo in [
            Topology::all_closed(&g),
            Topology::all_closed(&g).with_line_open(LineId(1)),
        ] {
            let dense = h_matrix(&g, &topo);
            let sparse = h_matrix_sparse(&g, &topo);
            assert_eq!(sparse.num_rows(), dense.num_rows());
            assert_eq!(sparse.num_cols(), dense.num_cols());
            for i in 0..dense.num_rows() {
                for j in 0..dense.num_cols() {
                    assert_eq!(sparse.get(i, j), dense[(i, j)], "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn islands() {
        let g = triangle();
        let all = Topology::all_closed(&g);
        assert_eq!(all.island_count(&g), 1);
        assert!(all.is_connected(&g));
        // Removing two lines strands bus 1... removing lines 0 and 1.
        let cut = all.with_line_open(LineId(0)).with_line_open(LineId(1));
        assert_eq!(cut.island_count(&g), 2);
        assert!(!cut.is_connected(&g));
        let labels = cut.island_of(&g);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn b_matrix_matches_ata() {
        let g = triangle();
        let topo = Topology::all_closed(&g);
        let a = connectivity_matrix(&g, &topo);
        let d = admittance_matrix(&g);
        let expected = a.transpose().mul_mat(&d).mul_mat(&a);
        let got = b_matrix(&g, &topo);
        for i in 0..3 {
            for j in 0..3 {
                assert!((expected[(i, j)] - got[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn measurement_bus_mapping() {
        let g = triangle();
        // Forward flow of line 1 (bus1→bus2) is metered at bus 1.
        assert_eq!(measurement_bus(&g, 1), BusId(1));
        // Backward flow of line 1 at bus 2.
        assert_eq!(measurement_bus(&g, 4), BusId(2));
        // Injection measurement 6+j at bus j.
        assert_eq!(measurement_bus(&g, 8), BusId(2));
    }
}
