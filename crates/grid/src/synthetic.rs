//! Deterministic synthetic test systems matching IEEE case dimensions.
//!
//! The paper evaluates on the IEEE 14/30/57/118/300-bus systems. Exact
//! branch data is published in the paper only for the 14-bus case
//! ([`crate::ieee14`]); for the larger systems we generate seeded,
//! reproducible grids with the standard bus/branch counts and the
//! power-grid-characteristic average nodal degree of ≈ 3 — the structural
//! property the paper credits for its scaling behavior (§V-B). See
//! `DESIGN.md` §5 for the substitution rationale.

use crate::measurement::MeasurementConfig;
use crate::model::{BusId, Grid, Line};
use crate::system::TestSystem;
use sta_linalg::rng::Pcg32;
use std::collections::BTreeSet;
use std::fmt;

/// Standard `(buses, branches)` dimensions of the test cases used in the
/// paper's evaluation (IEEE 14–300), extended by the two large-grid
/// scaling points (1354 and 2000 buses, dimensioned after the PEGASE-1354
/// and ACTIVSg2000 cases) that exercise the revised-simplex engine.
pub const IEEE_DIMENSIONS: [(usize, usize); 7] = [
    (14, 20),
    (30, 41),
    (57, 80),
    (118, 186),
    (300, 411),
    (1354, 1991),
    (2000, 3206),
];

/// Why a requested synthetic grid cannot exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerateError {
    /// Fewer than two buses were requested; a grid needs at least one line
    /// between two distinct buses.
    TooFewBuses {
        /// The requested bus count.
        num_buses: usize,
    },
    /// Fewer than `num_buses − 1` lines were requested; a connected graph
    /// is impossible.
    TooFewLines {
        /// The requested bus count.
        num_buses: usize,
        /// The requested line count.
        num_lines: usize,
    },
    /// More lines than the simple-graph maximum `b·(b−1)/2` were
    /// requested.
    TooManyLines {
        /// The requested bus count.
        num_buses: usize,
        /// The requested line count.
        num_lines: usize,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GenerateError::TooFewBuses { num_buses } => {
                write!(f, "need at least two buses, got {num_buses}")
            }
            GenerateError::TooFewLines { num_buses, num_lines } => write!(
                f,
                "{num_lines} lines cannot connect {num_buses} buses \
                 (need at least {})",
                num_buses.saturating_sub(1)
            ),
            GenerateError::TooManyLines { num_buses, num_lines } => write!(
                f,
                "{num_lines} lines exceed the simple-graph maximum {} for \
                 {num_buses} buses",
                num_buses * num_buses.saturating_sub(1) / 2
            ),
        }
    }
}

impl std::error::Error for GenerateError {}

/// Generates a connected, seeded random grid with `num_buses` buses and
/// `num_lines` branches, admittances in `[2, 25]` rounded to two decimals
/// (the precision of the paper's Table II).
///
/// The construction starts from a random spanning tree (guaranteeing
/// connectivity) and adds distinct extra edges, preferring low-degree
/// buses so the degree distribution stays grid-like rather than hub-heavy.
///
/// # Errors
/// Returns a [`GenerateError`] if fewer than two buses are requested, if
/// `num_lines < num_buses − 1` (a connected graph is impossible), or if
/// `num_lines` exceeds the simple-graph maximum.
pub fn generate(num_buses: usize, num_lines: usize, seed: u64) -> Result<Grid, GenerateError> {
    if num_buses < 2 {
        return Err(GenerateError::TooFewBuses { num_buses });
    }
    if num_lines + 1 < num_buses {
        return Err(GenerateError::TooFewLines { num_buses, num_lines });
    }
    if num_lines > num_buses * (num_buses - 1) / 2 {
        return Err(GenerateError::TooManyLines { num_buses, num_lines });
    }
    let mut rng = Pcg32::new(seed);
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut lines = Vec::with_capacity(num_lines);
    let mut degree = vec![0usize; num_buses];
    let admittance = |rng: &mut Pcg32| -> f64 {
        let raw: f64 = rng.uniform_f64(2.0, 25.0);
        (raw * 100.0).round() / 100.0
    };
    // Random spanning tree: attach each new bus to a random earlier bus,
    // biased toward low-degree attachment points.
    for b in 1..num_buses {
        let mut parent = rng.below(b);
        for _ in 0..2 {
            let candidate = rng.below(b);
            if degree[candidate] < degree[parent] {
                parent = candidate;
            }
        }
        edges.insert((parent.min(b), parent.max(b)));
        degree[parent] += 1;
        degree[b] += 1;
        lines.push(Line::new(BusId(parent), BusId(b), admittance(&mut rng)));
    }
    // Extra branches up to the target count.
    while lines.len() < num_lines {
        let a = rng.below(num_buses);
        let mut c = rng.below(num_buses);
        // Prefer a low-degree second endpoint.
        let alt = rng.below(num_buses);
        if degree[alt] < degree[c] {
            c = alt;
        }
        if a == c {
            continue;
        }
        let key = (a.min(c), a.max(c));
        if !edges.insert(key) {
            continue;
        }
        degree[a] += 1;
        degree[c] += 1;
        lines.push(Line::new(BusId(a), BusId(c), admittance(&mut rng)));
    }
    Ok(Grid::new(num_buses, lines))
}

/// A fully configured synthetic [`TestSystem`] of standard dimensions for
/// `num_buses` ∈ {14, 30, 57, 118, 300, 1354, 2000}; `14` returns the
/// *exact* paper system from [`crate::ieee14`].
///
/// Synthetic systems take every measurement, secure none, grant full
/// accessibility, and leave every tenth line (deterministically) outside
/// the fixed core topology so topology-attack experiments have candidates.
///
/// # Panics
/// Panics for unsupported sizes.
///
/// # Examples
///
/// ```
/// use sta_grid::synthetic;
///
/// let sys = synthetic::ieee_case(30);
/// assert_eq!(sys.grid.num_buses(), 30);
/// assert_eq!(sys.grid.num_lines(), 41);
/// assert!(sys.topology.is_connected(&sys.grid));
/// ```
pub fn ieee_case(num_buses: usize) -> TestSystem {
    if num_buses == 14 {
        return crate::ieee14::system();
    }
    let &(b, l) = IEEE_DIMENSIONS
        .iter()
        .find(|(bb, _)| *bb == num_buses)
        .unwrap_or_else(|| panic!("unsupported IEEE case size {num_buses}"));
    let grid = generate(b, l, 0x57A_u64 ^ num_buses as u64)
        .expect("case-table dimensions are valid");
    let mut sys = TestSystem::fully_metered(format!("ieee{num_buses}-synthetic"), grid);
    sys.measurements = MeasurementConfig::full(&sys.grid);
    for i in (9..sys.grid.num_lines()).step_by(10) {
        sys.fixed_lines[i] = false;
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_grids_are_connected_and_sized() {
        for &(b, l) in &IEEE_DIMENSIONS[1..] {
            let sys = ieee_case(b);
            assert_eq!(sys.grid.num_buses(), b);
            assert_eq!(sys.grid.num_lines(), l);
            assert!(sys.topology.is_connected(&sys.grid), "case {b}");
            let deg = sys.grid.average_degree();
            assert!(deg > 2.0 && deg < 3.5, "case {b} degree {deg}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(30, 41, 7).unwrap();
        let b = generate(30, 41, 7).unwrap();
        assert_eq!(a, b);
        let c = generate(30, 41, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn impossible_dimensions_are_reported_not_panicked() {
        assert_eq!(
            generate(1, 0, 0),
            Err(GenerateError::TooFewBuses { num_buses: 1 })
        );
        assert_eq!(
            generate(10, 8, 0),
            Err(GenerateError::TooFewLines { num_buses: 10, num_lines: 8 })
        );
        assert_eq!(
            generate(5, 11, 0),
            Err(GenerateError::TooManyLines { num_buses: 5, num_lines: 11 })
        );
        let msg = generate(10, 8, 0).unwrap_err().to_string();
        assert!(msg.contains("8 lines"), "{msg}");
        assert!(msg.contains("10 buses"), "{msg}");
    }

    #[test]
    fn admittances_are_two_decimal_and_in_range() {
        let g = generate(57, 80, 3).unwrap();
        for line in g.lines() {
            let y = line.admittance;
            assert!(y >= 2.0 && y <= 25.0);
            let scaled = y * 100.0;
            assert!((scaled - scaled.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn case_14_is_the_exact_paper_system() {
        let sys = ieee_case(14);
        assert_eq!(sys.name, "ieee14");
        assert_eq!(sys.grid.line(crate::model::LineId(0)).admittance, 16.90);
    }

    #[test]
    fn non_core_lines_marked_every_tenth() {
        let sys = ieee_case(30);
        assert!(!sys.fixed_lines[9]);
        assert!(!sys.fixed_lines[19]);
        assert!(sys.fixed_lines[0]);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_size_panics() {
        let _ = ieee_case(42);
    }
}
