//! Power-grid modeling substrate: network model, topology processor,
//! measurement configuration, and test systems.
//!
//! This crate provides everything below the estimator in the DSN'14
//! reproduction stack:
//!
//! * [`Grid`] / [`Line`] / [`BusId`] / [`LineId`] — the static network
//!   ([`model`]);
//! * [`Topology`] and the topology-processor matrix builders
//!   ([`topology::h_matrix`], [`topology::b_matrix`],
//!   [`topology::connectivity_matrix`]) implementing paper Eq. 2;
//! * [`MeasurementConfig`] — the `2l + b` potential measurements with their
//!   taken/secured/accessible flags ([`measurement`]);
//! * [`TestSystem`] — a packaged case ([`system`]);
//! * [`ieee14`] — the paper's Table II/III data, exact; and
//! * [`synthetic`] — seeded generators at IEEE 30/57/118/300 dimensions
//!   plus the 1354/2000-bus large-grid scaling points.
//!
//! # Examples
//!
//! ```
//! use sta_grid::{ieee14, topology};
//!
//! let sys = ieee14::system();
//! let h = topology::h_matrix(&sys.grid, &sys.topology);
//! assert_eq!(h.num_rows(), 54); // 2·20 + 14 potential measurements
//! assert_eq!(h.num_cols(), 14);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod caseformat;
pub mod ieee14;
pub mod measurement;
pub mod model;
pub mod synthetic;
pub mod system;
pub mod topology;

pub use measurement::{MeasurementConfig, MeasurementId, MeasurementKind};
pub use model::{BusId, Grid, Line, LineId};
pub use synthetic::GenerateError;
pub use system::TestSystem;
pub use topology::Topology;

#[cfg(test)]
mod randomized {
    use super::*;
    use sta_linalg::rng::Pcg32;

    /// Any generated synthetic grid is connected and has the requested
    /// dimensions.
    #[test]
    fn synthetic_grids_always_connected() {
        let mut rng = Pcg32::new(0x6161);
        for _ in 0..64 {
            let b = rng.range_usize(4, 40);
            let extra = rng.below(12);
            let seed = rng.next_u64() % 1000;
            let l = (b - 1 + extra).min(b * (b - 1) / 2);
            let grid = synthetic::generate(b, l, seed).unwrap();
            assert_eq!(grid.num_buses(), b);
            assert_eq!(grid.num_lines(), l);
            assert!(Topology::all_closed(&grid).is_connected(&grid));
        }
    }

    /// Each H-matrix consumption column block sums to zero (power
    /// balance) for random synthetic grids.
    #[test]
    fn h_consumption_rows_balance() {
        for seed in 0..64u64 {
            let grid = synthetic::generate(10, 14, seed).unwrap();
            let topo = Topology::all_closed(&grid);
            let h = topology::h_matrix(&grid, &topo);
            for col in 0..10 {
                let total: f64 = (28..38).map(|r| h[(r, col)]).sum();
                assert!(total.abs() < 1e-9);
            }
        }
    }

    /// Opening a single line leaves at most two islands.
    #[test]
    fn single_cut_makes_at_most_two_islands() {
        for seed in 0..64u64 {
            let grid = synthetic::generate(12, 16, seed).unwrap();
            let base = Topology::all_closed(&grid);
            for i in 0..grid.num_lines() {
                let cut = base.with_line_open(LineId(i));
                let islands = cut.island_count(&grid);
                assert!(islands == 1 || islands == 2);
            }
        }
    }

    /// measurement_bus is consistent with MeasurementConfig::kind.
    #[test]
    fn measurement_bus_matches_kind() {
        for seed in 0..32u64 {
            let grid = synthetic::generate(8, 11, seed).unwrap();
            for m in 0..grid.num_potential_measurements() {
                let id = MeasurementId(m);
                let bus = MeasurementConfig::bus_of(&grid, id);
                match MeasurementConfig::kind(&grid, id) {
                    MeasurementKind::FlowForward(l) => {
                        assert_eq!(bus, grid.line(l).from)
                    }
                    MeasurementKind::FlowBackward(l) => {
                        assert_eq!(bus, grid.line(l).to)
                    }
                    MeasurementKind::Injection(b) => assert_eq!(bus, b),
                }
            }
        }
    }
}
