//! Core grid model: buses, transmission lines, and the static network.
//!
//! Conventions follow the paper's Section III-A: line `i` runs from its
//! *from-bus* `lf_i` to its *to-bus* `lt_i`; its DC admittance `ld_i` is the
//! reciprocal of the line reactance; the line power flow is
//! `P_i = ld_i·(θ_lf − θ_lt)`; and the consumption at bus `j` is the sum of
//! incoming flows minus the sum of outgoing flows (Eq. 4).

use std::fmt;

/// Index of a bus, `0`-based.
///
/// The paper numbers buses from 1; all public display/reporting helpers in
/// this workspace add 1 back when printing so outputs match the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusId(pub usize);

impl fmt::Display for BusId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus {}", self.0 + 1)
    }
}

/// Index of a transmission line, `0`-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(pub usize);

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.0 + 1)
    }
}

/// A transmission line (branch) of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Line {
    /// The from-bus (`lf_i`), the tail of the reference direction.
    pub from: BusId,
    /// The to-bus (`lt_i`), the head of the reference direction.
    pub to: BusId,
    /// DC admittance (`ld_i`), reciprocal of the line reactance, in per
    /// unit. Always positive.
    pub admittance: f64,
    /// Thermal rating: the largest |flow| the line can carry, in per
    /// unit. `None` = unknown/unlimited. Used by impact analysis
    /// (overload masking), not by the attack feasibility model.
    pub rating: Option<f64>,
}

impl Line {
    /// Creates a line with no thermal rating.
    ///
    /// # Panics
    /// Panics if the endpoints coincide or the admittance is not positive
    /// and finite.
    pub fn new(from: BusId, to: BusId, admittance: f64) -> Self {
        assert_ne!(from, to, "line endpoints must differ");
        assert!(
            admittance > 0.0 && admittance.is_finite(),
            "admittance must be positive and finite"
        );
        Line { from, to, admittance, rating: None }
    }

    /// Sets the thermal rating.
    ///
    /// # Panics
    /// Panics if `rating` is not positive and finite.
    pub fn with_rating(mut self, rating: f64) -> Self {
        assert!(
            rating > 0.0 && rating.is_finite(),
            "rating must be positive and finite"
        );
        self.rating = Some(rating);
        self
    }

    /// Whether the line touches `bus`.
    pub fn touches(&self, bus: BusId) -> bool {
        self.from == bus || self.to == bus
    }
}

/// The static model of a power grid: a set of buses and the lines that can
/// connect them.
///
/// Which lines are actually *in service* is a property of a
/// [`crate::topology::Topology`], not of the grid itself — the topology
/// processor combines the two.
///
/// # Examples
///
/// ```
/// use sta_grid::{BusId, Grid, Line};
///
/// let grid = Grid::new(3, vec![
///     Line::new(BusId(0), BusId(1), 10.0),
///     Line::new(BusId(1), BusId(2), 5.0),
/// ]);
/// assert_eq!(grid.num_buses(), 3);
/// assert_eq!(grid.lines_at(BusId(1)).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    num_buses: usize,
    lines: Vec<Line>,
}

impl Grid {
    /// Creates a grid with `num_buses` buses and the given lines.
    ///
    /// # Panics
    /// Panics if any line references a bus out of range.
    pub fn new(num_buses: usize, lines: Vec<Line>) -> Self {
        for line in &lines {
            assert!(
                line.from.0 < num_buses && line.to.0 < num_buses,
                "line endpoint out of range"
            );
        }
        Grid { num_buses, lines }
    }

    /// Number of buses (`b`).
    pub fn num_buses(&self) -> usize {
        self.num_buses
    }

    /// Number of lines (`l`).
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// The lines, indexed by [`LineId`].
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// The line with the given id.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn line(&self, id: LineId) -> &Line {
        &self.lines[id.0]
    }

    /// Iterates over `(LineId, &Line)` pairs of lines touching `bus`.
    pub fn lines_at(&self, bus: BusId) -> impl Iterator<Item = (LineId, &Line)> + '_ {
        self.lines
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.touches(bus))
            .map(|(i, l)| (LineId(i), l))
    }

    /// Lines whose *to-bus* is `bus` (the paper's `I_{j,in}`).
    pub fn incoming(&self, bus: BusId) -> impl Iterator<Item = (LineId, &Line)> + '_ {
        self.lines
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.to == bus)
            .map(|(i, l)| (LineId(i), l))
    }

    /// Lines whose *from-bus* is `bus` (the paper's `I_{j,out}`).
    pub fn outgoing(&self, bus: BusId) -> impl Iterator<Item = (LineId, &Line)> + '_ {
        self.lines
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.from == bus)
            .map(|(i, l)| (LineId(i), l))
    }

    /// The average nodal degree `2l / b` — power grids sit near 3
    /// regardless of size, the structural property the paper credits for
    /// its sub-quadratic scaling (§V-B).
    pub fn average_degree(&self) -> f64 {
        2.0 * self.num_lines() as f64 / self.num_buses() as f64
    }

    /// Total number of potential measurements, `2l + b` (two flow meters
    /// per line plus one injection meter per bus).
    pub fn num_potential_measurements(&self) -> usize {
        2 * self.num_lines() + self.num_buses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Grid {
        Grid::new(
            3,
            vec![
                Line::new(BusId(0), BusId(1), 2.0),
                Line::new(BusId(1), BusId(2), 4.0),
                Line::new(BusId(0), BusId(2), 8.0),
            ],
        )
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.num_buses(), 3);
        assert_eq!(g.num_lines(), 3);
        assert_eq!(g.num_potential_measurements(), 9);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn incidence_queries() {
        let g = tiny();
        let at1: Vec<usize> = g.lines_at(BusId(1)).map(|(id, _)| id.0).collect();
        assert_eq!(at1, vec![0, 1]);
        let inc2: Vec<usize> = g.incoming(BusId(2)).map(|(id, _)| id.0).collect();
        assert_eq!(inc2, vec![1, 2]);
        let out0: Vec<usize> = g.outgoing(BusId(0)).map(|(id, _)| id.0).collect();
        assert_eq!(out0, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_line() {
        Grid::new(2, vec![Line::new(BusId(0), BusId(5), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn rejects_self_loop() {
        Line::new(BusId(1), BusId(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_admittance() {
        Line::new(BusId(0), BusId(1), 0.0);
    }

    #[test]
    fn display_is_one_indexed() {
        assert_eq!(BusId(0).to_string(), "bus 1");
        assert_eq!(LineId(19).to_string(), "line 20");
    }
}
