//! A packaged test system: grid, true topology, topology-security flags,
//! and measurement configuration.

use crate::measurement::MeasurementConfig;
use crate::model::{BusId, Grid, LineId};
use crate::topology::Topology;

/// Everything the attack/synthesis models need to know about one test
/// case: the static grid, the true topology (`tl`), which lines are part of
/// the fixed *core topology* (`fl`), which line statuses are
/// integrity-protected (`sl`), the measurement configuration
/// (`mz`/`sz`/`az`), and the chosen reference (slack) bus.
///
/// # Examples
///
/// ```
/// use sta_grid::ieee14;
///
/// let sys = ieee14::system();
/// assert_eq!(sys.grid.num_buses(), 14);
/// assert_eq!(sys.grid.num_lines(), 20);
/// assert_eq!(sys.measurements.len(), 54);
/// ```
#[derive(Debug, Clone)]
pub struct TestSystem {
    /// Human-readable case name, e.g. `"ieee14"`.
    pub name: String,
    /// The static network.
    pub grid: Grid,
    /// True in-service statuses (`tl_i`).
    pub topology: Topology,
    /// Whether each line belongs to the fixed core topology (`fl_i`);
    /// core lines can never be opened.
    pub fixed_lines: Vec<bool>,
    /// Whether each line's breaker status telemetry is secured (`sl_i`).
    pub secured_line_status: Vec<bool>,
    /// The `mz`/`sz`/`az` flags.
    pub measurements: MeasurementConfig,
    /// Reference (slack) bus whose phase angle is pinned to zero.
    pub reference_bus: BusId,
}

impl TestSystem {
    /// A fully-metered, unsecured system over `grid` with every line in
    /// the fixed core topology.
    pub fn fully_metered(name: impl Into<String>, grid: Grid) -> Self {
        let measurements = MeasurementConfig::full(&grid);
        let topology = Topology::all_closed(&grid);
        let n = grid.num_lines();
        TestSystem {
            name: name.into(),
            grid,
            topology,
            fixed_lines: vec![true; n],
            secured_line_status: vec![false; n],
            measurements,
            reference_bus: BusId(0),
        }
    }

    /// Whether `line` may be excluded by a topology attack: it must be in
    /// the true topology, not fixed, and not status-secured (paper Eq. 9).
    pub fn excludable(&self, line: LineId) -> bool {
        self.topology.is_in_service(line)
            && !self.fixed_lines[line.0]
            && !self.secured_line_status[line.0]
    }

    /// Whether `line` may be included by a topology attack: it must be out
    /// of the true topology and not status-secured (paper Eq. 10).
    pub fn includable(&self, line: LineId) -> bool {
        !self.topology.is_in_service(line) && !self.secured_line_status[line.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Line;

    #[test]
    fn fully_metered_defaults() {
        let g = Grid::new(2, vec![Line::new(BusId(0), BusId(1), 1.0)]);
        let sys = TestSystem::fully_metered("t", g);
        assert_eq!(sys.measurements.num_taken(), 4); // 2·1 flows + 2 injections
        assert!(!sys.excludable(LineId(0))); // fixed core line
        assert!(!sys.includable(LineId(0))); // already in service
        assert_eq!(sys.reference_bus, BusId(0));
    }

    #[test]
    fn exclusion_inclusion_gates() {
        let g = Grid::new(
            3,
            vec![
                Line::new(BusId(0), BusId(1), 1.0),
                Line::new(BusId(1), BusId(2), 1.0),
                Line::new(BusId(0), BusId(2), 1.0),
            ],
        );
        let mut sys = TestSystem::fully_metered("t", g);
        sys.fixed_lines[1] = false;
        assert!(sys.excludable(LineId(1)));
        sys.secured_line_status[1] = true;
        assert!(!sys.excludable(LineId(1)));
        // An open, unsecured line is includable.
        sys.topology = sys.topology.with_line_open(LineId(2));
        assert!(sys.includable(LineId(2)));
        sys.secured_line_status[2] = true;
        assert!(!sys.includable(LineId(2)));
    }
}
