//! Arbitrary-precision signed integers.
//!
//! The simplex theory solver pivots with exact rational arithmetic; numerators
//! and denominators grow without bound during elimination, so fixed-width
//! integers are not an option. This module provides a compact sign-magnitude
//! big integer with the operations the solver needs: ring arithmetic,
//! Euclidean division, gcd, comparisons and conversions.
//!
//! # Examples
//!
//! ```
//! use sta_smt::bigint::BigInt;
//!
//! let a = BigInt::from(1_000_000_007i64);
//! let b = &a * &a;
//! assert_eq!(b.to_string(), "1000000014000000049");
//! assert_eq!((&b % &a), BigInt::zero());
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero (magnitude is empty).
    Zero,
    /// Strictly positive.
    Plus,
}

/// An arbitrary-precision signed integer.
///
/// Stored as a sign plus little-endian `u64` limbs with no trailing zero
/// limbs. Zero is represented by an empty limb vector and [`Sign::Zero`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian magnitude; invariant: no trailing zero limb.
    limbs: Vec<u64>,
}

impl BigInt {
    /// Returns zero.
    ///
    /// ```
    /// # use sta_smt::bigint::BigInt;
    /// assert!(BigInt::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, limbs: Vec::new() }
    }

    /// Returns one.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// Whether this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Whether this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Whether this integer equals one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        match self.sign {
            Sign::Minus => -1,
            Sign::Zero => 0,
            Sign::Plus => 1,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        let mut r = self.clone();
        if r.sign == Sign::Minus {
            r.sign = Sign::Plus;
        }
        r
    }

    /// Number of limbs in the magnitude (0 for zero). Used by the memory
    /// accounting in [`crate::stats`].
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    fn from_limbs(sign: Sign, mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        let sign = if limbs.is_empty() { Sign::Zero } else { sign };
        BigInt { sign, limbs }
    }

    /// Compares magnitudes, ignoring signs.
    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i];
            let y = if i < short.len() { short[i] } else { 0 };
            let (s1, c1) = x.overflowing_add(y);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    /// Computes `a - b`; requires `a >= b` in magnitude.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let y = if i < b.len() { b[i] } else { 0 };
            let (d1, b1) = a[i].overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    /// Divides magnitude by a single limb, returning (quotient, remainder).
    fn divmod_small(a: &[u64], d: u64) -> (Vec<u64>, u64) {
        debug_assert!(d != 0);
        let mut q = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (q, rem as u64)
    }

    /// Knuth-style long division on magnitudes: returns (quotient, remainder).
    fn divmod_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        match Self::cmp_mag(a, b) {
            Ordering::Less => return (Vec::new(), a.to_vec()),
            Ordering::Equal => return (vec![1], Vec::new()),
            Ordering::Greater => {}
        }
        if b.len() == 1 {
            let (q, r) = Self::divmod_small(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        // Normalize so the divisor's top limb has its high bit set.
        let shift = b.last().unwrap().leading_zeros();
        let bn = Self::shl_bits(b, shift);
        let mut an = Self::shl_bits(a, shift);
        an.push(0); // guard limb
        let n = bn.len();
        let m = an.len() - n - 1;
        let mut q = vec![0u64; m + 1];
        let btop = bn[n - 1] as u128;
        let bsec = bn[n - 2] as u128;
        for j in (0..=m).rev() {
            // Estimate q̂ from the top three limbs.
            let num = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
            let mut qhat = num / btop;
            let mut rhat = num % btop;
            while qhat >= 1u128 << 64
                || qhat * bsec > ((rhat << 64) | an[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += btop;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-subtract qhat * bn from an[j..j+n+1].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * bn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (p as u64) as i128;
                let cur = an[j + i] as i128 - sub - borrow;
                if cur < 0 {
                    an[j + i] = (cur + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    an[j + i] = cur as u64;
                    borrow = 0;
                }
            }
            let cur = an[j + n] as i128 - carry as i128 - borrow;
            if cur < 0 {
                // q̂ was one too large; add back.
                an[j + n] = (cur + (1i128 << 64)) as u64;
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let (s1, c1) = an[j + i].overflowing_add(bn[i]);
                    let (s2, c2) = s1.overflowing_add(c);
                    an[j + i] = s2;
                    c = (c1 as u64) + (c2 as u64);
                }
                an[j + n] = an[j + n].wrapping_add(c);
            } else {
                an[j + n] = cur as u64;
            }
            q[j] = qhat as u64;
        }
        let rem = Self::shr_bits(&an[..n], shift);
        (q, rem)
    }

    fn shl_bits(a: &[u64], shift: u32) -> Vec<u64> {
        if shift == 0 {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for &x in a {
            out.push((x << shift) | carry);
            carry = x >> (64 - shift);
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    fn shr_bits(a: &[u64], shift: u32) -> Vec<u64> {
        if shift == 0 {
            let mut v = a.to_vec();
            while v.last() == Some(&0) {
                v.pop();
            }
            return v;
        }
        let mut out = vec![0u64; a.len()];
        let mut carry = 0u64;
        for i in (0..a.len()).rev() {
            out[i] = (a[i] >> shift) | carry;
            carry = a[i] << (64 - shift);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Euclidean division returning `(quotient, remainder)` where the
    /// remainder has the sign of `self` (truncated division, like Rust's `/`
    /// and `%` on primitives).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn divmod(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (qm, rm) = Self::divmod_mag(&self.limbs, &other.limbs);
        let qsign = if self.sign == other.sign { Sign::Plus } else { Sign::Minus };
        (
            BigInt::from_limbs(qsign, qm),
            BigInt::from_limbs(self.sign, rm),
        )
    }

    /// Greatest common divisor (always non-negative).
    ///
    /// ```
    /// # use sta_smt::bigint::BigInt;
    /// let g = BigInt::from(48i64).gcd(&BigInt::from(-18i64));
    /// assert_eq!(g, BigInt::from(6i64));
    /// ```
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r.abs();
        }
        a
    }

    /// Lossy conversion to `f64` (used only for reporting, never for solving).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            v = v * 1.8446744073709552e19 + limb as f64;
        }
        if self.sign == Sign::Minus {
            -v
        } else {
            v
        }
    }

    /// Exact conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => {
                let m = self.limbs[0];
                match self.sign {
                    Sign::Plus if m <= i64::MAX as u64 => Some(m as i64),
                    Sign::Minus if m <= i64::MAX as u64 + 1 => Some((m as i128 * -1) as i64),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt { sign: Sign::Plus, limbs: vec![v as u64] },
            Ordering::Less => BigInt {
                sign: Sign::Minus,
                limbs: vec![(v as i128).unsigned_abs() as u64],
            },
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt { sign: Sign::Plus, limbs: vec![v] }
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Minus, Minus) => Self::cmp_mag(&other.limbs, &self.limbs),
            (Minus, _) => Ordering::Less,
            (Zero, Minus) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Plus) => Ordering::Less,
            (Plus, Plus) => Self::cmp_mag(&self.limbs, &other.limbs),
            (Plus, _) => Ordering::Greater,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        };
        BigInt { sign, limbs: self.limbs.clone() }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = match self.sign {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        };
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        use Sign::*;
        match (self.sign, other.sign) {
            (Zero, _) => other.clone(),
            (_, Zero) => self.clone(),
            (a, b) if a == b => {
                BigInt::from_limbs(a, BigInt::add_mag(&self.limbs, &other.limbs))
            }
            _ => match BigInt::cmp_mag(&self.limbs, &other.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_limbs(
                    self.sign,
                    BigInt::sub_mag(&self.limbs, &other.limbs),
                ),
                Ordering::Less => BigInt::from_limbs(
                    other.sign,
                    BigInt::sub_mag(&other.limbs, &self.limbs),
                ),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == other.sign { Sign::Plus } else { Sign::Minus };
        BigInt::from_limbs(sign, BigInt::mul_mag(&self.limbs, &other.limbs))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.divmod(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.divmod(other).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
    };
}
forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);
forward_owned_binop!(Rem, rem);

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.limbs.clone();
        while !mag.is_empty() {
            let (q, r) = BigInt::divmod_small(&mag, 10_000_000_000_000_000_000);
            let mut q = q;
            while q.last() == Some(&0) {
                q.pop();
            }
            digits.push(r);
            mag = q;
        }
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", digits.pop().unwrap())?;
        while let Some(d) = digits.pop() {
            write!(f, "{d:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn small_arithmetic_matches_i64() {
        let cases = [0i64, 1, -1, 7, -7, 1 << 40, -(1 << 40), i64::MAX / 2];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(&bi(a) + &bi(b), bi(a + b), "{a}+{b}");
                assert_eq!(&bi(a) - &bi(b), bi(a - b), "{a}-{b}");
                if let Some(p) = a.checked_mul(b) {
                    assert_eq!(&bi(a) * &bi(b), bi(p), "{a}*{b}");
                }
            }
        }
    }

    #[test]
    fn display_round_trip_large() {
        let a = bi(i64::MAX);
        let sq = &a * &a;
        assert_eq!(sq.to_string(), "85070591730234615847396907784232501249");
    }

    #[test]
    fn divmod_large() {
        let a = &(&bi(i64::MAX) * &bi(i64::MAX)) + &bi(12345);
        let b = bi(i64::MAX);
        let (q, r) = a.divmod(&b);
        assert_eq!(q, bi(i64::MAX));
        assert_eq!(r, bi(12345));
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn divmod_signs_match_truncated_division() {
        for &(a, b) in &[(7i64, 3i64), (-7, 3), (7, -3), (-7, -3), (6, 3), (-6, 3)] {
            let (q, r) = bi(a).divmod(&bi(b));
            assert_eq!(q, bi(a / b), "{a}/{b}");
            assert_eq!(r, bi(a % b), "{a}%{b}");
        }
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(bi(48).gcd(&bi(-18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(5).gcd(&bi(0)), bi(5));
        assert_eq!(bi(17).gcd(&bi(13)), bi(1));
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-4));
        assert!(bi(-5) < bi(0));
        assert!(bi(0) < bi(3));
        assert!(bi(3) < bi(4));
        let big = &bi(i64::MAX) * &bi(2);
        assert!(bi(i64::MAX) < big);
        assert!(-&big < bi(i64::MIN + 1));
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(bi(1024).to_f64(), 1024.0);
        assert_eq!(bi(-3).to_f64(), -3.0);
        let big = &bi(1i64 << 62) * &bi(4);
        assert!((big.to_f64() - 2f64.powi(64)).abs() / 2f64.powi(64) < 1e-12);
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(bi(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!((&bi(i64::MAX) + &bi(1)).to_i64(), None);
        assert_eq!(bi(0).to_i64(), Some(0));
        assert_eq!(bi(-42).to_i64(), Some(-42));
    }

    #[test]
    fn division_long_random() {
        // Deterministic pseudo-random long-division stress using an LCG.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..200 {
            let a = BigInt::from_limbs(Sign::Plus, vec![next(), next(), next(), next() | 1]);
            let b = BigInt::from_limbs(Sign::Plus, vec![next(), next() | 1]);
            let (q, r) = a.divmod(&b);
            assert!(r < b);
            assert_eq!(&(&q * &b) + &r, a);
        }
    }
}
