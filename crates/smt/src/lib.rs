//! A self-contained SMT solver for quantifier-free linear real arithmetic
//! (QF_LRA) with full Boolean structure and cardinality constraints.
//!
//! This crate is the formal-methods substrate of the DSN'14 reproduction
//! *Security Threat Analytics and Countermeasure Synthesis for Power System
//! State Estimation*: the paper encodes undetected-false-data-injection
//! attack feasibility into Z3; we stand in for Z3 with a from-scratch
//! DPLL(T) solver — a CDCL SAT core ([`sat`]) coupled to a Dutertre–de Moura
//! general simplex ([`simplex`]) over exact rationals ([`rational`],
//! [`bigint`]).
//!
//! # Architecture
//!
//! * [`Formula`] / [`LinExpr`] — the assertion language: Boolean structure,
//!   linear-arithmetic atoms, and `at-most`/`at-least`/`exactly` cardinality.
//! * [`Solver`] — assertion stack with push/pop, `check`, model extraction,
//!   and per-check [`SolverStats`] (the memory telemetry behind the paper's
//!   Table IV).
//! * Everything is exact: coefficients are arbitrary-precision rationals and
//!   strict bounds use delta-rationals, so `sat`/`unsat` answers carry no
//!   floating-point caveats.
//!
//! # Examples
//!
//! ```
//! use sta_smt::{Formula, LinExpr, LinExprCmp, Solver};
//!
//! let mut solver = Solver::new();
//! let p = solver.new_bool();
//! let x = solver.new_real();
//! let y = solver.new_real();
//!
//! // p → x + y = 3;  ¬p → x = 0;  y ≤ 1;  x ≥ 2 ⇒ p must hold.
//! solver.assert_formula(
//!     &Formula::var(p).implies((LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(3))),
//! );
//! solver.assert_formula(
//!     &Formula::var(p).not().implies(LinExpr::var(x).eq_expr(LinExpr::from(0))),
//! );
//! solver.assert_formula(&LinExpr::var(y).le(LinExpr::from(1)));
//! solver.assert_formula(&LinExpr::var(x).ge(LinExpr::from(2)));
//!
//! let model = solver.check().expect_sat();
//! assert!(model.bool_value(p));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod bigint;
pub mod budget;
pub mod certify;
pub mod cnf;
pub mod expr;
pub mod formula;
pub mod json;
pub mod lint;
pub mod profile;
pub mod rational;
pub mod rng;
pub mod sat;
pub mod simplex;
pub mod solver;
pub mod stats;
pub mod tablefmt;
pub mod trace;

pub use budget::{Budget, Interrupt};
pub use certify::{
    check_assumption_unsat_proof, check_theory_lemma, check_unsat_proof, eval_formula,
    AtomSemantics, CertifyError, CertifyLevel, RupChecker, TheoryContext,
};
pub use expr::{LinExpr, RealVar};
pub use formula::{BoolVar, CmpOp, Formula, LinExprCmp};
pub use lint::{lint, lint_clauses, LintFinding, LintKind, LintReport, Severity};
pub use profile::{
    flatten_spans, merge_spans, render_spans, Clock, FakeClock, Profiler, SpanGuard, SpanNode,
};
pub use rational::{DeltaRational, Rational};
pub use simplex::SimplexMode;
pub use solver::{Model, SatResult, Solver, UsageError};
pub use stats::{ProgressSample, SolverStats};
pub use tablefmt::{Align, Table};
pub use trace::{
    CollectSink, JsonlSink, Phase, PhaseMetrics, PhaseTimings, SharedSink, TraceEvent, TraceSink,
};
