//! Tseitin transformation from [`Formula`] to CNF over a [`CdclSolver`],
//! with arithmetic atoms registered in a [`Simplex`] theory.
//!
//! Every sub-formula gets a definition literal; the root literal is asserted
//! as a unit clause. Arithmetic atoms are normalized so that structurally
//! equal constraints share one SAT variable: the variable part is scaled to
//! a canonical leading coefficient of `+1` and every comparison is expressed
//! as an upper bound (`e ≤ c` / `e < c`), lower bounds being the negations.
//! Cardinality nodes use the Sinz sequential-counter encoding, guarded by
//! the definition literal in both polarities so they remain correct under
//! arbitrary Boolean structure.
//!
//! Encoding honors the solver [`Budget`]: Tseitin recursion and the
//! sequential-counter expansion poll the deadline/cancel flag (masked, every
//! 64th poll site) and abort with [`Interrupt`], so a huge encoding cannot
//! blow past `--timeout-ms` before the search loop ever runs.

use crate::budget::{Budget, Interrupt};
use crate::expr::LinExpr;
use crate::formula::{BoolVar, CmpOp, Formula, Node};
use crate::rational::Rational;
use crate::sat::{CdclSolver, Lit, SatVar};
use crate::simplex::Simplex;
use std::collections::HashMap;

/// Canonical key of an arithmetic atom: normalized variable part plus the
/// (rational) bound and strictness, always in upper-bound orientation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AtomKey {
    form: Vec<(u32, Rational)>,
    bound: Rational,
    strict: bool,
}

/// Incremental Tseitin encoder.
///
/// Owns maps from [`BoolVar`]s and atoms to SAT variables; feed it formulas
/// with [`Encoder::assert_root`]. `Clone` pairs with cloning the solver and
/// theory it encoded into (see [`crate::Solver`]'s incremental reuse).
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    bool_map: HashMap<u32, SatVar>,
    atom_map: HashMap<AtomKey, SatVar>,
    /// Lazily created variable forced true (for constant sub-formulas).
    true_var: Option<SatVar>,
    /// Number of clauses pushed (statistic; the SAT core also counts).
    pub clauses: u64,
    /// Total literal count over pushed clauses (memory statistic).
    pub clause_lits: u64,
    /// Deadline/cancellation budget polled while encoding.
    budget: Budget,
    /// Cached `budget.is_limited()` so the unlimited path stays branch-cheap.
    limited: bool,
    /// Poll-site counter for masked clock reads.
    polls: u64,
}

impl Encoder {
    /// Creates an empty encoder (unlimited budget).
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Number of distinct arithmetic atoms registered so far.
    pub fn num_atoms(&self) -> usize {
        self.atom_map.len()
    }

    /// Installs the budget polled during encoding. The first poll site hit
    /// after installation always reads the clock, so a zero-duration budget
    /// interrupts before any clause is pushed.
    pub fn set_budget(&mut self, budget: Budget) {
        self.limited = budget.is_limited();
        self.budget = budget;
        self.polls = 0;
    }

    /// Masked budget poll: reads the clock on the first call after
    /// [`Encoder::set_budget`] and every 64th poll site thereafter.
    fn poll(&mut self) -> Result<(), Interrupt> {
        if !self.limited {
            return Ok(());
        }
        let check = self.polls & 63 == 0;
        self.polls = self.polls.wrapping_add(1);
        if check {
            if let Some(why) = self.budget.exhausted() {
                return Err(why);
            }
        }
        Ok(())
    }

    /// Encodes `f` and asserts it at the root level, or aborts with the
    /// budget's [`Interrupt`] mid-encode (a partially asserted formula is
    /// meaningless — the caller must discard the solver/encoder pair).
    ///
    /// Top-level conjunctions are flattened, and top-level cardinality
    /// constraints are emitted in their asserted polarity only: a full
    /// Tseitin `t ↔ at-most-k` costs an extra `O(n·(n−k))` counter for
    /// the never-used negative direction, which dominated the CNF for
    /// small `k` over many variables.
    pub fn assert_root(
        &mut self,
        f: &Formula,
        sat: &mut CdclSolver,
        simplex: &mut Simplex,
    ) -> Result<(), Interrupt> {
        match &*f.0 {
            Node::And(fs) => {
                for g in fs {
                    self.assert_root(g, sat, simplex)?;
                }
            }
            Node::AtMost(fs, k) => {
                let lits = fs
                    .iter()
                    .map(|g| self.encode(g, sat, simplex))
                    .collect::<Result<Vec<Lit>, Interrupt>>()?;
                self.assert_at_most(&lits, *k, sat)?;
            }
            Node::AtLeast(fs, k) => {
                let lits = fs
                    .iter()
                    .map(|g| self.encode(g, sat, simplex).map(|l| !l))
                    .collect::<Result<Vec<Lit>, Interrupt>>()?;
                let n = lits.len();
                self.assert_at_most(&lits, n - *k, sat)?;
            }
            _ => {
                let lit = self.encode(f, sat, simplex)?;
                self.push_clause(sat, vec![lit]);
            }
        }
        Ok(())
    }

    /// Like [`Encoder::assert_root`], but every asserted clause carries the
    /// extra literal `¬act`: the formula is enforced only while the
    /// activation literal `act` is assumed true. Tseitin definitions of
    /// sub-formulas stay unguarded — they define fresh variables and are
    /// globally sound — so only the top-level assertion clauses pay the
    /// guard. This is what makes `pop` logical instead of physical in the
    /// persistent incremental core: retracting a scope just stops assuming
    /// its activation literal, and learned clauses survive.
    pub fn assert_root_guarded(
        &mut self,
        f: &Formula,
        act: Lit,
        sat: &mut CdclSolver,
        simplex: &mut Simplex,
    ) -> Result<(), Interrupt> {
        match &*f.0 {
            Node::And(fs) => {
                for g in fs {
                    self.assert_root_guarded(g, act, sat, simplex)?;
                }
            }
            Node::AtMost(fs, k) => {
                let lits = fs
                    .iter()
                    .map(|g| self.encode(g, sat, simplex))
                    .collect::<Result<Vec<Lit>, Interrupt>>()?;
                self.assert_at_most_guarded(&lits, *k, act, sat)?;
            }
            Node::AtLeast(fs, k) => {
                let lits = fs
                    .iter()
                    .map(|g| self.encode(g, sat, simplex).map(|l| !l))
                    .collect::<Result<Vec<Lit>, Interrupt>>()?;
                let n = lits.len();
                self.assert_at_most_guarded(&lits, n - *k, act, sat)?;
            }
            _ => {
                let lit = self.encode(f, sat, simplex)?;
                self.push_clause(sat, vec![!act, lit]);
            }
        }
        Ok(())
    }

    /// Asserts `act → at-most-k(lits)` (no definition literal).
    fn assert_at_most_guarded(
        &mut self,
        lits: &[Lit],
        k: usize,
        act: Lit,
        sat: &mut CdclSolver,
    ) -> Result<(), Interrupt> {
        let n = lits.len();
        if k >= n {
            return Ok(());
        }
        if k == 0 {
            for &l in lits {
                self.poll()?;
                self.push_clause(sat, vec![!act, !l]);
            }
            return Ok(());
        }
        self.guarded_sequential_counter(lits, k, !act, sat)
    }

    /// Asserts `at-most-k(lits)` directly (no definition literal).
    fn assert_at_most(
        &mut self,
        lits: &[Lit],
        k: usize,
        sat: &mut CdclSolver,
    ) -> Result<(), Interrupt> {
        let n = lits.len();
        if k >= n {
            return Ok(());
        }
        if k == 0 {
            for &l in lits {
                self.poll()?;
                self.push_clause(sat, vec![!l]);
            }
            return Ok(());
        }
        let always_false = !self.true_lit(sat);
        self.guarded_sequential_counter(lits, k, always_false, sat)
    }

    /// The SAT variable backing problem Boolean `v` (created on demand).
    pub fn sat_var_of_bool(&mut self, v: BoolVar, sat: &mut CdclSolver) -> SatVar {
        *self.bool_map.entry(v.0).or_insert_with(|| sat.new_var())
    }

    /// The SAT variable of `v` if the encoding ever mentioned it.
    pub fn lookup_bool(&self, v: BoolVar) -> Option<SatVar> {
        self.bool_map.get(&v.0).copied()
    }

    fn push_clause(&mut self, sat: &mut CdclSolver, lits: Vec<Lit>) {
        self.clauses += 1;
        self.clause_lits += lits.len() as u64;
        sat.add_clause(lits);
    }

    fn true_lit(&mut self, sat: &mut CdclSolver) -> Lit {
        if let Some(v) = self.true_var {
            return Lit::positive(v);
        }
        let v = sat.new_var();
        self.true_var = Some(v);
        self.push_clause(sat, vec![Lit::positive(v)]);
        Lit::positive(v)
    }

    fn encode(
        &mut self,
        f: &Formula,
        sat: &mut CdclSolver,
        simplex: &mut Simplex,
    ) -> Result<Lit, Interrupt> {
        self.poll()?;
        Ok(match &*f.0 {
            Node::True => self.true_lit(sat),
            Node::False => !self.true_lit(sat),
            Node::Var(v) => Lit::positive(self.sat_var_of_bool(*v, sat)),
            Node::Atom(e, op) => self.encode_atom(e, *op, sat, simplex),
            Node::Not(g) => !self.encode(g, sat, simplex)?,
            Node::And(fs) => {
                let lits = fs
                    .iter()
                    .map(|g| self.encode(g, sat, simplex))
                    .collect::<Result<Vec<Lit>, Interrupt>>()?;
                self.define_and(&lits, sat)
            }
            Node::Or(fs) => {
                let neg = fs
                    .iter()
                    .map(|g| self.encode(g, sat, simplex).map(|l| !l))
                    .collect::<Result<Vec<Lit>, Interrupt>>()?;
                !self.define_and(&neg, sat)
            }
            Node::Implies(a, b) => {
                let la = self.encode(a, sat, simplex)?;
                let lb = self.encode(b, sat, simplex)?;
                let neg = vec![la, !lb];
                !self.define_and(&neg, sat)
            }
            Node::Iff(a, b) => {
                let la = self.encode(a, sat, simplex)?;
                let lb = self.encode(b, sat, simplex)?;
                let t = Lit::positive(sat.new_var());
                self.push_clause(sat, vec![!t, !la, lb]);
                self.push_clause(sat, vec![!t, la, !lb]);
                self.push_clause(sat, vec![t, la, lb]);
                self.push_clause(sat, vec![t, !la, !lb]);
                t
            }
            Node::AtMost(fs, k) => {
                let lits = fs
                    .iter()
                    .map(|g| self.encode(g, sat, simplex))
                    .collect::<Result<Vec<Lit>, Interrupt>>()?;
                self.define_at_most(&lits, *k, sat)?
            }
            Node::AtLeast(fs, k) => {
                // at-least-k(xs) ≡ at-most-(n−k)(¬xs)
                let lits = fs
                    .iter()
                    .map(|g| self.encode(g, sat, simplex).map(|l| !l))
                    .collect::<Result<Vec<Lit>, Interrupt>>()?;
                let n = lits.len();
                self.define_at_most(&lits, n - *k, sat)?
            }
        })
    }

    /// Returns `t` with `t ↔ (l1 ∧ … ∧ ln)`.
    fn define_and(&mut self, lits: &[Lit], sat: &mut CdclSolver) -> Lit {
        let t = Lit::positive(sat.new_var());
        let mut long = Vec::with_capacity(lits.len() + 1);
        long.push(t);
        for &l in lits {
            self.push_clause(sat, vec![!t, l]);
            long.push(!l);
        }
        self.push_clause(sat, long);
        t
    }

    /// Returns `t` with `t ↔ at-most-k(lits)`, via two guarded sequential
    /// counters: `t → ≤k` and `¬t → ≥k+1` (the latter as `≤ n−k−1` over the
    /// negated literals).
    fn define_at_most(
        &mut self,
        lits: &[Lit],
        k: usize,
        sat: &mut CdclSolver,
    ) -> Result<Lit, Interrupt> {
        let n = lits.len();
        if k >= n {
            return Ok(self.true_lit(sat));
        }
        let t = Lit::positive(sat.new_var());
        if k == 0 {
            // t ↔ all false.
            let mut long = Vec::with_capacity(n + 1);
            long.push(t);
            for &l in lits {
                self.poll()?;
                self.push_clause(sat, vec![!t, !l]);
                long.push(l);
            }
            self.push_clause(sat, long);
            return Ok(t);
        }
        self.guarded_sequential_counter(lits, k, !t, sat)?;
        let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        // ¬t → at-least-(k+1)(lits) ≡ at-most-(n−k−1)(¬lits).
        let nk = n - k - 1;
        if nk == 0 {
            for &l in lits {
                self.push_clause(sat, vec![t, l]);
            }
        } else {
            self.guarded_sequential_counter(&negated, nk, t, sat)?;
        }
        Ok(t)
    }

    /// Sinz LT-SEQ: `guard ∨ at-most-k(lits)` — i.e. the constraint holds
    /// whenever `guard` is false. Polls the budget once per counter row:
    /// each row is `O(k)` clauses, so the `O(n·k)` expansion stays
    /// interruptible without a clock read per clause.
    fn guarded_sequential_counter(
        &mut self,
        lits: &[Lit],
        k: usize,
        guard: Lit,
        sat: &mut CdclSolver,
    ) -> Result<(), Interrupt> {
        let n = lits.len();
        debug_assert!(k >= 1 && k < n);
        // s[i][j]: among lits[0..=i] at least j+1 are true (i < n−1, j < k).
        let mut s = vec![vec![Lit::positive(0); k]; n - 1];
        for row in s.iter_mut() {
            for slot in row.iter_mut() {
                *slot = Lit::positive(sat.new_var());
            }
        }
        self.push_clause(sat, vec![guard, !lits[0], s[0][0]]);
        for j in 1..k {
            self.push_clause(sat, vec![guard, !s[0][j]]);
        }
        for i in 1..n - 1 {
            self.poll()?;
            self.push_clause(sat, vec![guard, !lits[i], s[i][0]]);
            self.push_clause(sat, vec![guard, !s[i - 1][0], s[i][0]]);
            for j in 1..k {
                self.push_clause(sat, vec![guard, !lits[i], !s[i - 1][j - 1], s[i][j]]);
                self.push_clause(sat, vec![guard, !s[i - 1][j], s[i][j]]);
            }
            self.push_clause(sat, vec![guard, !lits[i], !s[i - 1][k - 1]]);
        }
        self.push_clause(sat, vec![guard, !lits[n - 1], !s[n - 2][k - 1]]);
        Ok(())
    }

    /// Encodes an arithmetic atom `e op 0` (constant already folded into
    /// `e`). `Eq`/`Ne` split into bound pairs.
    fn encode_atom(
        &mut self,
        e: &LinExpr,
        op: CmpOp,
        sat: &mut CdclSolver,
        simplex: &mut Simplex,
    ) -> Lit {
        match op {
            CmpOp::Eq => {
                let le = self.primitive_atom(e, false, true, sat, simplex);
                let ge = self.primitive_atom(e, false, false, sat, simplex);
                self.define_and(&[le, ge], sat)
            }
            CmpOp::Ne => {
                let lt = self.primitive_atom(e, true, true, sat, simplex);
                let gt = self.primitive_atom(e, true, false, sat, simplex);
                let neg = vec![!lt, !gt];
                !self.define_and(&neg, sat)
            }
            CmpOp::Le => self.primitive_atom(e, false, true, sat, simplex),
            CmpOp::Lt => self.primitive_atom(e, true, true, sat, simplex),
            CmpOp::Ge => self.primitive_atom(e, false, false, sat, simplex),
            CmpOp::Gt => self.primitive_atom(e, true, false, sat, simplex),
        }
    }

    /// An atom `e ⋈ 0` where ⋈ is `≤`/`<` (`upper = true`) or `≥`/`>`.
    /// Normalizes to canonical upper-bound form and returns its literal.
    fn primitive_atom(
        &mut self,
        e: &LinExpr,
        strict: bool,
        upper: bool,
        sat: &mut CdclSolver,
        simplex: &mut Simplex,
    ) -> Lit {
        // e ≥ 0 ⇔ −e ≤ 0; e > 0 ⇔ −e < 0.
        let oriented = if upper { e.clone() } else { -e.clone() };
        let (varpart, c) = oriented.split_constant();
        // varpart ≤ −c. Scale so the first (lowest-index) coefficient is +1.
        let lead = varpart
            .iter()
            .next()
            .map(|(_, c)| c.clone())
            .expect("non-constant atom");
        let scale = lead.recip();
        let scaled = varpart.scaled(&scale);
        let bound = &(-&c) * &scale;
        // Negative scaling flips the comparison direction: varpart ≤ b
        // becomes scaled ≥ b' ⇔ ¬(scaled < b') / ¬(scaled ≤ b') for strict.
        let (key_strict, positive) = if lead.is_negative() {
            (!strict, false)
        } else {
            (strict, true)
        };
        let key = AtomKey {
            form: scaled.iter().map(|(v, c)| (v.0, c.clone())).collect(),
            bound: bound.clone(),
            strict: key_strict,
        };
        let var = match self.atom_map.get(&key) {
            Some(&v) => v,
            None => {
                let sv = simplex.var_for_form(&scaled);
                let v = sat.new_var();
                sat.set_theory_var(v);
                simplex.register_atom(v, sv, bound, key_strict);
                self.atom_map.insert(key, v);
                v
            }
        };
        Lit::with_polarity(var, positive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::RealVar;
    use crate::formula::LinExprCmp;
    use crate::sat::{LBool, SatOutcome};

    fn solve_bool(f: &Formula) -> Option<Vec<(BoolVar, bool)>> {
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut enc = Encoder::new();
        enc.assert_root(f, &mut sat, &mut simplex).expect("unlimited encode");
        if sat.solve(&mut simplex) == SatOutcome::Unsat {
            return None;
        }
        let mut out = Vec::new();
        for i in 0..16u32 {
            if let Some(v) = enc.lookup_bool(BoolVar(i)) {
                out.push((BoolVar(i), sat.value(v) == LBool::True));
            }
        }
        Some(out)
    }

    #[test]
    fn simple_boolean_structure() {
        let p = Formula::var(BoolVar(0));
        let q = Formula::var(BoolVar(1));
        // (p ∨ q) ∧ ¬p forces q.
        let f = Formula::and(vec![
            Formula::or(vec![p.clone(), q.clone()]),
            p.clone().not(),
        ]);
        let model = solve_bool(&f).expect("sat");
        assert_eq!(model, vec![(BoolVar(0), false), (BoolVar(1), true)]);
    }

    #[test]
    fn contradiction_is_unsat() {
        let p = Formula::var(BoolVar(0));
        let f = Formula::and(vec![p.clone(), p.not()]);
        assert!(solve_bool(&f).is_none());
    }

    #[test]
    fn iff_and_implies() {
        let p = Formula::var(BoolVar(0));
        let q = Formula::var(BoolVar(1));
        // (p ↔ q) ∧ (p → ¬q) ∧ p is unsat.
        let f = Formula::and(vec![
            p.clone().iff(q.clone()),
            p.clone().implies(q.clone().not()),
            p.clone(),
        ]);
        assert!(solve_bool(&f).is_none());
        // Without the final p it is sat (both false).
        let g = Formula::and(vec![p.clone().iff(q.clone()), p.implies(q.not())]);
        let model = solve_bool(&g).expect("sat");
        assert!(!model[0].1);
    }

    #[test]
    fn at_most_counts() {
        let ps: Vec<Formula> = (0..5).map(|i| Formula::var(BoolVar(i))).collect();
        // at-most-2 of 5 plus three of them forced true is unsat.
        let f = Formula::and(vec![
            Formula::at_most(ps.clone(), 2),
            ps[0].clone(),
            ps[1].clone(),
            ps[2].clone(),
        ]);
        assert!(solve_bool(&f).is_none());
        let g = Formula::and(vec![
            Formula::at_most(ps.clone(), 2),
            ps[0].clone(),
            ps[1].clone(),
        ]);
        assert!(solve_bool(&g).is_some());
    }

    #[test]
    fn at_least_counts() {
        let ps: Vec<Formula> = (0..4).map(|i| Formula::var(BoolVar(i))).collect();
        let f = Formula::and(vec![
            Formula::at_least(ps.clone(), 3),
            ps[0].clone().not(),
            ps[1].clone().not(),
        ]);
        assert!(solve_bool(&f).is_none());
        let g = Formula::and(vec![
            Formula::at_least(ps.clone(), 3),
            ps[0].clone().not(),
        ]);
        let m = solve_bool(&g).expect("sat");
        let count = m.iter().filter(|(_, b)| *b).count();
        assert!(count >= 3);
    }

    #[test]
    fn negated_cardinality_is_respected() {
        let ps: Vec<Formula> = (0..4).map(|i| Formula::var(BoolVar(i))).collect();
        // ¬(at-most-1) means at least 2 true; force two others false.
        let f = Formula::and(vec![
            Formula::at_most(ps.clone(), 1).not(),
            ps[2].clone().not(),
            ps[3].clone().not(),
        ]);
        let m = solve_bool(&f).expect("sat");
        assert!(m[0].1 && m[1].1);
    }

    #[test]
    fn exactly_k() {
        let ps: Vec<Formula> = (0..4).map(|i| Formula::var(BoolVar(i))).collect();
        let f = Formula::exactly(ps.clone(), 2);
        let m = solve_bool(&f).expect("sat");
        assert_eq!(m.iter().filter(|(_, b)| *b).count(), 2);
    }

    #[test]
    fn atoms_dedup_across_orientation() {
        // x ≤ 3 and ¬(x > 3) are the same atom.
        let x = RealVar(0);
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut enc = Encoder::new();
        let a = LinExpr::var(x).le(LinExpr::from(3));
        let b = LinExpr::var(x).gt(LinExpr::from(3)).not();
        enc.assert_root(&a, &mut sat, &mut simplex).expect("encode");
        enc.assert_root(&b, &mut sat, &mut simplex).expect("encode");
        assert_eq!(enc.num_atoms(), 1);
        assert_eq!(sat.solve(&mut simplex), SatOutcome::Sat);
    }

    #[test]
    fn arithmetic_equality_chain() {
        // x = y ∧ y = 3 ∧ x ≠ 3 is unsat.
        let x = RealVar(0);
        let y = RealVar(1);
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut enc = Encoder::new();
        enc.assert_root(
            &LinExpr::var(x).eq_expr(LinExpr::var(y)),
            &mut sat,
            &mut simplex,
        )
        .expect("encode");
        enc.assert_root(
            &LinExpr::var(y).eq_expr(LinExpr::from(3)),
            &mut sat,
            &mut simplex,
        )
        .expect("encode");
        enc.assert_root(
            &LinExpr::var(x).ne_expr(LinExpr::from(3)),
            &mut sat,
            &mut simplex,
        )
        .expect("encode");
        assert_eq!(sat.solve(&mut simplex), SatOutcome::Unsat);
    }

    #[test]
    fn guarded_assertions_are_conditional_on_activation() {
        // act → (at-most-1(p,q,r) ∧ ¬p): binding while act is assumed,
        // vacuous otherwise.
        let ps: Vec<Formula> = (0..3).map(|i| Formula::var(BoolVar(i))).collect();
        let f = Formula::and(vec![
            Formula::at_most(ps.clone(), 1),
            ps[0].clone().not(),
        ]);
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut enc = Encoder::new();
        let act = Lit::positive(sat.new_var());
        enc.assert_root_guarded(&f, act, &mut sat, &mut simplex)
            .expect("unlimited encode");
        // All three true at once violates the guarded constraint…
        let all_true: Vec<Lit> = (0..3)
            .map(|i| Lit::positive(enc.sat_var_of_bool(BoolVar(i), &mut sat)))
            .collect();
        let mut assume = vec![act];
        assume.extend(&all_true);
        assert_eq!(
            sat.solve_under_assumptions(&assume, &mut simplex),
            SatOutcome::Unsat
        );
        // …but is fine with the activation retracted.
        sat.reset_to_root(&mut simplex);
        assert_eq!(
            sat.solve_under_assumptions(&all_true, &mut simplex),
            SatOutcome::Sat
        );
    }

    #[test]
    fn zero_budget_interrupts_before_any_clause() {
        use crate::budget::{Budget, Interrupt};
        use std::time::Duration;
        let ps: Vec<Formula> = (0..400).map(|i| Formula::var(BoolVar(i))).collect();
        let f = Formula::at_most(ps, 3);
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut enc = Encoder::new();
        enc.set_budget(Budget::with_timeout(Duration::ZERO));
        let err = enc.assert_root(&f, &mut sat, &mut simplex);
        assert_eq!(err, Err(Interrupt::Timeout));
        // The very first poll fires before any clause is pushed.
        assert_eq!(enc.clauses, 0);
    }

    #[test]
    fn cancellation_mid_encode_is_surfaced() {
        use crate::budget::{Budget, Interrupt};
        let ps: Vec<Formula> = (0..50).map(|i| Formula::var(BoolVar(i))).collect();
        let f = Formula::at_most(ps, 2);
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut enc = Encoder::new();
        let mut budget = Budget::unlimited();
        let token = budget.new_cancel_token();
        enc.set_budget(budget);
        enc.assert_root(&f, &mut sat, &mut simplex)
            .expect("token not raised yet");
        let before = enc.clauses;
        assert!(before > 0);
        token.store(true, std::sync::atomic::Ordering::Relaxed);
        let err = enc.assert_root(&f, &mut sat, &mut simplex);
        assert_eq!(err, Err(Interrupt::Cancelled));
    }

    #[test]
    fn unlimited_budget_costs_nothing_and_finishes() {
        // A default encoder never reads the clock and encodes to completion.
        let ps: Vec<Formula> = (0..100).map(|i| Formula::var(BoolVar(i))).collect();
        let f = Formula::at_most(ps, 5);
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut enc = Encoder::new();
        enc.assert_root(&f, &mut sat, &mut simplex).expect("unlimited");
        assert!(enc.clauses > 0);
        assert_eq!(sat.solve(&mut simplex), SatOutcome::Sat);
    }
}
