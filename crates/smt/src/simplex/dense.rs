//! The eager dense tableau engine: every row is kept fully substituted
//! (rows mention only nonbasic variables) and each pivot rewrites all rows
//! touching the entering variable. This is the original engine and the
//! equivalence oracle for the revised backend — both must produce the same
//! Bland's-rule pivot trajectory in exact arithmetic.

use super::{
    add_to_row, conflict_from_row, find_violation, select_entering, SVar, Shared,
};
use crate::rational::{DeltaRational, Rational};
use crate::sat::TheoryResult;
use std::collections::BTreeMap;

/// Tableau state owned by the dense engine. The abstract solver state
/// (assignment, bounds, counters) lives in [`Shared`].
#[derive(Debug, Default, Clone)]
pub(crate) struct DenseCore {
    /// Tableau rows: `rows[r]` defines `basic[r] = Σ coeff·nonbasic`.
    rows: Vec<BTreeMap<SVar, Rational>>,
    /// Basic variable of each row.
    basic: Vec<SVar>,
    /// `row_of[v] = Some(r)` iff `v` is basic in row `r`.
    row_of: Vec<Option<usize>>,
    /// `cols[v]`: rows whose right-hand side mentions `v` (v nonbasic).
    cols: Vec<Vec<usize>>,
}

impl DenseCore {
    /// Grows the per-variable tables to cover `n` solver variables.
    fn ensure_vars(&mut self, n: usize) {
        if self.row_of.len() < n {
            self.row_of.resize(n, None);
            self.cols.resize(n, Vec::new());
        }
    }

    /// The current basic variable of each row, in row order (consumed by
    /// the Auto-mode upgrade to seed the revised engine's basis).
    pub(crate) fn basic_vars(&self) -> &[SVar] {
        &self.basic
    }

    /// Total number of stored tableau entries.
    pub(crate) fn tableau_entries(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    pub(crate) fn is_basic(&self, var: SVar) -> bool {
        self.row_of.get(var).is_some_and(|r| r.is_some())
    }

    /// Installs form row `ridx` (already appended to `sh.forms`) as a
    /// tableau row, substituting any variables that are already basic so
    /// the row mentions only nonbasic variables. Dense row indices coincide
    /// with form indices: rows are appended in form order and pivots only
    /// change which variable is basic, never the row's position.
    pub(crate) fn add_row(&mut self, sh: &mut Shared, ridx: usize) {
        self.ensure_vars(sh.assignment.len());
        let s = sh.slack_of_row[ridx];
        let mut row: BTreeMap<SVar, Rational> = BTreeMap::new();
        for (v, c) in &sh.forms[ridx] {
            if let Some(r) = self.row_of[*v] {
                let sub = self.rows[r].clone();
                for (w, cw) in sub {
                    add_to_row(&mut row, w, &(c * &cw));
                }
            } else {
                add_to_row(&mut row, *v, c);
            }
        }
        debug_assert_eq!(ridx, self.rows.len(), "dense rows follow form order");
        for &v in row.keys() {
            self.cols[v].push(ridx);
        }
        self.rows.push(row);
        self.basic.push(s);
        self.row_of[s] = Some(ridx);
    }

    /// Sets nonbasic `var` to `value`, updating every dependent basic var.
    pub(crate) fn update_nonbasic(&mut self, sh: &mut Shared, var: SVar, value: DeltaRational) {
        self.ensure_vars(sh.assignment.len());
        let diff = &value - &sh.assignment[var];
        // cols[var] may contain stale row indices from pivoting; filter by
        // membership.
        let rows_touching: Vec<usize> = self.cols[var].clone();
        for r in rows_touching {
            if let Some(c) = self.rows[r].get(&var) {
                let b = self.basic[r];
                sh.assignment[b] = &sh.assignment[b] + &diff.scale(c);
            }
        }
        sh.assignment[var] = value;
    }

    /// Pivots basic variable of row `r` with nonbasic `entering`, then sets
    /// the (now nonbasic) former basic variable so the leaving variable's
    /// violated bound becomes satisfied: standard `pivotAndUpdate`.
    fn pivot_and_update(&mut self, sh: &mut Shared, r: usize, entering: SVar, target: DeltaRational) {
        sh.pivots += 1;
        let leaving = self.basic[r];
        let a = self.rows[r].get(&entering).cloned().expect("entering in row");
        // θ = (target − β[leaving]) / a
        let theta = (&target - &sh.assignment[leaving]).scale(&a.recip());
        // β updates: leaving gets target; entering moves by θ; every other
        // basic row containing `entering` moves by its coefficient times θ.
        sh.assignment[leaving] = target;
        sh.assignment[entering] = &sh.assignment[entering] + &theta;
        let touching: Vec<usize> = self.cols[entering].clone();
        for rr in touching {
            if rr == r {
                continue;
            }
            if let Some(c) = self.rows[rr].get(&entering) {
                let b = self.basic[rr];
                sh.assignment[b] = &sh.assignment[b] + &theta.scale(c);
            }
        }
        self.pivot(sh, r, entering);
    }

    /// Row `r`: `leaving = Σ coeffs·nonbasic` with `entering` among them.
    /// Re-solves for `entering` and substitutes into all other rows.
    fn pivot(&mut self, sh: &mut Shared, r: usize, entering: SVar) {
        let leaving = self.basic[r];
        let mut row = std::mem::take(&mut self.rows[r]);
        let a = row.remove(&entering).expect("entering coefficient");
        // entering = (leaving − Σ rest) / a
        let inv = a.recip();
        let mut new_row: BTreeMap<SVar, Rational> = BTreeMap::new();
        new_row.insert(leaving, inv.clone());
        for (v, c) in row {
            new_row.insert(v, -&(&c * &inv));
        }
        // Column bookkeeping for the rewritten row.
        for (&v, _) in &new_row {
            if !self.cols[v].contains(&r) {
                self.cols[v].push(r);
            }
        }
        self.rows[r] = new_row;
        self.basic[r] = entering;
        self.row_of[leaving] = None;
        self.row_of[entering] = Some(r);

        // Substitute `entering` out of every other row.
        let touching: Vec<usize> = self.cols[entering].clone();
        for rr in touching {
            if rr == r {
                continue;
            }
            let Some(c) = self.rows[rr].remove(&entering) else {
                continue;
            };
            let expansion = self.rows[r].clone();
            for (v, cv) in expansion {
                let coeff = &c * &cv;
                let row_rr = &mut self.rows[rr];
                add_to_row(row_rr, v, &coeff);
                if row_rr.contains_key(&v) && !self.cols[v].contains(&rr) {
                    self.cols[v].push(rr);
                }
            }
        }
        // `entering` now only appears as basic of row r; clear its column.
        self.cols[entering].clear();
        // Occasionally compact stale column entries to bound memory.
        if sh.pivots % 256 == 0 {
            self.rebuild_cols();
        }
    }

    fn rebuild_cols(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        for (r, row) in self.rows.iter().enumerate() {
            for &v in row.keys() {
                self.cols[v].push(r);
            }
        }
    }

    /// Restores every *nonbasic* variable to within its bounds (needed after
    /// backtracking, which rewinds bounds but not `β`).
    fn repair_nonbasic(&mut self, sh: &mut Shared) {
        for v in 0..sh.assignment.len() {
            if self.is_basic(v) {
                continue;
            }
            let lb = sh.lower[v].as_ref().map(|b| b.value.clone());
            let ub = sh.upper[v].as_ref().map(|b| b.value.clone());
            if let Some(l) = &lb {
                if sh.assignment[v] < *l {
                    self.update_nonbasic(sh, v, l.clone());
                    continue;
                }
            }
            if let Some(u) = &ub {
                if sh.assignment[v] > *u {
                    self.update_nonbasic(sh, v, u.clone());
                }
            }
        }
    }

    /// Audits the dense tableau invariants on top of the shared ones:
    /// `basic`/`row_of` agree, no row mentions its own basic variable, and
    /// every row identity holds under `β`.
    #[cfg(feature = "certify-debug")]
    fn audit_invariants(&self, sh: &Shared) {
        for (r, row) in self.rows.iter().enumerate() {
            let b = self.basic[r];
            assert_eq!(self.row_of[b], Some(r), "basic var {b} points to row {r}");
            assert!(!row.contains_key(&b), "row {r} mentions its own basic var");
            // Row consistency: β[basic] = Σ c·β[nonbasic].
            let rhs = row.iter().fold(DeltaRational::zero(), |acc, (v, c)| {
                &acc + &sh.assignment[*v].scale(c)
            });
            assert!(sh.assignment[b] == rhs, "row {r} violated: β[{b}] ≠ Σ c·β");
        }
        for (v, r) in self.row_of.iter().enumerate() {
            if let Some(r) = r {
                assert_eq!(self.basic[*r], v, "row_of[{v}] inconsistent");
            }
        }
        super::audit_shared_invariants(sh, &|v| self.is_basic(v));
    }

    /// The main `Check()` loop: Bland's rule pivoting until all basic
    /// variables respect their bounds, or a row proves infeasibility.
    pub(crate) fn check(&mut self, sh: &mut Shared) -> TheoryResult {
        sh.theory_checks += 1;
        self.ensure_vars(sh.assignment.len());
        let debug = sh.debug_timing();
        let t0 = debug.then(std::time::Instant::now);
        self.repair_nonbasic(sh);
        if let Some(t) = t0 {
            sh.debug_timers.repair += t.elapsed();
        }
        #[cfg(feature = "certify-debug")]
        self.audit_invariants(sh);
        let limited = sh.budget.is_limited();
        let mut iters = 0u64;
        loop {
            // Pivot-boundary budget poll: a clock read per 16 iterations is
            // noise next to a tableau scan, and the first iteration checks
            // so an already-expired deadline never pivots at all.
            if limited && iters & 15 == 0 && sh.budget.exhausted().is_some() {
                return TheoryResult::Interrupted;
            }
            iters += 1;
            sh.debug_timers.iterations += 1;
            let t_scan = debug.then(std::time::Instant::now);
            // Leaving: smallest-index basic variable violating a bound.
            let violation =
                find_violation(sh, self.basic.iter().copied().enumerate());
            let Some((r, xb, below, target)) = violation else {
                if let Some(t) = t_scan {
                    sh.debug_timers.scan += t.elapsed();
                }
                return TheoryResult::Ok;
            };
            // Entering: smallest-index nonbasic that can move xb toward the
            // violated bound.
            let entering =
                select_entering(sh, self.rows[r].iter().map(|(&v, c)| (v, c)), below);
            if let Some(t) = t_scan {
                sh.debug_timers.scan += t.elapsed();
            }
            match entering {
                Some(xn) => {
                    let t_piv = debug.then(std::time::Instant::now);
                    self.pivot_and_update(sh, r, xn, target);
                    if let Some(t) = t_piv {
                        sh.debug_timers.pivot += t.elapsed();
                    }
                    #[cfg(feature = "certify-debug")]
                    self.audit_invariants(sh);
                }
                None => {
                    return conflict_from_row(
                        sh,
                        self.rows[r].iter().map(|(&v, c)| (v, c)),
                        xb,
                        below,
                    );
                }
            }
        }
    }
}
