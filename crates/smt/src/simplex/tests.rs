use super::*;
use crate::sat::{CdclSolver, LBool, SatOutcome};

/// Directly exercise the theory through a tiny CDCL harness: atoms
/// `x ≤ 1`, `x ≥ 2` (as ¬(x < 2)) must be jointly unsat.
#[test]
fn contradictory_bounds_conflict() {
    let mut simplex = Simplex::new();
    let mut sat = CdclSolver::new();
    let x = simplex.solver_var(RealVar(0));

    let a = sat.new_var(); // x ≤ 1
    sat.set_theory_var(a);
    simplex.register_atom(a, x, Rational::new(1, 1), false);
    let b = sat.new_var(); // x < 2 ; ¬b means x ≥ 2
    sat.set_theory_var(b);
    simplex.register_atom(b, x, Rational::new(2, 1), true);

    sat.add_clause(vec![Lit::positive(a)]);
    sat.add_clause(vec![Lit::negative(b)]);
    assert_eq!(sat.solve(&mut simplex), SatOutcome::Unsat);
}

/// The pivot loop polls on its first iteration, so an already-expired
/// budget interrupts a theory check before any pivot happens.
#[test]
fn zero_budget_interrupts_check_before_any_pivot() {
    let mut simplex = Simplex::new();
    let _ = simplex.solver_var(RealVar(0));
    simplex.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
    assert_eq!(simplex.check(), TheoryResult::Interrupted);
    assert_eq!(simplex.pivots(), 0);
    assert_eq!(simplex.theory_checks(), 1);
}

#[test]
fn counters_track_bound_asserts_and_checks() {
    let mut simplex = Simplex::new();
    let mut sat = CdclSolver::new();
    let x = simplex.solver_var(RealVar(0));
    let a = sat.new_var(); // x ≤ 3
    sat.set_theory_var(a);
    simplex.register_atom(a, x, Rational::new(3, 1), false);
    sat.add_clause(vec![Lit::positive(a)]);
    assert_eq!(sat.solve(&mut simplex), SatOutcome::Sat);
    assert!(simplex.bound_asserts() >= 1);
    assert!(simplex.theory_checks() >= 1);
}

#[test]
fn feasible_bounds_produce_model() {
    let mut simplex = Simplex::new();
    let mut sat = CdclSolver::new();
    let x = simplex.solver_var(RealVar(0));

    let a = sat.new_var(); // x ≤ 3
    sat.set_theory_var(a);
    simplex.register_atom(a, x, Rational::new(3, 1), false);
    let b = sat.new_var(); // x ≤ 2 ; ¬b ⇒ x > 2
    sat.set_theory_var(b);
    simplex.register_atom(b, x, Rational::new(2, 1), false);

    sat.add_clause(vec![Lit::positive(a)]);
    sat.add_clause(vec![Lit::negative(b)]);
    assert_eq!(sat.solve(&mut simplex), SatOutcome::Sat);
    let model = simplex.concrete_model();
    let v = &model[0];
    assert!(*v > Rational::new(2, 1) && *v <= Rational::new(3, 1), "got {v}");
}

/// x + y ≤ 1 together with x ≥ 1 and y ≥ 1 is unsat; dropping one of
/// the lower bounds makes it sat.
#[test]
fn sum_constraint_via_slack() {
    let mut simplex = Simplex::new();
    let mut sat = CdclSolver::new();
    let x = RealVar(0);
    let y = RealVar(1);
    let form = LinExpr::var(x) + LinExpr::var(y);
    let s = simplex.var_for_form(&form);
    let sx = simplex.solver_var(x);
    let sy = simplex.solver_var(y);

    let a = sat.new_var(); // x+y ≤ 1
    sat.set_theory_var(a);
    simplex.register_atom(a, s, Rational::new(1, 1), false);
    let b = sat.new_var(); // x < 1 ; ¬b ⇒ x ≥ 1
    sat.set_theory_var(b);
    simplex.register_atom(b, sx, Rational::new(1, 1), true);
    let c = sat.new_var(); // y < 1 ; ¬c ⇒ y ≥ 1
    sat.set_theory_var(c);
    simplex.register_atom(c, sy, Rational::new(1, 1), true);

    sat.add_clause(vec![Lit::positive(a)]);
    sat.add_clause(vec![Lit::negative(b)]);
    sat.add_clause(vec![Lit::negative(c)]);
    assert_eq!(sat.solve(&mut simplex), SatOutcome::Unsat);
}

#[test]
fn sat_case_with_slack_and_choice() {
    let mut simplex = Simplex::new();
    let mut sat = CdclSolver::new();
    let x = RealVar(0);
    let y = RealVar(1);
    let form = LinExpr::var(x) + LinExpr::var(y);
    let s = simplex.var_for_form(&form);
    let sx = simplex.solver_var(x);

    let a = sat.new_var(); // x+y ≤ 1
    sat.set_theory_var(a);
    simplex.register_atom(a, s, Rational::new(1, 1), false);
    let b = sat.new_var(); // x ≤ -5
    sat.set_theory_var(b);
    simplex.register_atom(b, sx, Rational::new(-5, 1), false);
    // Either x+y ≤ 1 or x ≤ -5 must hold; both is fine too.
    sat.add_clause(vec![Lit::positive(a), Lit::positive(b)]);
    assert_eq!(sat.solve(&mut simplex), SatOutcome::Sat);
    let model = simplex.concrete_model();
    let xv = &model[0];
    let yv = &model[1];
    let asserted_a = sat.value(a) == LBool::True;
    let asserted_b = sat.value(b) == LBool::True;
    assert!(asserted_a || asserted_b);
    if asserted_a {
        assert!(&(xv + yv) <= &Rational::new(1, 1));
    }
    if asserted_b {
        assert!(xv <= &Rational::new(-5, 1));
    }
}

/// Dedup: the same linear form registered twice yields one slack.
#[test]
fn slack_deduplication() {
    let mut simplex = Simplex::new();
    let form = LinExpr::var(RealVar(0)) + LinExpr::var(RealVar(1));
    let s1 = simplex.var_for_form(&form);
    let s2 = simplex.var_for_form(&form.clone());
    assert_eq!(s1, s2);
    assert_eq!(simplex.num_rows(), 1);
}

/// Builds the `sum_constraint_via_slack` scenario on a solver in the
/// given mode and returns (outcome, pivots, bound_asserts, theory_checks).
fn run_sum_scenario(mode: SimplexMode, drop_one_lb: bool) -> (SatOutcome, u64, u64, u64) {
    let mut simplex = Simplex::with_mode(mode);
    let mut sat = CdclSolver::new();
    let x = RealVar(0);
    let y = RealVar(1);
    let form = LinExpr::var(x) + LinExpr::var(y);
    let s = simplex.var_for_form(&form);
    let sx = simplex.solver_var(x);
    let sy = simplex.solver_var(y);

    let a = sat.new_var(); // x+y ≤ 1
    sat.set_theory_var(a);
    simplex.register_atom(a, s, Rational::new(1, 1), false);
    let b = sat.new_var(); // x < 1 ; ¬b ⇒ x ≥ 1
    sat.set_theory_var(b);
    simplex.register_atom(b, sx, Rational::new(1, 1), true);
    let c = sat.new_var(); // y < 1 ; ¬c ⇒ y ≥ 1
    sat.set_theory_var(c);
    simplex.register_atom(c, sy, Rational::new(1, 1), true);

    sat.add_clause(vec![Lit::positive(a)]);
    sat.add_clause(vec![Lit::negative(b)]);
    if !drop_one_lb {
        sat.add_clause(vec![Lit::negative(c)]);
    }
    let outcome = sat.solve(&mut simplex);
    (outcome, simplex.pivots(), simplex.bound_asserts(), simplex.theory_checks())
}

/// The revised engine must replay the dense engine's trajectory exactly:
/// same verdicts and identical deterministic counters on both the unsat
/// and the sat variant of the slack scenario.
#[test]
fn revised_matches_dense_trajectory_on_slack_scenarios() {
    for drop_one_lb in [false, true] {
        let dense = run_sum_scenario(SimplexMode::Dense, drop_one_lb);
        let revised = run_sum_scenario(SimplexMode::Revised, drop_one_lb);
        assert_eq!(dense, revised, "drop_one_lb={drop_one_lb}");
    }
}

/// An exhausted budget interrupts the revised engine at its first poll
/// site (the basis factorization or the loop head) without poisoning the
/// warm core: clearing the budget and re-checking succeeds.
#[test]
fn revised_zero_budget_interrupts_and_core_stays_warm() {
    let mut simplex = Simplex::with_mode(SimplexMode::Revised);
    let form = LinExpr::var(RealVar(0)) + LinExpr::var(RealVar(1));
    let _ = simplex.var_for_form(&form);
    simplex.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
    assert_eq!(simplex.check(), TheoryResult::Interrupted);
    assert_eq!(simplex.pivots(), 0);
    simplex.set_budget(Budget::unlimited());
    assert_eq!(simplex.check(), TheoryResult::Ok);
}

/// Auto mode starts dense and stays dense below the row threshold.
#[test]
fn auto_mode_stays_dense_below_threshold() {
    let mut simplex = Simplex::new();
    assert_eq!(simplex.mode(), SimplexMode::Auto);
    let form = LinExpr::var(RealVar(0)) + LinExpr::var(RealVar(1));
    let _ = simplex.var_for_form(&form);
    assert_eq!(simplex.check(), TheoryResult::Ok);
    assert!(!simplex.is_revised());
}

#[test]
fn simplex_mode_parses_cli_spellings() {
    assert_eq!(SimplexMode::parse("auto"), Some(SimplexMode::Auto));
    assert_eq!(SimplexMode::parse("dense"), Some(SimplexMode::Dense));
    assert_eq!(SimplexMode::parse("revised"), Some(SimplexMode::Revised));
    assert_eq!(SimplexMode::parse("fancy"), None);
    assert_eq!(SimplexMode::Revised.as_str(), "revised");
}
