//! General simplex decision procedure for quantifier-free linear real
//! arithmetic (QF_LRA), in the style of Dutertre and de Moura (CAV'06).
//!
//! The solver maintains linear equalities over *solver variables* (problem
//! variables plus slack variables, one per distinct linear form), a pair of
//! optional bounds per variable, and a candidate assignment `β` of
//! [`DeltaRational`]s. Strict bounds are represented exactly with the
//! infinitesimal `δ` component. It plugs into the CDCL core through the
//! [`Theory`] trait: asserted atom literals become bound updates, and
//! `check` restores the bound invariants by pivoting, reporting minimal
//! conflicting bound sets as explanations.
//!
//! Pivoting uses Bland's rule (smallest-index selection for both leaving
//! and entering variables), which guarantees termination.
//!
//! # Backends
//!
//! Two interchangeable tableau engines implement the pivot mechanics behind
//! the one public [`Simplex`] API, selected by [`SimplexMode`]:
//!
//! * [`SimplexMode::Dense`] — the eager tableau ([`dense`]): every row is
//!   kept substituted at all times, pivots rewrite the whole tableau. Cheap
//!   per-iteration bookkeeping, O(rows·cols) memory and O(n²) pivots; this
//!   is the original engine and stays in-tree as the equivalence oracle.
//! * [`SimplexMode::Revised`] — revised simplex on a factorized sparse
//!   basis ([`revised`]): the constraint rows stay in their original sparse
//!   form, the basis matrix is LU-factored (Markowitz-ordered, exact
//!   rational arithmetic) and each pivot appends a product-form eta vector,
//!   with FTRAN/BTRAN solves materializing only the single tableau row and
//!   column a pivot needs.
//!
//! Both backends follow the *identical* abstract trajectory — the same
//! Bland's-rule pivot sequence over the same mathematical tableau, in exact
//! arithmetic — so verdicts, models, conflict explanations and the
//! deterministic counters (`pivots`, `bound_asserts`, `theory_checks`) are
//! bit-for-bit equal across backends; only wall-clock observability (and
//! the `refactorizations` counter, which is zero for the dense engine)
//! differs. [`SimplexMode::Auto`] starts dense and upgrades to revised when
//! the row count crosses [`REVISED_AUTO_THRESHOLD`].

mod dense;
mod revised;

use crate::budget::Budget;
use crate::certify::{AtomSemantics, TheoryContext};
use crate::expr::{LinExpr, RealVar};
use crate::rational::{DeltaRational, Rational};
use crate::sat::proof::FarkasCertificate;
use crate::sat::{Lit, SatVar, Theory, TheoryResult};
use dense::DenseCore;
use revised::RevisedCore;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Internal solver-variable index (problem variables and slacks).
pub(crate) type SVar = usize;

/// Which tableau engine a [`Simplex`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplexMode {
    /// Start dense, upgrade to revised when the row count reaches
    /// [`REVISED_AUTO_THRESHOLD`]. The default.
    #[default]
    Auto,
    /// Always the dense eager tableau (the equivalence oracle).
    Dense,
    /// Always the revised simplex on a factorized sparse basis.
    Revised,
}

impl SimplexMode {
    /// Parses the CLI spelling (`auto`, `dense`, `revised`).
    pub fn parse(s: &str) -> Option<SimplexMode> {
        match s {
            "auto" => Some(SimplexMode::Auto),
            "dense" => Some(SimplexMode::Dense),
            "revised" => Some(SimplexMode::Revised),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SimplexMode::Auto => "auto",
            SimplexMode::Dense => "dense",
            SimplexMode::Revised => "revised",
        }
    }
}

impl std::fmt::Display for SimplexMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Row-count threshold at which [`SimplexMode::Auto`] switches from the
/// dense tableau to the revised engine: below it the dense engine's lower
/// constant factors win, above it the O(n²) pivot cost does.
pub const REVISED_AUTO_THRESHOLD: usize = 256;

/// Which side of a variable a bound constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundKind {
    Lower,
    Upper,
}

/// A bound imposed by an asserted literal.
#[derive(Debug, Clone)]
pub(crate) struct Bound {
    pub(crate) value: DeltaRational,
    /// The literal whose assertion installed this bound (explanation term).
    pub(crate) lit: Lit,
}

/// Undo record for one bound overwrite.
#[derive(Debug, Clone)]
struct Undo {
    var: SVar,
    kind: BoundKind,
    previous: Option<Bound>,
}

/// How an atom constrains its variable when its SAT literal is *true*.
///
/// The positive phase is always an upper bound `var ≤ value` (strict or
/// not); the negative phase is the complementary lower bound. Lower-bound
/// atoms from the input are normalized into this form by flipping polarity
/// at registration time.
#[derive(Debug, Clone)]
struct AtomBinding {
    var: SVar,
    bound: Rational,
    strict: bool,
}

/// Internal instrumentation; see [`Simplex::debug_timers`].
#[derive(Debug, Default, Clone)]
pub struct DebugTimers {
    /// Time spent repairing nonbasic assignments.
    pub repair: std::time::Duration,
    /// Time spent scanning for violations/entering variables.
    pub scan: std::time::Duration,
    /// Time spent pivoting.
    pub pivot: std::time::Duration,
    /// Time spent in basis refactorizations (revised engine only; always
    /// zero for the dense tableau, which never factors).
    pub factor: std::time::Duration,
    /// Number of outer check iterations.
    pub iterations: u64,
}

/// Backend-independent solver state: the candidate assignment, bounds,
/// original constraint rows, atom bindings and counters. Both tableau
/// engines operate on this through a mutable borrow, keeping the abstract
/// Dutertre–de Moura state in exactly one place.
#[derive(Debug, Default, Clone)]
pub(crate) struct Shared {
    /// `β`: the candidate assignment.
    pub(crate) assignment: Vec<DeltaRational>,
    pub(crate) lower: Vec<Option<Bound>>,
    pub(crate) upper: Vec<Option<Bound>>,
    /// Original constraint rows, append-only and never rewritten:
    /// `forms[r]` holds the problem-variable expansion of slack `r`, i.e.
    /// `slack_of_row[r] = Σ coeff·var`.
    pub(crate) forms: Vec<Vec<(SVar, Rational)>>,
    /// Defining slack variable of each form row.
    pub(crate) slack_of_row: Vec<SVar>,
    /// Inverse of `slack_of_row`: `row_of_slack[v] = Some(r)` iff solver
    /// variable `v` is the slack defined by form row `r`.
    pub(crate) row_of_slack: Vec<Option<usize>>,
    /// `form_cols[v]`: form rows whose expansion mentions problem var `v`
    /// (the sparse column structure of the constraint matrix).
    pub(crate) form_cols: Vec<Vec<usize>>,
    /// Map from SAT atom variable to its bound semantics.
    atoms: HashMap<SatVar, AtomBinding>,
    /// Map from problem [`RealVar`] index to solver variable.
    real_vars: Vec<SVar>,
    /// Dedup of slack variables by normalized linear form.
    slack_by_form: HashMap<Vec<(SVar, Rational)>, SVar>,
    /// Per-decision-level undo stacks.
    trail: Vec<Vec<Undo>>,
    /// Number of pivots performed (statistics).
    pub(crate) pivots: u64,
    /// Number of bound assertions received from the SAT core (statistics).
    pub(crate) bound_asserts: u64,
    /// Number of full consistency checks run (statistics).
    pub(crate) theory_checks: u64,
    /// Number of basis refactorizations (revised engine only; the dense
    /// tableau never factors). Observational — kept out of the
    /// deterministic phase metrics because it differs across backends.
    pub(crate) refactorizations: u64,
    /// Farkas certificate for the most recent conflict, consumed by proof
    /// logging through [`Theory::take_certificate`].
    pub(crate) last_certificate: Option<FarkasCertificate>,
    /// Deadline / cancellation budget polled in the pivot loop.
    pub(crate) budget: Budget,
    /// Populate [`Simplex::debug_timers`] even without `STA_SMT_DEBUG`
    /// (turned on by the span profiler, which attaches the accumulated
    /// simplex self-time as a leaf under the search span).
    pub(crate) timing_enabled: bool,
    /// Debug accounting (populated when `STA_SMT_DEBUG` is set or timing
    /// was enabled by a profiler): time in nonbasic repair, in the
    /// violation/entering scans, and in pivoting, plus scan-iteration
    /// count.
    pub(crate) debug_timers: DebugTimers,
}

impl Shared {
    fn new_svar(&mut self) -> SVar {
        let v = self.assignment.len();
        self.assignment.push(DeltaRational::zero());
        self.lower.push(None);
        self.upper.push(None);
        self.row_of_slack.push(None);
        self.form_cols.push(Vec::new());
        v
    }

    /// True when `STA_SMT_DEBUG` or the profiler asked for phase timers.
    pub(crate) fn debug_timing(&self) -> bool {
        self.timing_enabled || std::env::var_os("STA_SMT_DEBUG").is_some()
    }
}

/// The tableau engine behind a [`Simplex`].
#[derive(Debug, Clone)]
enum Backend {
    Dense(DenseCore),
    Revised(RevisedCore),
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Dense(DenseCore::default())
    }
}

/// The simplex LRA theory solver.
///
/// Create one, register slack definitions and atoms while encoding the
/// formula, then hand it to [`crate::sat::CdclSolver::solve`].
///
/// `Clone` supports the template-and-clone incremental scheme of
/// [`crate::Solver`]: a tableau built during encoding (but never solved)
/// clones cheaply, and each clone is solved independently. Cloning a warm
/// solver also clones its basis factorization and eta chain, so warm
/// starts carry over to the revised engine unchanged.
#[derive(Debug, Default, Clone)]
pub struct Simplex {
    shared: Shared,
    backend: Backend,
    mode: SimplexMode,
}

impl Simplex {
    /// Creates an empty theory solver in [`SimplexMode::Auto`].
    pub fn new() -> Self {
        Simplex::default()
    }

    /// Creates an empty theory solver pinned to the given engine.
    pub fn with_mode(mode: SimplexMode) -> Self {
        let backend = match mode {
            SimplexMode::Auto | SimplexMode::Dense => Backend::Dense(DenseCore::default()),
            SimplexMode::Revised => Backend::Revised(RevisedCore::default()),
        };
        Simplex { shared: Shared::default(), backend, mode }
    }

    /// The engine-selection mode this solver was created with.
    pub fn mode(&self) -> SimplexMode {
        self.mode
    }

    /// True when the *current* engine is the revised one (an `Auto` solver
    /// reports `false` until it upgrades).
    pub fn is_revised(&self) -> bool {
        matches!(self.backend, Backend::Revised(_))
    }

    /// Number of solver variables (problem + slack).
    pub fn num_vars(&self) -> usize {
        self.shared.assignment.len()
    }

    /// Number of constraint rows (slack definitions).
    pub fn num_rows(&self) -> usize {
        self.shared.forms.len()
    }

    /// Actual stored nonzeros of the active engine (memory statistic):
    /// tableau entries for the dense engine; constraint + LU factor + eta
    /// entries for the revised one.
    pub fn tableau_entries(&self) -> usize {
        match &self.backend {
            Backend::Dense(d) => d.tableau_entries(),
            Backend::Revised(r) => {
                let forms: usize = self.shared.forms.iter().map(|f| f.len()).sum();
                forms + r.factor_entries()
            }
        }
    }

    /// Number of pivot operations performed so far.
    pub fn pivots(&self) -> u64 {
        self.shared.pivots
    }

    /// Number of bound assertions received from the SAT core so far.
    pub fn bound_asserts(&self) -> u64 {
        self.shared.bound_asserts
    }

    /// Number of full consistency checks run so far.
    pub fn theory_checks(&self) -> u64 {
        self.shared.theory_checks
    }

    /// Number of basis refactorizations performed so far (always zero for
    /// the dense engine).
    pub fn refactorizations(&self) -> u64 {
        self.shared.refactorizations
    }

    /// Installs the budget polled by the pivot loop and the factorization
    /// and solve kernels. An exhausted budget makes [`Theory::check`]
    /// return [`TheoryResult::Interrupted`], which the SAT core converts
    /// into an `Unknown` outcome.
    pub fn set_budget(&mut self, budget: Budget) {
        self.shared.budget = budget;
    }

    /// Turns on [`Simplex::debug_timers`] accounting unconditionally
    /// (instead of only under `STA_SMT_DEBUG`). The per-phase `Instant`
    /// reads cost a few percent on pivot-heavy instances, so this stays
    /// opt-in with the profiler.
    pub fn enable_timing(&mut self) {
        self.shared.timing_enabled = true;
    }

    /// The accumulated per-phase debug timers (see [`DebugTimers`]).
    pub fn debug_timers(&self) -> &DebugTimers {
        &self.shared.debug_timers
    }

    /// Ensures problem variable `rv` has a solver variable; returns it.
    pub fn solver_var(&mut self, rv: RealVar) -> SVar {
        let idx = rv.0 as usize;
        // analysis: no-poll(grows the variable table up to a fixed index)
        while self.shared.real_vars.len() <= idx {
            let sv = self.shared.new_svar();
            self.shared.real_vars.push(sv);
        }
        self.shared.real_vars[idx]
    }

    /// Returns the solver variable representing the variable part of `expr`
    /// (the constant term is ignored — callers fold it into bounds).
    ///
    /// Single-variable forms with unit coefficient map to the problem
    /// variable directly; anything else gets a (deduplicated) slack variable
    /// defined by a constraint row.
    pub fn var_for_form(&mut self, expr: &LinExpr) -> SVar {
        debug_assert!(!expr.is_constant(), "constant atoms fold in Formula::cmp");
        if expr.len() == 1 {
            if let Some((v, c)) = expr.iter().next() {
                if *c == Rational::one() {
                    return self.solver_var(v);
                }
            }
        }
        let form: Vec<(SVar, Rational)> = {
            let pairs: Vec<(RealVar, Rational)> =
                expr.iter().map(|(v, c)| (v, c.clone())).collect();
            pairs
                .into_iter()
                .map(|(v, c)| (self.solver_var(v), c))
                .collect()
        };
        if let Some(&s) = self.shared.slack_by_form.get(&form) {
            return s;
        }
        // The revised engine defers basic-variable assignment updates; any
        // backlog must land before a new row's slack value is derived from
        // basic β entries.
        if let Backend::Revised(r) = &mut self.backend {
            r.settle_assignment(&mut self.shared);
        }
        let s = self.shared.new_svar();
        let ridx = self.shared.forms.len();
        // β[s] must satisfy the new row under the current assignment.
        let val = form.iter().fold(DeltaRational::zero(), |acc, (v, c)| {
            &acc + &self.shared.assignment[*v].scale(c)
        });
        self.shared.assignment[s] = val;
        for (v, _) in &form {
            self.shared.form_cols[*v].push(ridx);
        }
        self.shared.forms.push(form.clone());
        self.shared.slack_of_row.push(s);
        self.shared.row_of_slack[s] = Some(ridx);
        self.shared.slack_by_form.insert(form, s);
        match &mut self.backend {
            Backend::Dense(d) => d.add_row(&mut self.shared, ridx),
            Backend::Revised(r) => r.add_row(&self.shared, ridx),
        }
        s
    }

    /// Registers a SAT atom variable: when `sat_var` is assigned true the
    /// constraint `var ≤ bound` (strict if `strict`) holds; when false, the
    /// complementary lower bound holds.
    pub fn register_atom(&mut self, sat_var: SatVar, var: SVar, bound: Rational, strict: bool) {
        self.shared.atoms.insert(sat_var, AtomBinding { var, bound, strict });
    }

    /// The current value of problem variable `rv`, if it has been seen.
    pub fn value_of(&self, rv: RealVar) -> Option<&DeltaRational> {
        self.shared
            .real_vars
            .get(rv.0 as usize)
            .map(|&sv| &self.shared.assignment[sv])
    }

    /// Computes a positive `ε` small enough that substituting it for `δ`
    /// keeps every asserted bound satisfied, then returns the concretized
    /// rational value of every problem variable.
    ///
    /// Call only after a successful solve (all bounds satisfied by `β`).
    pub fn concrete_model(&self) -> Vec<Rational> {
        let mut eps = Rational::one();
        let mut shrink = |gap_real: &Rational, gap_delta: &Rational| {
            // Constraint satisfied in delta order: gap_real + gap_delta·δ ≥ 0
            // with (gap_real, gap_delta) ≥lex 0. If gap_real > 0 but
            // gap_delta < 0, ε must stay ≤ gap_real / (−gap_delta).
            if gap_real.is_positive() && gap_delta.is_negative() {
                let limit = gap_real / &(-gap_delta);
                if limit < eps {
                    eps = limit;
                }
            }
        };
        for v in 0..self.shared.assignment.len() {
            let beta = &self.shared.assignment[v];
            if let Some(lb) = &self.shared.lower[v] {
                let gap = beta - &lb.value;
                shrink(&gap.value, &gap.delta);
            }
            if let Some(ub) = &self.shared.upper[v] {
                let gap = &ub.value - beta;
                shrink(&gap.value, &gap.delta);
            }
        }
        let half = &eps * &Rational::new(1, 2);
        self.shared
            .real_vars
            .iter()
            .map(|&sv| self.shared.assignment[sv].concretize(&half))
            .collect()
    }

    /// Exports the atom semantics needed to check Farkas certificates
    /// independently of the tableau: each registered SAT atom resolved to
    /// its bound and to the expansion of its solver variable over the
    /// *problem* variables (slack forms are recorded at creation time over
    /// problem variables only, so no tableau state is consulted).
    pub fn certificate_context(&self) -> TheoryContext {
        // Inverse of `real_vars`: solver variable → problem variable.
        let mut problem_var: HashMap<SVar, RealVar> = HashMap::new();
        for (i, &sv) in self.shared.real_vars.iter().enumerate() {
            problem_var.insert(sv, RealVar(i as u32));
        }
        // Slack expansions, mapped back into problem-variable space.
        let mut expansion: HashMap<SVar, Vec<(RealVar, Rational)>> = HashMap::new();
        for (form, &s) in &self.shared.slack_by_form {
            let terms = form
                .iter()
                .filter_map(|(sv, c)| {
                    problem_var.get(sv).map(|&rv| (rv, c.clone()))
                })
                .collect();
            expansion.insert(s, terms);
        }
        let mut atoms = HashMap::new();
        for (&sat_var, binding) in &self.shared.atoms {
            let terms = match problem_var.get(&binding.var) {
                Some(&rv) => vec![(rv, Rational::one())],
                None => expansion.get(&binding.var).cloned().unwrap_or_default(),
            };
            atoms.insert(
                sat_var,
                AtomSemantics {
                    expansion: terms,
                    bound: binding.bound.clone(),
                    strict: binding.strict,
                },
            );
        }
        TheoryContext { atoms }
    }

    fn assert_bound(
        &mut self,
        var: SVar,
        kind: BoundKind,
        value: DeltaRational,
        lit: Lit,
    ) -> TheoryResult {
        let sh = &mut self.shared;
        sh.bound_asserts += 1;
        match kind {
            BoundKind::Upper => {
                if let Some(ub) = &sh.upper[var] {
                    if value >= ub.value {
                        return TheoryResult::Ok; // not tighter
                    }
                }
                if let Some(lb) = &sh.lower[var] {
                    if value < lb.value {
                        let other = lb.lit;
                        sh.last_certificate = Some(FarkasCertificate {
                            terms: vec![(lit, Rational::one()), (other, Rational::one())],
                        });
                        return TheoryResult::Conflict(vec![lit, other]);
                    }
                }
                self.record_undo(var, BoundKind::Upper);
                self.shared.upper[var] = Some(Bound { value: value.clone(), lit });
                if !self.is_basic(var) && self.shared.assignment[var] > value {
                    self.update_nonbasic(var, value);
                }
            }
            BoundKind::Lower => {
                if let Some(lb) = &sh.lower[var] {
                    if value <= lb.value {
                        return TheoryResult::Ok;
                    }
                }
                if let Some(ub) = &sh.upper[var] {
                    if value > ub.value {
                        let other = ub.lit;
                        sh.last_certificate = Some(FarkasCertificate {
                            terms: vec![(lit, Rational::one()), (other, Rational::one())],
                        });
                        return TheoryResult::Conflict(vec![lit, other]);
                    }
                }
                self.record_undo(var, BoundKind::Lower);
                self.shared.lower[var] = Some(Bound { value: value.clone(), lit });
                if !self.is_basic(var) && self.shared.assignment[var] < value {
                    self.update_nonbasic(var, value);
                }
            }
        }
        TheoryResult::Ok
    }

    fn is_basic(&self, var: SVar) -> bool {
        match &self.backend {
            Backend::Dense(d) => d.is_basic(var),
            Backend::Revised(r) => r.is_basic(var),
        }
    }

    fn update_nonbasic(&mut self, var: SVar, value: DeltaRational) {
        match &mut self.backend {
            Backend::Dense(d) => d.update_nonbasic(&mut self.shared, var, value),
            Backend::Revised(r) => r.update_nonbasic(&mut self.shared, var, value),
        }
    }

    fn record_undo(&mut self, var: SVar, kind: BoundKind) {
        let previous = match kind {
            BoundKind::Lower => self.shared.lower[var].clone(),
            BoundKind::Upper => self.shared.upper[var].clone(),
        };
        if let Some(level) = self.shared.trail.last_mut() {
            level.push(Undo { var, kind, previous });
        }
        // At root level (empty trail) bounds are permanent.
    }

    fn check_internal(&mut self) -> TheoryResult {
        // Auto mode upgrades dense → revised at a check boundary once the
        // row count justifies factorized pivoting. The upgrade reuses the
        // abstract state (basis + assignment) verbatim, so the trajectory
        // is exactly what a from-scratch revised run would produce.
        if self.mode == SimplexMode::Auto {
            if let Backend::Dense(d) = &self.backend {
                if self.shared.forms.len() >= REVISED_AUTO_THRESHOLD {
                    self.backend = Backend::Revised(RevisedCore::from_basis(d.basic_vars()));
                }
            }
        }
        match &mut self.backend {
            Backend::Dense(d) => d.check(&mut self.shared),
            Backend::Revised(r) => r.check(&mut self.shared),
        }
    }
}

/// Finds the leaving candidate: the smallest-index basic variable violating
/// one of its bounds, given `(position, var)` pairs in position order.
/// Returns the position, the variable, whether it sits below its lower
/// bound, and the bound value to restore it to.
pub(crate) fn find_violation(
    sh: &Shared,
    basics: impl Iterator<Item = (usize, SVar)>,
) -> Option<(usize, SVar, bool, DeltaRational)> {
    let mut violation: Option<(usize, SVar, bool)> = None;
    for (pos, b) in basics {
        let below = matches!(&sh.lower[b], Some(lb) if sh.assignment[b] < lb.value);
        let above = matches!(&sh.upper[b], Some(ub) if sh.assignment[b] > ub.value);
        if below || above {
            match violation {
                Some((_, bv, _)) if bv <= b => {}
                _ => violation = Some((pos, b, below)),
            }
        }
    }
    let (pos, xb, below) = violation?;
    let target = if below { &sh.lower[xb] } else { &sh.upper[xb] };
    target.as_ref().map(|bound| (pos, xb, below, bound.value.clone()))
}

/// Bland's entering rule: the smallest-index nonbasic variable in the
/// leaving row that can move the basic variable toward its violated bound.
/// `row` supplies the tableau row's `(var, coeff)` entries in ascending
/// variable order.
pub(crate) fn select_entering<'a>(
    sh: &Shared,
    row: impl Iterator<Item = (SVar, &'a Rational)>,
    below: bool,
) -> Option<SVar> {
    let mut entering: Option<SVar> = None;
    for (xn, c) in row {
        let can_increase = match &sh.upper[xn] {
            Some(ub) => sh.assignment[xn] < ub.value,
            None => true,
        };
        let can_decrease = match &sh.lower[xn] {
            Some(lb) => sh.assignment[xn] > lb.value,
            None => true,
        };
        let usable = if below {
            // Need to raise xb.
            (c.is_positive() && can_increase) || (c.is_negative() && can_decrease)
        } else {
            // Need to lower xb.
            (c.is_positive() && can_decrease) || (c.is_negative() && can_increase)
        };
        if usable {
            match entering {
                Some(e) if e <= xn => {}
                _ => entering = Some(xn),
            }
        }
    }
    entering
}

/// Builds the conflict for an infeasible row: the explanation is the
/// violated bound of `xb` plus the blocking bound of every nonbasic in the
/// row. The same walk yields the Farkas certificate: λ = 1 on the violated
/// bound and λ = |c| on each blocking bound — the row identity
/// `xb = Σ c·xn` makes the weighted linear forms cancel while the weighted
/// bound values sum to a negative delta-rational.
pub(crate) fn conflict_from_row<'a>(
    sh: &mut Shared,
    row: impl Iterator<Item = (SVar, &'a Rational)>,
    xb: SVar,
    below: bool,
) -> TheoryResult {
    let mut expl = Vec::new();
    let mut terms = Vec::new();
    let violated = if below { &sh.lower[xb] } else { &sh.upper[xb] };
    debug_assert!(violated.is_some(), "violated bound exists");
    if let Some(bv) = violated {
        expl.push(bv.lit);
        terms.push((bv.lit, Rational::one()));
    }
    for (xn, c) in row {
        // Raising xb is blocked by the upper bound of positive-coefficient
        // vars and the lower bound of negative ones; mirrored when xb must
        // drop.
        let blocking = if below == c.is_positive() {
            &sh.upper[xn]
        } else {
            &sh.lower[xn]
        };
        debug_assert!(blocking.is_some(), "entering scan saw a bound");
        if let Some(bb) = blocking {
            expl.push(bb.lit);
            terms.push((bb.lit, c.abs()));
        }
    }
    sh.last_certificate = Some(FarkasCertificate { terms });
    expl.sort_unstable();
    expl.dedup();
    TheoryResult::Conflict(expl)
}

/// Audits the backend-independent invariants: every original constraint
/// row holds under `β`, bounds are delta-sane and uncrossed, and every
/// nonbasic variable sits within its bounds. Compiled only under the
/// `certify-debug` feature and called at pivot boundaries, where the
/// invariants must all hold.
///
/// # Panics
/// Panics on the first violated invariant — an audit failure is a solver
/// bug, never an input error.
#[cfg(feature = "certify-debug")]
pub(crate) fn audit_shared_invariants(sh: &Shared, is_basic: &dyn Fn(SVar) -> bool) {
    for (r, form) in sh.forms.iter().enumerate() {
        let s = sh.slack_of_row[r];
        let rhs = form.iter().fold(DeltaRational::zero(), |acc, (v, c)| {
            &acc + &sh.assignment[*v].scale(c)
        });
        assert!(sh.assignment[s] == rhs, "form row {r} violated: β[{s}] ≠ Σ c·β");
    }
    for v in 0..sh.assignment.len() {
        // Bound sanity in delta-rational order, and the strict-bound
        // representation convention: upper bounds carry δ ≤ 0, lower
        // bounds δ ≥ 0.
        if let Some(ub) = &sh.upper[v] {
            assert!(!ub.value.delta.is_positive(), "upper bound with +δ");
        }
        if let Some(lb) = &sh.lower[v] {
            assert!(!lb.value.delta.is_negative(), "lower bound with -δ");
        }
        if let (Some(lb), Some(ub)) = (&sh.lower[v], &sh.upper[v]) {
            assert!(lb.value <= ub.value, "crossed bounds on var {v}");
        }
        if !is_basic(v) {
            if let Some(lb) = &sh.lower[v] {
                assert!(sh.assignment[v] >= lb.value, "nonbasic {v} below lb");
            }
            if let Some(ub) = &sh.upper[v] {
                assert!(sh.assignment[v] <= ub.value, "nonbasic {v} above ub");
            }
        }
    }
}

pub(crate) fn add_to_row(row: &mut BTreeMap<SVar, Rational>, v: SVar, c: &Rational) {
    if c.is_zero() {
        return;
    }
    let entry = row.entry(v).or_default();
    let sum = &*entry + c;
    if sum.is_zero() {
        row.remove(&v);
    } else {
        *entry = sum;
    }
}

impl Theory for Simplex {
    fn on_new_level(&mut self) {
        self.shared.trail.push(Vec::new());
    }

    fn pivot_count(&self) -> u64 {
        self.shared.pivots
    }

    fn on_backtrack(&mut self, n_levels: usize) {
        for _ in 0..n_levels {
            let undos = self.shared.trail.pop().expect("backtrack within pushed levels");
            for undo in undos.into_iter().rev() {
                match undo.kind {
                    BoundKind::Lower => self.shared.lower[undo.var] = undo.previous,
                    BoundKind::Upper => self.shared.upper[undo.var] = undo.previous,
                }
            }
        }
    }

    fn on_assert(&mut self, lit: Lit) -> TheoryResult {
        let Some(binding) = self.shared.atoms.get(&lit.var()) else {
            return TheoryResult::Ok;
        };
        let AtomBinding { var, bound, strict } = binding.clone();
        if lit.is_positive() {
            // var ≤ bound (− δ if strict)
            let value = if strict {
                DeltaRational::with_delta(bound, Rational::new(-1, 1))
            } else {
                DeltaRational::real(bound)
            };
            self.assert_bound(var, BoundKind::Upper, value, lit)
        } else {
            // ¬(var ≤ bound) ⇔ var > bound; ¬(var < bound) ⇔ var ≥ bound.
            let value = if strict {
                DeltaRational::real(bound)
            } else {
                DeltaRational::with_delta(bound, Rational::one())
            };
            self.assert_bound(var, BoundKind::Lower, value, lit)
        }
    }

    fn check(&mut self) -> TheoryResult {
        self.check_internal()
    }

    fn take_certificate(&mut self) -> Option<FarkasCertificate> {
        self.shared.last_certificate.take()
    }
}

#[cfg(test)]
mod tests;
