//! The revised simplex engine: pivots against a factorized sparse basis
//! instead of an eagerly substituted tableau.
//!
//! The constraint system is `A·x = 0` where each form row `r` contributes
//! `Σ c·x_v − s_r = 0`: problem-variable columns carry the form
//! coefficients, the slack column of row `r` is `−e_r`. The engine keeps
//! the basis header (`basis[pos]` = variable basic at position `pos`,
//! position ≡ constraint row) and a [`FactorizedBasis`]: a Markowitz-ordered
//! sparse LU of `A_B` plus a product-form eta chain, one eta per pivot
//! (Forrest–Tomlin-style bookkeeping). A pivot needs exactly one BTRAN (the
//! leaving row of the tableau, `row = −yᵀA_N` with `y = A_B⁻ᵀe_pos`) and
//! one FTRAN (the entering column `d = A_B⁻¹A_e`), then replaces a basis
//! column in O(|d|). The chain is dropped and the basis refactorized when
//! it outgrows [`RevisedCore::needs_refactor`]'s thresholds.
//!
//! All arithmetic is exact [`Rational`]/[`DeltaRational`], so the engine
//! reproduces the dense tableau's Bland's-rule trajectory bit-for-bit:
//! materialized rows have identical nonzero sets (exact zeros cancel and
//! are dropped) and identical coefficients, hence identical leaving/entering
//! picks, pivot counts, conflicts and Farkas certificates.
//!
//! Nonbasic assignment updates are *deferred*: `update_nonbasic` moves the
//! nonbasic value immediately but queues the basic-variable compensation,
//! which [`RevisedCore::settle_assignment`] later applies with a single
//! FTRAN of the accumulated column combination. Deferral is invisible to
//! the trajectory because the compensation map is linear and the basic
//! values are only read inside `check`, after the flush.
//!
//! Interrupt safety: factorizations build into a fresh object and solves
//! work on scratch vectors, so an exhausted budget at any poll site
//! (factor, FTRAN/BTRAN, eta application, or the pivot loop itself) leaves
//! the warm core consistent — pending updates stay queued and the next
//! check resumes where this one stopped.

use super::{
    add_to_row, conflict_from_row, find_violation, select_entering, SVar, Shared,
};
use crate::rational::{DeltaRational, Rational};
use crate::sat::TheoryResult;
use sta_linalg::{FactorizedBasis, LuError, SparseLu};
use std::collections::BTreeMap;

/// Basis bookkeeping owned by the revised engine. The abstract solver
/// state (assignment, bounds, forms, counters) lives in [`Shared`].
#[derive(Debug, Default, Clone)]
pub(crate) struct RevisedCore {
    /// `basis[pos]`: variable basic at position `pos` (≡ constraint row).
    basis: Vec<SVar>,
    /// Inverse of `basis`: `pos_of[v] = Some(pos)` iff `v` is basic.
    pos_of: Vec<Option<usize>>,
    /// LU factors + eta chain of the current basis; `None` before the
    /// first factorization.
    factor: Option<FactorizedBasis<Rational>>,
    /// Rows were appended since the factorization was built (the basis
    /// grew, so the factors have the wrong dimension).
    stale: bool,
    /// Deferred basic-variable compensation: `(var, Δ)` per nonbasic move
    /// not yet propagated through the basis.
    pending: Vec<(SVar, DeltaRational)>,
}

/// Maps a kernel failure at a check boundary: budget interrupts surface as
/// [`TheoryResult::Interrupted`]; a singular basis is impossible for the
/// bases this engine constructs (it starts from the nonsingular slack
/// basis `−I` and every replacement column has a nonzero pivot entry), so
/// it is a solver bug, never an input error.
fn fail(e: LuError) -> TheoryResult {
    match e {
        LuError::Interrupted => TheoryResult::Interrupted,
        LuError::Singular => panic!("revised simplex: singular basis (solver invariant violated)"),
    }
}

impl RevisedCore {
    /// Seeds a revised core from an existing basis header (the Auto-mode
    /// upgrade path: the dense engine's rows are discarded, its basis and
    /// the shared assignment carry over verbatim).
    pub(crate) fn from_basis(basic: &[SVar]) -> RevisedCore {
        let mut core = RevisedCore { basis: basic.to_vec(), stale: true, ..Default::default() };
        for (pos, &v) in basic.iter().enumerate() {
            if core.pos_of.len() <= v {
                core.pos_of.resize(v + 1, None);
            }
            core.pos_of[v] = Some(pos);
        }
        core
    }

    /// Grows the per-variable tables to cover `n` solver variables.
    fn ensure_vars(&mut self, n: usize) {
        if self.pos_of.len() < n {
            self.pos_of.resize(n, None);
        }
    }

    /// Stored entries of the LU factors plus the eta chain (memory
    /// statistic; the constraint rows themselves are counted by the
    /// caller from `Shared::forms`).
    pub(crate) fn factor_entries(&self) -> usize {
        self.factor
            .as_ref()
            .map_or(0, |f| f.lu_nnz() + f.eta_nnz())
    }

    pub(crate) fn is_basic(&self, var: SVar) -> bool {
        self.pos_of.get(var).is_some_and(|p| p.is_some())
    }

    /// Installs form row `ridx` (already appended to `sh.forms`): its slack
    /// enters the basis at the new position and the factorization becomes
    /// stale (wrong dimension) until the next refactorization.
    pub(crate) fn add_row(&mut self, sh: &Shared, ridx: usize) {
        self.ensure_vars(sh.assignment.len());
        let s = sh.slack_of_row[ridx];
        debug_assert_eq!(ridx, self.basis.len(), "basis positions follow form order");
        self.pos_of[s] = Some(ridx);
        self.basis.push(s);
        self.stale = true;
    }

    /// Sets nonbasic `var` to `value`. The basic-variable compensation is
    /// queued, not applied: callers outside `check` never read basic `β`
    /// values, and `check` flushes the queue before its first scan.
    pub(crate) fn update_nonbasic(&mut self, sh: &mut Shared, var: SVar, value: DeltaRational) {
        self.ensure_vars(sh.assignment.len());
        let diff = &value - &sh.assignment[var];
        sh.assignment[var] = value;
        if diff.is_zero() {
            return;
        }
        // Variables absent from the constraint matrix touch no basic var.
        if sh.row_of_slack[var].is_some() || !sh.form_cols[var].is_empty() {
            self.pending.push((var, diff));
        }
    }

    /// The constraint-matrix column of `var`, as sparse `(row, coeff)`
    /// entries in ascending row order: `−e_r` for the slack of row `r`,
    /// the form coefficients for a problem variable.
    fn column_of(&self, sh: &Shared, var: SVar) -> Vec<(usize, Rational)> {
        if let Some(r) = sh.row_of_slack[var] {
            return vec![(r, -&Rational::one())];
        }
        let mut col = Vec::with_capacity(sh.form_cols[var].len());
        for &r in &sh.form_cols[var] {
            for (v, c) in &sh.forms[r] {
                if *v == var {
                    col.push((r, c.clone()));
                    break;
                }
            }
        }
        col
    }

    /// Builds fresh LU factors of the current basis, dropping any eta
    /// chain. Interrupt-safe: the factorization builds into a fresh object
    /// and the old factors stay installed until it succeeds.
    fn refactor(
        &mut self,
        sh: &mut Shared,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<(), LuError> {
        let t0 = sh.debug_timing().then(std::time::Instant::now);
        let cols: Vec<Vec<(usize, Rational)>> =
            self.basis.iter().map(|&v| self.column_of(sh, v)).collect();
        let lu = SparseLu::factor(&cols, poll)?;
        self.factor = Some(FactorizedBasis::new(lu));
        self.stale = false;
        sh.refactorizations += 1;
        if let Some(t) = t0 {
            sh.debug_timers.factor += t.elapsed();
        }
        Ok(())
    }

    /// Eta-chain growth policy: refactorize once the chain is longer than
    /// `max(64, m/4)` etas or its fill exceeds `4·lu_nnz + m` entries —
    /// past that point replaying the chain costs more than a fresh
    /// Markowitz factorization of the (slack-dominated, near-triangular)
    /// basis.
    fn needs_refactor(&self) -> bool {
        let m = self.basis.len();
        match &self.factor {
            None => true,
            Some(f) => {
                self.stale
                    || f.eta_count() > 64.max(m / 4)
                    || f.eta_nnz() > 4 * f.lu_nnz() + m
            }
        }
    }

    /// Applies the deferred basic-variable compensation with one FTRAN:
    /// `Δβ_B = −A_B⁻¹·(Σ A_v·Δv)` keeps every constraint row satisfied.
    fn flush_pending(
        &mut self,
        sh: &mut Shared,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<(), LuError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let m = self.basis.len();
        let mut rhs: Vec<DeltaRational> = vec![DeltaRational::zero(); m];
        for (v, diff) in &self.pending {
            for (r, c) in self.column_of(sh, *v) {
                rhs[r] = &rhs[r] + &diff.scale(&c);
            }
        }
        let Some(factor) = self.factor.as_ref() else {
            return Err(LuError::Singular);
        };
        let d = factor.ftran(rhs, poll)?;
        for (k, dk) in d.iter().enumerate() {
            if dk.is_zero() {
                continue;
            }
            let b = self.basis[k];
            sh.assignment[b] = &sh.assignment[b] - dk;
        }
        self.pending.clear();
        Ok(())
    }

    /// Refactorizes if needed, then flushes deferred assignment updates.
    fn prepare(
        &mut self,
        sh: &mut Shared,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<(), LuError> {
        if self.needs_refactor() {
            self.refactor(sh, poll)?;
        }
        self.flush_pending(sh, poll)
    }

    /// Brings `β` fully up to date outside a check (called before a new
    /// row's slack value is derived from basic entries). Runs without a
    /// budget: row installation is part of encoding, which is not
    /// deadline-polled.
    pub(crate) fn settle_assignment(&mut self, sh: &mut Shared) {
        if self.pending.is_empty() {
            return;
        }
        if let Err(e) = self.prepare(sh, &mut || false) {
            // The poll never fires, so the only failure is a singular
            // basis; `fail` diverges on it.
            fail(e);
        }
    }

    /// Materializes tableau row `pos` (`x_b = Σ coeff·x_nonbasic`) with one
    /// BTRAN: `y = A_B⁻ᵀe_pos`, then the coefficient of nonbasic `v` is
    /// `−yᵀA_v` — `+y_r` for the slack of row `r`, `−Σ y_r·c` for a problem
    /// variable. Basic variables are skipped (their coefficients cancel to
    /// exact zero) and exact-zero sums are dropped, so the materialized row
    /// has the same entry set the dense engine stores.
    fn tableau_row(
        &self,
        sh: &Shared,
        pos: usize,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<BTreeMap<SVar, Rational>, LuError> {
        let m = self.basis.len();
        let mut e = vec![Rational::zero(); m];
        e[pos] = Rational::one();
        let Some(factor) = self.factor.as_ref() else {
            return Err(LuError::Singular);
        };
        let y = factor.btran(e, poll)?;
        let mut row = BTreeMap::new();
        for (r, yr) in y.iter().enumerate() {
            if yr.is_zero() {
                continue;
            }
            let s = sh.slack_of_row[r];
            if !self.is_basic(s) {
                add_to_row(&mut row, s, yr);
            }
            for (v, c) in &sh.forms[r] {
                if !self.is_basic(*v) {
                    add_to_row(&mut row, *v, &-&(yr * c));
                }
            }
        }
        Ok(row)
    }

    /// The revised `pivotAndUpdate`: one FTRAN for the entering column
    /// `d = A_B⁻¹A_e`, the β updates of the dense engine (tableau
    /// coefficient of `entering` in basis row `k` is `−d_k`), then an
    /// O(|d|) basis-column replacement appending one eta. The FTRAN is the
    /// only fallible step and precedes every mutation.
    fn pivot_and_update(
        &mut self,
        sh: &mut Shared,
        pos: usize,
        entering: SVar,
        target: DeltaRational,
        poll: &mut dyn FnMut() -> bool,
    ) -> Result<(), LuError> {
        let m = self.basis.len();
        let mut rhs: Vec<Rational> = vec![Rational::zero(); m];
        for (r, c) in self.column_of(sh, entering) {
            rhs[r] = c;
        }
        let Some(factor) = self.factor.as_mut() else {
            return Err(LuError::Singular);
        };
        let d = factor.ftran(rhs, poll)?;
        if d[pos].is_zero() {
            return Err(LuError::Singular);
        }
        sh.pivots += 1;
        let leaving = self.basis[pos];
        // Tableau coefficient of `entering` in the leaving row: a = −d[pos].
        let a = -&d[pos];
        // θ = (target − β[leaving]) / a
        let theta = (&target - &sh.assignment[leaving]).scale(&a.recip());
        sh.assignment[leaving] = target;
        sh.assignment[entering] = &sh.assignment[entering] + &theta;
        let mut sparse_d: Vec<(usize, Rational)> = Vec::new();
        for (k, dk) in d.into_iter().enumerate() {
            if dk.is_zero() {
                continue;
            }
            if k != pos {
                // Row k's coefficient of `entering` is −d_k.
                let b = self.basis[k];
                sh.assignment[b] = &sh.assignment[b] + &theta.scale(&-&dk);
            }
            sparse_d.push((k, dk));
        }
        factor.replace_column(pos, &sparse_d)?;
        self.pos_of[leaving] = None;
        self.pos_of[entering] = Some(pos);
        self.basis[pos] = entering;
        Ok(())
    }

    /// Restores every *nonbasic* variable to within its bounds (needed
    /// after backtracking, which rewinds bounds but not `β`).
    fn repair_nonbasic(&mut self, sh: &mut Shared) {
        for v in 0..sh.assignment.len() {
            if self.is_basic(v) {
                continue;
            }
            let lb = sh.lower[v].as_ref().map(|b| b.value.clone());
            let ub = sh.upper[v].as_ref().map(|b| b.value.clone());
            if let Some(l) = &lb {
                if sh.assignment[v] < *l {
                    self.update_nonbasic(sh, v, l.clone());
                    continue;
                }
            }
            if let Some(u) = &ub {
                if sh.assignment[v] > *u {
                    self.update_nonbasic(sh, v, u.clone());
                }
            }
        }
    }

    /// Audits the revised engine's invariants on top of the shared ones:
    /// `basis`/`pos_of` agree and no deferred updates are outstanding at a
    /// pivot boundary.
    #[cfg(feature = "certify-debug")]
    fn audit_invariants(&self, sh: &Shared) {
        assert!(self.pending.is_empty(), "audit with pending β updates");
        for (pos, &v) in self.basis.iter().enumerate() {
            assert_eq!(self.pos_of[v], Some(pos), "pos_of[{v}] inconsistent");
        }
        super::audit_shared_invariants(sh, &|v| self.is_basic(v));
    }

    /// The main `Check()` loop on the factorized basis: identical control
    /// flow to the dense engine, with the leaving row materialized by BTRAN
    /// on demand instead of read from a stored tableau.
    pub(crate) fn check(&mut self, sh: &mut Shared) -> TheoryResult {
        sh.theory_checks += 1;
        self.ensure_vars(sh.assignment.len());
        let debug = sh.debug_timing();
        let t0 = debug.then(std::time::Instant::now);
        self.repair_nonbasic(sh);
        if let Some(t) = t0 {
            sh.debug_timers.repair += t.elapsed();
        }
        // Kernel-level poll, threaded through factorization, FTRAN/BTRAN
        // and eta application so deep solves on large bases stay
        // interruptible between pivot boundaries.
        let kernel_budget = sh.budget.clone();
        let kernel_limited = kernel_budget.is_limited();
        let mut poll = move || kernel_limited && kernel_budget.exhausted().is_some();
        let prepared = self.prepare(sh, &mut poll);
        if let Err(e) = prepared {
            return fail(e);
        }
        #[cfg(feature = "certify-debug")]
        self.audit_invariants(sh);
        let limited = sh.budget.is_limited();
        let mut iters = 0u64;
        loop {
            // Pivot-boundary budget poll, mirroring the dense engine; the
            // first iteration checks so an already-expired deadline never
            // pivots at all.
            if limited && iters & 15 == 0 && sh.budget.exhausted().is_some() {
                return TheoryResult::Interrupted;
            }
            iters += 1;
            sh.debug_timers.iterations += 1;
            let t_scan = debug.then(std::time::Instant::now);
            let violation = find_violation(sh, self.basis.iter().copied().enumerate());
            let Some((pos, xb, below, target)) = violation else {
                if let Some(t) = t_scan {
                    sh.debug_timers.scan += t.elapsed();
                }
                return TheoryResult::Ok;
            };
            let row = match self.tableau_row(sh, pos, &mut poll) {
                Ok(row) => row,
                Err(e) => {
                    if let Some(t) = t_scan {
                        sh.debug_timers.scan += t.elapsed();
                    }
                    return fail(e);
                }
            };
            let entering = select_entering(sh, row.iter().map(|(&v, c)| (v, c)), below);
            if let Some(t) = t_scan {
                sh.debug_timers.scan += t.elapsed();
            }
            match entering {
                Some(xn) => {
                    let t_piv = debug.then(std::time::Instant::now);
                    let pivoted = self.pivot_and_update(sh, pos, xn, target, &mut poll);
                    if let Some(t) = t_piv {
                        sh.debug_timers.pivot += t.elapsed();
                    }
                    if let Err(e) = pivoted {
                        return fail(e);
                    }
                    if self.needs_refactor() {
                        if let Err(e) = self.refactor(sh, &mut poll) {
                            return fail(e);
                        }
                    }
                    #[cfg(feature = "certify-debug")]
                    self.audit_invariants(sh);
                }
                None => {
                    return conflict_from_row(
                        sh,
                        row.iter().map(|(&v, c)| (v, c)),
                        xb,
                        below,
                    );
                }
            }
        }
    }
}
