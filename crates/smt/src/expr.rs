//! Linear real-arithmetic expressions.
//!
//! A [`LinExpr`] is an affine combination `Σ cᵢ·xᵢ + k` of real theory
//! variables [`RealVar`] with exact [`Rational`] coefficients. It is the
//! left-hand side of every arithmetic atom handed to the solver.
//!
//! # Examples
//!
//! ```
//! use sta_smt::{LinExpr, RealVar};
//! use sta_smt::rational::Rational;
//!
//! let x = RealVar(0);
//! let y = RealVar(1);
//! let e = LinExpr::var(x) * Rational::new(2, 1) - LinExpr::var(y)
//!     + LinExpr::constant(Rational::new(1, 2));
//! assert_eq!(e.coeff(x), Rational::new(2, 1));
//! assert_eq!(e.coeff(y), Rational::new(-1, 1));
//! ```

use crate::rational::Rational;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Identifier of a real-valued theory variable.
///
/// Created by [`crate::Solver::new_real`]; the wrapped index is public so
/// embedders can use it as a dense array key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RealVar(pub u32);

impl fmt::Display for RealVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An affine linear expression over [`RealVar`]s.
///
/// Zero-coefficient terms are never stored, so structural equality is
/// semantic equality.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    terms: BTreeMap<RealVar, Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A single variable with coefficient one.
    pub fn var(v: RealVar) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, Rational::one());
        LinExpr { terms, constant: Rational::zero() }
    }

    /// A constant expression.
    pub fn constant(c: Rational) -> Self {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// `coeff · v`.
    pub fn term(coeff: Rational, v: RealVar) -> Self {
        let mut e = LinExpr::zero();
        e.add_term(coeff, v);
        e
    }

    /// Adds `coeff · v` in place.
    pub fn add_term(&mut self, coeff: Rational, v: RealVar) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(v).or_default();
        let sum = &*entry + &coeff;
        if sum.is_zero() {
            self.terms.remove(&v);
        } else {
            *entry = sum;
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: &Rational) {
        self.constant = &self.constant + c;
    }

    /// The coefficient of `v` (zero when absent).
    pub fn coeff(&self, v: RealVar) -> Rational {
        self.terms.get(&v).cloned().unwrap_or_default()
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rational {
        &self.constant
    }

    /// Whether the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (RealVar, &Rational)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// Number of variable terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether there are no variable terms and the constant is zero.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// Evaluates under an assignment function.
    pub fn eval(&self, assignment: impl Fn(RealVar) -> Rational) -> Rational {
        let mut acc = self.constant.clone();
        for (v, c) in &self.terms {
            acc = &acc + &(c * &assignment(*v));
        }
        acc
    }

    /// Splits into the variable part (constant removed) and the constant.
    pub fn split_constant(mut self) -> (LinExpr, Rational) {
        let c = std::mem::take(&mut self.constant);
        (self, c)
    }

    /// Scales every coefficient and the constant by `k`.
    pub fn scaled(&self, k: &Rational) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(v, c)| (*v, c * k)).collect(),
            constant: &self.constant * k,
        }
    }
}

impl From<RealVar> for LinExpr {
    fn from(v: RealVar) -> Self {
        LinExpr::var(v)
    }
}

impl From<Rational> for LinExpr {
    fn from(c: Rational) -> Self {
        LinExpr::constant(c)
    }
}

impl From<i64> for LinExpr {
    fn from(c: i64) -> Self {
        LinExpr::constant(Rational::from(c))
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, other: LinExpr) -> LinExpr {
        for (v, c) in other.terms {
            self.add_term(c, v);
        }
        self.add_constant(&other.constant);
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, other: LinExpr) -> LinExpr {
        self + (-other)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr {
            terms: self.terms.into_iter().map(|(v, c)| (v, -c)).collect(),
            constant: -self.constant,
        }
    }
}

impl Mul<Rational> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: Rational) -> LinExpr {
        self.scaled(&k)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                write!(f, "{c}·{v}")?;
                first = false;
            } else {
                write!(f, " + {c}·{v}")?;
            }
        }
        if !self.constant.is_zero() || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn builds_and_cancels() {
        let x = RealVar(0);
        let y = RealVar(1);
        let e = LinExpr::var(x) + LinExpr::var(y) - LinExpr::var(x);
        assert_eq!(e.coeff(x), Rational::zero());
        assert_eq!(e.coeff(y), Rational::one());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn zero_coefficients_never_stored() {
        let x = RealVar(3);
        let mut e = LinExpr::zero();
        e.add_term(r(1, 2), x);
        e.add_term(r(-1, 2), x);
        assert!(e.is_empty());
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn eval_affine() {
        let x = RealVar(0);
        let y = RealVar(1);
        let e = LinExpr::term(r(2, 1), x) + LinExpr::term(r(-3, 1), y)
            + LinExpr::constant(r(5, 1));
        let val = e.eval(|v| if v == x { r(1, 2) } else { r(1, 3) });
        assert_eq!(val, r(5, 1));
    }

    #[test]
    fn scaling() {
        let x = RealVar(0);
        let e = (LinExpr::var(x) + LinExpr::constant(r(1, 1))) * r(3, 2);
        assert_eq!(e.coeff(x), r(3, 2));
        assert_eq!(e.constant_term(), &r(3, 2));
        assert_eq!(e.scaled(&Rational::zero()), LinExpr::zero());
    }

    #[test]
    fn split_constant() {
        let x = RealVar(0);
        let e = LinExpr::var(x) + LinExpr::constant(r(7, 1));
        let (p, c) = e.split_constant();
        assert_eq!(c, r(7, 1));
        assert_eq!(p.constant_term(), &Rational::zero());
        assert_eq!(p.coeff(x), Rational::one());
    }

    #[test]
    fn display_readable() {
        let e = LinExpr::term(r(2, 1), RealVar(0)) + LinExpr::constant(r(-1, 1));
        assert_eq!(e.to_string(), "2·r0 + -1");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }
}
