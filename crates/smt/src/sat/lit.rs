//! Propositional literals and truth values for the CDCL core.

use std::fmt;
use std::ops::Not;

/// Index of a SAT variable (dense, starting at 0).
pub type SatVar = u32;

/// A literal: a SAT variable with a polarity, packed as `var << 1 | neg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn positive(v: SatVar) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn negative(v: SatVar) -> Lit {
        Lit((v << 1) | 1)
    }

    /// Builds a literal with an explicit polarity.
    pub fn with_polarity(v: SatVar, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> SatVar {
        self.0 >> 1
    }

    /// Whether this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index usable for watch lists (`2·var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a literal from [`Lit::index`].
    pub fn from_index(idx: usize) -> Lit {
        Lit(idx as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "¬x{}", self.var())
        }
    }
}

/// Three-valued truth assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// Truth value of a literal given its variable's value.
    pub fn of_lit(self, lit: Lit) -> LBool {
        match (self, lit.is_positive()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing() {
        let p = Lit::positive(7);
        let n = Lit::negative(7);
        assert_eq!(p.var(), 7);
        assert_eq!(n.var(), 7);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_index(p.index()), p);
        assert_eq!(Lit::with_polarity(3, false), Lit::negative(3));
    }

    #[test]
    fn lbool_of_lit() {
        assert_eq!(LBool::True.of_lit(Lit::positive(0)), LBool::True);
        assert_eq!(LBool::True.of_lit(Lit::negative(0)), LBool::False);
        assert_eq!(LBool::False.of_lit(Lit::positive(0)), LBool::False);
        assert_eq!(LBool::False.of_lit(Lit::negative(0)), LBool::True);
        assert_eq!(LBool::Undef.of_lit(Lit::positive(0)), LBool::Undef);
    }
}
