//! DRAT-style clause-proof logging.
//!
//! When proof logging is enabled on a [`super::CdclSolver`], every clause
//! event is recorded in derivation order: the original CNF as it is added,
//! each learned clause, each theory lemma contributed by the DPLL(T)
//! theory (with an optional [`FarkasCertificate`] justifying it), and each
//! deletion performed by clause-database reduction. An `unsat` answer ends
//! the log with the empty clause.
//!
//! The log is exactly what the independent replayer in [`crate::certify`]
//! consumes: learned clauses (including the final empty clause) must be
//! RUP — reverse unit propagation over the clauses active at that point
//! derives a conflict from the clause's negation — while theory lemmas are
//! validated arithmetically from their certificates, never trusted.

use super::lit::Lit;
use crate::rational::Rational;

/// A Farkas-lemma certificate for one theory conflict.
///
/// Each term pairs an asserted atom literal with a nonnegative rational
/// multiplier `λ`. Writing every literal's bound as a `≤`-oriented
/// inequality over the *problem* variables (lower bounds negate), the
/// certificate claims that the λ-weighted sum of the left-hand linear
/// forms cancels to the zero vector while the λ-weighted sum of the
/// right-hand bounds is negative in delta-rational order — an explicit
/// witness that the asserted bounds are jointly infeasible, checkable
/// with nothing but exact rational arithmetic.
#[derive(Debug, Clone, Default)]
pub struct FarkasCertificate {
    /// `(literal, λ)` pairs; λ must be nonnegative.
    pub terms: Vec<(Lit, Rational)>,
}

/// One event in a clause proof, in derivation order.
#[derive(Debug, Clone)]
pub enum ProofStep {
    /// A clause of the original CNF (an axiom; never checked).
    Original(Vec<Lit>),
    /// A clause learned by conflict analysis; must be RUP with respect to
    /// the clauses active before it. The empty clause concludes `unsat`.
    Learned(Vec<Lit>),
    /// A clause contributed by the theory solver (the negation of an
    /// inconsistent set of asserted atom literals), with its certificate.
    TheoryLemma(Vec<Lit>, Option<FarkasCertificate>),
    /// A clause removed by database reduction (weakens the active set;
    /// applying deletions keeps the replay faithful to the solver run).
    Delete(Vec<Lit>),
}

/// An in-memory DRAT-style proof trace.
#[derive(Debug, Clone, Default)]
pub struct ProofLog {
    /// The recorded steps, oldest first.
    pub steps: Vec<ProofStep>,
}

impl ProofLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ProofLog::default()
    }

    /// Records an original (axiom) clause.
    pub fn log_original(&mut self, lits: Vec<Lit>) {
        self.steps.push(ProofStep::Original(lits));
    }

    /// Records a learned clause (empty = refutation).
    pub fn log_learned(&mut self, lits: Vec<Lit>) {
        self.steps.push(ProofStep::Learned(lits));
    }

    /// Records a theory lemma with its certificate.
    pub fn log_theory_lemma(&mut self, lits: Vec<Lit>, cert: Option<FarkasCertificate>) {
        self.steps.push(ProofStep::TheoryLemma(lits, cert));
    }

    /// Records a clause deletion.
    pub fn log_delete(&mut self, lits: Vec<Lit>) {
        self.steps.push(ProofStep::Delete(lits));
    }

    /// Number of derivation steps (learned clauses and theory lemmas).
    pub fn num_derivations(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Learned(_) | ProofStep::TheoryLemma(_, _)))
            .count()
    }

    /// Whether the log ends in a refutation (derives the empty clause).
    pub fn derives_empty_clause(&self) -> bool {
        self.steps.iter().any(|s| match s {
            ProofStep::Learned(lits) => lits.is_empty(),
            _ => false,
        })
    }

    /// Renders the derivation in textual DRAT: one line per step, literals
    /// in DIMACS convention terminated by `0`, deletions prefixed `d`,
    /// theory lemmas prefixed `t` (a nonstandard extension — DRAT has no
    /// notion of theory axioms, and a stock DRAT checker would have to
    /// treat them as assumptions).
    pub fn to_drat(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let dimacs = |lits: &[Lit], out: &mut String| {
            for l in lits {
                let v = i64::from(l.var()) + 1;
                let _ = write!(out, "{} ", if l.is_positive() { v } else { -v });
            }
            let _ = writeln!(out, "0");
        };
        for step in &self.steps {
            match step {
                ProofStep::Original(_) => {} // axioms are not part of a DRAT file
                ProofStep::Learned(lits) => dimacs(lits, &mut out),
                ProofStep::TheoryLemma(lits, _) => {
                    out.push_str("t ");
                    dimacs(lits, &mut out);
                }
                ProofStep::Delete(lits) => {
                    out.push_str("d ");
                    dimacs(lits, &mut out);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_refutation_flag() {
        let mut log = ProofLog::new();
        log.log_original(vec![Lit::positive(0)]);
        log.log_original(vec![Lit::negative(0)]);
        assert!(!log.derives_empty_clause());
        assert_eq!(log.num_derivations(), 0);
        log.log_theory_lemma(vec![Lit::positive(1)], None);
        log.log_learned(vec![]);
        assert!(log.derives_empty_clause());
        assert_eq!(log.num_derivations(), 2);
    }

    #[test]
    fn drat_rendering() {
        let mut log = ProofLog::new();
        log.log_original(vec![Lit::positive(0)]);
        log.log_learned(vec![Lit::negative(1), Lit::positive(2)]);
        log.log_delete(vec![Lit::negative(1), Lit::positive(2)]);
        log.log_learned(vec![]);
        let text = log.to_drat();
        assert_eq!(text, "-2 3 0\nd -2 3 0\n0\n");
    }
}
