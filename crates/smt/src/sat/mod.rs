//! CDCL SAT solver with DPLL(T) theory hooks.
//!
//! See [`cdcl::CdclSolver`] for the solver and [`cdcl::Theory`] for the
//! plugin interface the simplex LRA solver implements.

pub mod cdcl;
pub mod dimacs;
pub mod lit;
pub mod proof;

pub use cdcl::{CdclSolver, NullTheory, SatCounters, SatOutcome, Theory, TheoryResult};
pub use dimacs::{DimacsInstance, ParseDimacsError};
pub use lit::{LBool, Lit, SatVar};
pub use proof::{FarkasCertificate, ProofLog, ProofStep};
