//! Conflict-driven clause-learning SAT solver with a DPLL(T) theory hook.
//!
//! A self-contained CDCL core: two-watched-literal propagation, 1-UIP
//! conflict analysis, VSIDS branching with phase saving, Luby restarts and
//! learned-clause database reduction. A [`Theory`] plugged into
//! [`CdclSolver::solve`] receives assigned literals and may veto assignments
//! with explanations, which the solver turns into learned clauses — the
//! standard DPLL(T) integration used by the LRA solver in [`crate::simplex`].

use super::lit::{LBool, Lit, SatVar};
use super::proof::{FarkasCertificate, ProofLog};
use crate::budget::{Budget, Interrupt};
use crate::profile::Clock;
use crate::stats::ProgressSample;
use std::time::Duration;

/// Result of a theory callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryResult {
    /// Consistent so far.
    Ok,
    /// The given literals (all currently assigned true) are jointly
    /// inconsistent with the theory.
    Conflict(Vec<Lit>),
    /// The theory's budget ran out mid-check; no verdict. The SAT core must
    /// abort the solve — the theory state may be only partially repaired,
    /// so neither `Ok` nor `Conflict` would be sound to report.
    Interrupted,
}

/// A decision-procedure plugin for DPLL(T).
///
/// The SAT core calls these hooks in trail order; `on_backtrack` undoes the
/// effects of everything asserted after the surviving decision levels.
pub trait Theory {
    /// A new decision level was opened.
    fn on_new_level(&mut self);
    /// `n_levels` decision levels were popped; retract their assertions.
    fn on_backtrack(&mut self, n_levels: usize);
    /// `lit` was assigned true. Cheap bound updates happen here.
    fn on_assert(&mut self, lit: Lit) -> TheoryResult;
    /// Full consistency check (may pivot); called at propagation fixpoints.
    fn check(&mut self) -> TheoryResult;
    /// Certificate for the most recent conflict this theory reported,
    /// consumed by proof logging. Theories that cannot certify their
    /// lemmas return `None` (the default), which a full proof replay
    /// rejects — certification requires certifying theories.
    fn take_certificate(&mut self) -> Option<FarkasCertificate> {
        None
    }
    /// Cumulative pivot (or equivalent work-step) count, read by the
    /// progress sampler at decision boundaries. Theories without a
    /// pivot-like notion keep the default zero.
    fn pivot_count(&self) -> u64 {
        0
    }
}

/// A theory that accepts everything — turns the solver into plain SAT.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTheory;

impl Theory for NullTheory {
    fn on_new_level(&mut self) {}
    fn on_backtrack(&mut self, _n_levels: usize) {}
    fn on_assert(&mut self, _lit: Lit) -> TheoryResult {
        TheoryResult::Ok
    }
    fn check(&mut self) -> TheoryResult {
        TheoryResult::Ok
    }
}

/// Outcome of [`CdclSolver::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatOutcome {
    /// A model was found (read it with [`CdclSolver::value`]).
    Sat,
    /// The clauses are unsatisfiable modulo the theory.
    Unsat,
    /// The budget ran out before a verdict (see [`CdclSolver::set_budget`]).
    /// The solver and theory are left mid-search; call
    /// [`CdclSolver::reset_to_root`] before reusing them.
    Unknown(Interrupt),
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: usize,
    blocker: Lit,
}

/// Counters exported to [`crate::stats::SolverStats`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SatCounters {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts (Boolean + theory).
    pub conflicts: u64,
    /// Number of theory conflicts specifically.
    pub theory_conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently in the database.
    pub learned_clauses: u64,
}

/// The CDCL solver.
///
/// Typical use: create, [`CdclSolver::new_var`] as many times as needed,
/// [`CdclSolver::add_clause`] the CNF, then [`CdclSolver::solve`].
///
/// The solver is `Clone`: a never-solved solver holding an encoded clause
/// database can serve as a reusable template, with each clone solved
/// independently (how [`crate::Solver`] implements incremental reuse).
#[derive(Debug, Clone)]
pub struct CdclSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    theory_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    saved_phase: Vec<bool>,
    order: Vec<SatVar>,
    order_pos: Vec<usize>,
    seen: Vec<bool>,
    unsat_at_root: bool,
    counters: SatCounters,
    /// Variables the theory cares about; others skip the theory feed.
    is_theory_var: Vec<bool>,
    /// DRAT-style proof trace, recorded when enabled before clause loading.
    proof: Option<ProofLog>,
    /// Deadline / cancellation budget polled in the search loop.
    budget: Budget,
    /// Progress timeline sampled at decision boundaries, when enabled.
    progress: Option<ProgressLog>,
    /// Failed-assumption core of the most recent
    /// [`CdclSolver::solve_under_assumptions`] `Unsat` answer: a clause of
    /// negated assumption literals entailed by the clause database. Empty
    /// when the instance is unsatisfiable regardless of assumptions.
    failed: Vec<Lit>,
}

/// The progress sampler piggybacking on the decision-boundary poll site:
/// every 64th decision it may record a [`ProgressSample`]. The sample
/// count is bounded — when the buffer fills, every other sample is
/// dropped and the recording stride doubles, so arbitrarily long solves
/// keep a fixed-size, evenly thinned timeline.
#[derive(Debug, Clone)]
struct ProgressLog {
    clock: Clock,
    started: Duration,
    stride: u64,
    next_at: u64,
    samples: Vec<ProgressSample>,
}

/// Upper bound on retained progress samples (then thin + double stride).
const PROGRESS_CAP: usize = 512;

impl Default for CdclSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl CdclSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        CdclSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            theory_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            saved_phase: Vec::new(),
            order: Vec::new(),
            order_pos: Vec::new(),
            seen: Vec::new(),
            unsat_at_root: false,
            counters: SatCounters::default(),
            is_theory_var: Vec::new(),
            proof: None,
            budget: Budget::default(),
            progress: None,
            failed: Vec::new(),
        }
    }

    /// Installs the budget polled by [`CdclSolver::solve`]. The default is
    /// unlimited; a limited budget makes the search loop return
    /// [`SatOutcome::Unknown`] once it is exhausted.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Turns on proof logging. Call before any [`CdclSolver::add_clause`]
    /// so the log captures the complete original CNF.
    pub fn enable_proof(&mut self) {
        self.proof = Some(ProofLog::new());
    }

    /// Turns on progress sampling over `clock`: the next
    /// [`CdclSolver::solve`] records a bounded timeline of cumulative
    /// counters at decision boundaries, retrieved afterwards with
    /// [`CdclSolver::take_progress`].
    pub fn enable_progress(&mut self, clock: Clock) {
        self.progress = Some(ProgressLog {
            clock,
            started: Duration::ZERO,
            stride: 64,
            next_at: 0,
            samples: Vec::new(),
        });
    }

    /// Takes the sampled progress timeline, leaving sampling disabled.
    pub fn take_progress(&mut self) -> Vec<ProgressSample> {
        self.progress.take().map(|p| p.samples).unwrap_or_default()
    }

    /// Takes the recorded proof, leaving logging disabled.
    pub fn take_proof(&mut self) -> Option<ProofLog> {
        self.proof.take()
    }

    /// The proof recorded so far, with logging left enabled. The persistent
    /// incremental core snapshots this once per check — the log spans the
    /// whole solver session, so [`CdclSolver::take_proof`] (which stops
    /// logging) would truncate every later check's proof.
    pub fn proof(&self) -> Option<&ProofLog> {
        self.proof.as_ref()
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> SatVar {
        let v = self.assign.len() as SatVar;
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.is_theory_var.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order_pos.push(self.order.len());
        self.order.push(v);
        v
    }

    /// Marks `v` as a theory atom so its assignments are fed to the theory.
    pub fn set_theory_var(&mut self, v: SatVar) {
        self.is_theory_var[v as usize] = true;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Snapshot of the stored clause database (root-simplified originals
    /// plus learned clauses; root units are not included). Used by the
    /// encoding-level linter to look for duplicate and subsumed clauses.
    pub fn clause_list(&self) -> Vec<Vec<Lit>> {
        self.clauses.iter().map(|c| c.lits.clone()).collect()
    }

    /// Solver counters (decisions, conflicts, …).
    pub fn counters(&self) -> SatCounters {
        self.counters
    }

    /// Current value of a variable (meaningful after a `Sat` outcome).
    pub fn value(&self, v: SatVar) -> LBool {
        self.assign[v as usize]
    }

    fn lit_value(&self, lit: Lit) -> LBool {
        self.assign[lit.var() as usize].of_lit(lit)
    }

    /// Adds a clause. Duplicate literals are removed; tautologies ignored.
    ///
    /// Must be called before [`CdclSolver::solve`] (root level).
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        debug_assert!(self.trail_lim.is_empty(), "clauses are added at root level");
        if self.unsat_at_root {
            return;
        }
        lits.sort_unstable();
        lits.dedup();
        let mut i = 0;
        // analysis: no-poll(duplicate-literal scan, bounded by clause length)
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return; // p ∨ ¬p — tautology
            }
            i += 1;
        }
        // Log the clause before root-level simplification: the proof's
        // axioms must be the original CNF, not the simplified one (the
        // dropped literals are rederivable from logged unit clauses).
        if let Some(p) = &mut self.proof {
            p.log_original(lits.clone());
        }
        // Drop literals already false at root, satisfied clause check.
        lits.retain(|&l| self.lit_value(l) != LBool::False);
        if lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return;
        }
        match lits.len() {
            0 => self.unsat_at_root = true,
            1 => {
                self.enqueue(lits[0], None);
                if self.propagate().is_some() {
                    self.unsat_at_root = true;
                }
            }
            _ => {
                self.attach_clause(Clause { lits, learned: false, activity: 0.0 });
            }
        }
    }

    fn attach_clause(&mut self, clause: Clause) -> usize {
        let idx = self.clauses.len();
        let w0 = clause.lits[0];
        let w1 = clause.lits[1];
        self.watches[(!w0).index()].push(Watch { clause: idx, blocker: w1 });
        self.watches[(!w1).index()].push(Watch { clause: idx, blocker: w0 });
        self.clauses.push(clause);
        idx
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let v = lit.var() as usize;
        self.assign[v] = if lit.is_positive() { LBool::True } else { LBool::False };
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
        self.counters.propagations += 1;
    }

    /// Unit propagation; returns the index of a conflicting clause if any.
    fn propagate(&mut self) -> Option<usize> {
        // analysis: no-poll(bounded by trail growth; the search loop polls per conflict)
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            let widx = p.index();
            let mut i = 0;
            // analysis: no-poll(bounded by the watch list of one literal)
            'watches: while i < self.watches[widx].len() {
                let watch = self.watches[widx][i];
                if self.lit_value(watch.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let ci = watch.clause;
                // Normalize: watched literal ¬p must be at position 1.
                let false_lit = !p;
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if first != watch.blocker && self.lit_value(first) == LBool::True {
                    self.watches[widx][i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[widx].swap_remove(i);
                        self.watches[(!cand).index()]
                            .push(Watch { clause: ci, blocker: first });
                        continue 'watches;
                    }
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    self.prop_head = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, Some(ci));
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, v: SatVar) {
        let a = &mut self.activity[v as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.in_heap(v) {
            self.sift_up(self.order_pos[v as usize]);
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.clause_inc /= 0.999;
    }

    // --- binary-heap variable order (max-heap on activity) ---

    fn heap_less(&self, a: SatVar, b: SatVar) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn sift_up(&mut self, mut pos: usize) {
        let v = self.order[pos];
        // analysis: no-poll(heap sift, O(log n) in the variable count)
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap_less(v, self.order[parent]) {
                self.order[pos] = self.order[parent];
                self.order_pos[self.order[pos] as usize] = pos;
                pos = parent;
            } else {
                break;
            }
        }
        self.order[pos] = v;
        self.order_pos[v as usize] = pos;
    }

    fn sift_down(&mut self, mut pos: usize) {
        let v = self.order[pos];
        let len = self.order.len();
        // analysis: no-poll(heap sift, O(log n) in the variable count)
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len && self.heap_less(self.order[right], self.order[left]) {
                right
            } else {
                left
            };
            if self.heap_less(self.order[child], v) {
                self.order[pos] = self.order[child];
                self.order_pos[self.order[pos] as usize] = pos;
                pos = child;
            } else {
                break;
            }
        }
        self.order[pos] = v;
        self.order_pos[v as usize] = pos;
    }

    fn heap_pop(&mut self) -> Option<SatVar> {
        if self.order.is_empty() {
            return None;
        }
        let top = self.order[0];
        let last = self.order.pop().unwrap();
        if !self.order.is_empty() {
            self.order[0] = last;
            self.order_pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    fn heap_insert(&mut self, v: SatVar) {
        self.order_pos[v as usize] = self.order.len();
        self.order.push(v);
        self.sift_up(self.order.len() - 1);
    }

    fn in_heap(&self, v: SatVar) -> bool {
        let pos = self.order_pos[v as usize];
        pos < self.order.len() && self.order[pos] == v
    }

    /// Pops the next unassigned branching variable off the activity heap,
    /// or `None` when the assignment is total. Split from the decision
    /// itself so the caller opens the decision level (SAT and theory in
    /// lockstep) only when a branch actually exists — opening it first
    /// leaked a theory level on every `Sat` return, which a persistent
    /// core would carry into the next check.
    fn pick_branch(&mut self) -> Option<SatVar> {
        // analysis: no-poll(drains the decision heap, bounded by the variable count)
        while let Some(v) = self.heap_pop() {
            if self.assign[v as usize] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    fn backtrack_sat_only(&mut self, target_level: usize) {
        // analysis: no-poll(unwinds the trail, bounded by its length)
        while self.trail.len() > self.trail_lim[target_level] {
            let lit = self.trail.pop().unwrap();
            let v = lit.var() as usize;
            self.saved_phase[v] = lit.is_positive();
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
            if !self.in_heap(v as SatVar) {
                self.heap_insert(v as SatVar);
            }
        }
        self.trail_lim.truncate(target_level);
        self.prop_head = self.trail.len();
        self.theory_head = self.theory_head.min(self.trail.len());
    }

    fn backtrack<T: Theory>(&mut self, target_level: usize, theory: &mut T) {
        let popped = self.trail_lim.len() - target_level;
        if popped > 0 {
            theory.on_backtrack(popped);
            self.backtrack_sat_only(target_level);
        }
    }

    /// 1-UIP analysis. `conflict` literals are all false under the current
    /// assignment. Returns the learned clause (asserting literal first) and
    /// the backjump level.
    fn analyze(&mut self, conflict: Vec<Lit>) -> (Vec<Lit>, usize) {
        let current = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = vec![Lit::positive(0)]; // slot 0 = asserting lit
        let mut counter = 0usize;
        let mut idx = self.trail.len();
        let mut reason_lits = conflict;
        let p: Lit;
        // analysis: no-poll(1-UIP resolution, each step unmarks one trail literal)
        loop {
            for &q in &reason_lits {
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            // analysis: no-poll(walks the trail backwards, idx strictly decreases)
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[idx];
            let v = pl.var() as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = pl;
                break;
            }
            let ci = self.reason[v].expect("non-decision literal has a reason");
            self.bump_clause(ci);
            reason_lits = self.clauses[ci]
                .lits
                .iter()
                .copied()
                .filter(|&l| l != pl)
                .collect();
        }
        learnt[0] = !p;
        // Clear remaining seen flags.
        for l in &learnt {
            self.seen[l.var() as usize] = false;
        }
        // Backjump level: highest level among learnt[1..].
        let mut bj = 0usize;
        let mut max_i = 1usize;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var() as usize] as usize;
            if lv > bj {
                bj = lv;
                max_i = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_i); // second watch at backjump level
        }
        (learnt, bj)
    }

    fn bump_clause(&mut self, ci: usize) {
        if !self.clauses[ci].learned {
            return;
        }
        self.clauses[ci].activity += self.clause_inc;
        if self.clauses[ci].activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learned) {
                c.activity *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    /// Removes the least active half of the learned clauses.
    fn reduce_db(&mut self) {
        let mut learned: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                self.clauses[i].learned
                    && self.clauses[i].lits.len() > 2
                    && !self.is_reason(i)
            })
            .collect();
        learned.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap()
        });
        let remove: std::collections::HashSet<usize> =
            learned[..learned.len() / 2].iter().copied().collect();
        if remove.is_empty() {
            return;
        }
        if let Some(p) = &mut self.proof {
            // Log deletions in the sorted activity order of the keep
            // decision, not the hash set's iteration order — the DRAT
            // proof stream must be byte-stable across runs.
            for &i in &learned[..learned.len() / 2] {
                p.log_delete(self.clauses[i].lits.clone());
            }
        }
        self.compact_clauses(&remove);
    }

    /// Hard-deletes every stored clause containing `lit`. This is how a
    /// retracted scope's activation literal is retired: once the unit
    /// `¬act` holds at root, clauses guarded by `¬act` are permanently
    /// satisfied and only cost propagation time, while every learned
    /// clause that depended on the scope necessarily contains `¬act`
    /// (the activation is a decision, so conflict analysis can never
    /// resolve it away) and is removed with them. Only learned clauses
    /// are logged as proof deletions — originals were logged before
    /// root simplification, so their stored form may no longer match;
    /// they stay in the log, where root propagation of the retirement
    /// unit keeps them inert in any RUP derivation. Returns the number
    /// of clauses removed. Must be called at the root level.
    pub fn purge_literal(&mut self, lit: Lit) -> u64 {
        debug_assert!(self.trail_lim.is_empty(), "purge happens at root level");
        let remove: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].lits.contains(&lit))
            .collect();
        if remove.is_empty() {
            return 0;
        }
        if let Some(p) = &mut self.proof {
            for &i in &remove {
                if self.clauses[i].learned {
                    p.log_delete(self.clauses[i].lits.clone());
                }
            }
        }
        let n = remove.len() as u64;
        self.compact_clauses(&remove.into_iter().collect());
        n
    }

    /// Removes the given clause indices: compacts storage, rebuilds watch
    /// lists and remaps reason pointers. A reason pointing into the removed
    /// set is cleared — only possible for root-level assignments (reduce_db
    /// never removes reasons; purge_literal runs at root), whose reasons
    /// are never consulted again. Shared by [`CdclSolver::reduce_db`] and
    /// [`CdclSolver::purge_literal`].
    fn compact_clauses(&mut self, remove: &std::collections::HashSet<usize>) {
        let mut remap = vec![usize::MAX; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len() - remove.len());
        for (i, c) in self.clauses.drain(..).enumerate() {
            if !remove.contains(&i) {
                remap[i] = new_clauses.len();
                new_clauses.push(c);
            }
        }
        self.clauses = new_clauses;
        for w in &mut self.watches {
            w.clear();
        }
        for idx in 0..self.clauses.len() {
            let w0 = self.clauses[idx].lits[0];
            let w1 = self.clauses[idx].lits[1];
            self.watches[(!w0).index()].push(Watch { clause: idx, blocker: w1 });
            self.watches[(!w1).index()].push(Watch { clause: idx, blocker: w0 });
        }
        for (v, r) in self.reason.iter_mut().enumerate() {
            if let Some(ci) = *r {
                if remap[ci] == usize::MAX {
                    debug_assert_eq!(self.level[v], 0);
                    *r = None;
                } else {
                    *r = Some(remap[ci]);
                }
            }
        }
        self.counters.learned_clauses =
            self.clauses.iter().filter(|c| c.learned).count() as u64;
    }

    /// Closes the proof with the empty clause (every `Unsat` return).
    fn log_refutation(&mut self) {
        if let Some(p) = &mut self.proof {
            p.log_learned(Vec::new());
        }
    }

    fn is_reason(&self, ci: usize) -> bool {
        let first = self.clauses[ci].lits[0];
        self.reason[first.var() as usize] == Some(ci)
            && self.lit_value(first) == LBool::True
    }

    fn luby(mut i: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 ...
        let mut k = 1u64;
        // analysis: no-poll(Luby index arithmetic, O(log i))
        while (1u64 << (k + 1)) <= i + 1 {
            k += 1;
        }
        // analysis: no-poll(Luby recurrence, i strictly shrinks each round)
        loop {
            if (1u64 << k) == i + 1 {
                return 1u64 << (k - 1).min(63);
            }
            i -= (1u64 << k) - 1;
            k = 1;
            // analysis: no-poll(Luby index arithmetic, O(log i))
            while (1u64 << (k + 1)) <= i + 1 {
                k += 1;
            }
        }
    }

    /// Feeds newly assigned theory literals to the theory and runs its check.
    fn theory_step<T: Theory>(&mut self, theory: &mut T) -> TheoryResult {
        let mut fed_any = false;
        // analysis: no-poll(bounded by trail growth; the search loop polls per conflict)
        while self.theory_head < self.trail.len() {
            let lit = self.trail[self.theory_head];
            self.theory_head += 1;
            if !self.is_theory_var[lit.var() as usize] {
                continue;
            }
            fed_any = true;
            if let TheoryResult::Conflict(expl) = theory.on_assert(lit) {
                return TheoryResult::Conflict(expl);
            }
        }
        if fed_any {
            theory.check()
        } else {
            TheoryResult::Ok
        }
    }

    /// Records one progress sample if the decision count reached the
    /// current stride boundary. `pivots` is the theory's cumulative
    /// pivot count at this moment.
    fn record_progress(&mut self, pivots: u64) {
        let Some(log) = &mut self.progress else { return };
        if self.counters.decisions < log.next_at {
            return;
        }
        log.samples.push(ProgressSample {
            at: log.clock.now().saturating_sub(log.started),
            decisions: self.counters.decisions,
            conflicts: self.counters.conflicts,
            restarts: self.counters.restarts,
            propagations: self.counters.propagations,
            pivots,
        });
        log.next_at = self.counters.decisions + log.stride;
        if log.samples.len() >= PROGRESS_CAP {
            let mut keep = false;
            log.samples.retain(|_| {
                keep = !keep;
                keep
            });
            log.stride = log.stride.saturating_mul(2);
        }
    }

    /// Solves the current clause set modulo `theory`.
    ///
    /// After `Sat`, variable values are available via [`CdclSolver::value`]
    /// and the theory holds a consistent assignment of all asserted atoms.
    pub fn solve<T: Theory>(&mut self, theory: &mut T) -> SatOutcome {
        self.solve_under_assumptions(&[], theory)
    }

    /// Solves under `assumptions`: the given literals are placed as
    /// pseudo-decisions (one per level, in order, before any branching),
    /// MiniSat style. Placement is keyed on the current decision-level
    /// count, so it self-heals across restarts and backjumps. On `Unsat`
    /// with a non-empty [`CdclSolver::failed_assumptions`] core the clause
    /// set itself is *not* refuted — only its conjunction with the
    /// assumptions — and the solver stays usable for further calls after
    /// [`CdclSolver::reset_to_root`].
    pub fn solve_under_assumptions<T: Theory>(
        &mut self,
        assumptions: &[Lit],
        theory: &mut T,
    ) -> SatOutcome {
        let debug = std::env::var_os("STA_SMT_DEBUG").is_some();
        let mut t_prop = std::time::Duration::ZERO;
        let mut t_theory = std::time::Duration::ZERO;
        let mut theory_steps = 0u64;
        let outcome = self.solve_inner(
            assumptions,
            theory,
            debug,
            &mut t_prop,
            &mut t_theory,
            &mut theory_steps,
        );
        if debug {
            eprintln!(
                "[sta-smt] propagate {t_prop:.2?} theory {t_theory:.2?} ({theory_steps} steps)"
            );
        }
        outcome
    }

    /// The failed-assumption core of the most recent
    /// [`CdclSolver::solve_under_assumptions`] `Unsat` answer: a clause of
    /// negated assumption literals (a subset of the assumptions, negated)
    /// that follows from the clause database alone. Empty when the clause
    /// set is unsatisfiable regardless of assumptions.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Backtracks to the root level, undoing theory state in lockstep, and
    /// clears the failed-assumption core. The persistent-core preamble: a
    /// solver left mid-trail by a previous solve (a `Sat` model, assumption
    /// levels, or an interrupt) returns to a state where clauses may be
    /// added and a new solve started.
    pub fn reset_to_root<T: Theory>(&mut self, theory: &mut T) {
        if !self.trail_lim.is_empty() {
            self.backtrack(0, theory);
        }
        self.failed.clear();
    }

    /// Final-conflict analysis: assumption `a` is false under the current
    /// trail, all of whose decision levels are assumption levels (branching
    /// never starts before placement finishes, so every reason-free literal
    /// above root is an assumption). Walks reasons backwards from `¬a` to
    /// collect the contributing assumptions; the returned clause of negated
    /// assumptions is entailed by the clause database via unit propagation
    /// (RUP), which is what lets a proof replay check it.
    fn analyze_final(&mut self, a: Lit) -> Vec<Lit> {
        let mut out = vec![!a];
        if self.trail_lim.is_empty() {
            return out;
        }
        self.seen[a.var() as usize] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var() as usize;
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                None => out.push(!q),
                Some(ci) => {
                    for k in 0..self.clauses[ci].lits.len() {
                        let l = self.clauses[ci].lits[k];
                        if l != q && self.level[l.var() as usize] > 0 {
                            self.seen[l.var() as usize] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[a.var() as usize] = false;
        out
    }

    fn solve_inner<T: Theory>(
        &mut self,
        assumptions: &[Lit],
        theory: &mut T,
        debug: bool,
        t_prop: &mut std::time::Duration,
        t_theory: &mut std::time::Duration,
        theory_steps: &mut u64,
    ) -> SatOutcome {
        self.failed.clear();
        if self.unsat_at_root {
            self.log_refutation();
            return SatOutcome::Unsat;
        }
        if let Some(log) = &mut self.progress {
            log.started = log.clock.now();
        }
        // Feed root-level units to the theory before starting.
        let mut restarts = 0u64;
        let mut conflicts_until_restart = 100 * Self::luby(1);
        let mut conflicts_since_restart = 0u64;
        let mut max_learned = 4000usize;
        // Budget polling: every 64th propagate/decide round, starting with
        // the very first so an already-expired deadline interrupts before
        // any search happens.
        let limited = self.budget.is_limited();
        let mut rounds = 0u64;
        loop {
            if limited && rounds & 63 == 0 {
                if let Some(why) = self.budget.exhausted() {
                    return SatOutcome::Unknown(why);
                }
            }
            rounds += 1;
            let prop_start = debug.then(std::time::Instant::now);
            let boolean_conflict = self.propagate();
            if let Some(s) = prop_start {
                *t_prop += s.elapsed();
            }
            let conflict: Option<Vec<Lit>> = if let Some(ci) = boolean_conflict {
                Some(self.clauses[ci].lits.clone())
            } else {
                let th_start = debug.then(std::time::Instant::now);
                *theory_steps += 1;
                let result = self.theory_step(theory);
                if let Some(s) = th_start {
                    *t_theory += s.elapsed();
                }
                match result {
                    TheoryResult::Ok => None,
                    TheoryResult::Interrupted => {
                        // The theory's own budget check fired (shared with
                        // ours, so re-reading it names the reason; both
                        // conditions are monotone).
                        let why =
                            self.budget.exhausted().unwrap_or(Interrupt::Timeout);
                        return SatOutcome::Unknown(why);
                    }
                    TheoryResult::Conflict(expl) => {
                        self.counters.theory_conflicts += 1;
                        // Explanation lits are all true; the conflict clause
                        // is their negation.
                        let cl: Vec<Lit> = expl.into_iter().map(|l| !l).collect();
                        if let Some(p) = &mut self.proof {
                            p.log_theory_lemma(cl.clone(), theory.take_certificate());
                        }
                        Some(cl)
                    }
                }
            };
            match conflict {
                Some(cl) => {
                    self.counters.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.trail_lim.is_empty() {
                        self.log_refutation();
                        return SatOutcome::Unsat;
                    }
                    // Guard: ensure the conflict involves the current level
                    // (always true for Boolean conflicts; theory conflicts
                    // could in principle be older).
                    let max_level = cl
                        .iter()
                        .map(|l| self.level[l.var() as usize] as usize)
                        .max()
                        .unwrap_or(0);
                    if max_level == 0 {
                        self.log_refutation();
                        return SatOutcome::Unsat;
                    }
                    if max_level < self.trail_lim.len() {
                        self.backtrack(max_level, theory);
                    }
                    let (learnt, bj) = self.analyze(cl);
                    if let Some(p) = &mut self.proof {
                        p.log_learned(learnt.clone());
                    }
                    self.backtrack(bj, theory);
                    if learnt.len() == 1 {
                        self.enqueue(learnt[0], None);
                    } else {
                        let ci = self.attach_clause(Clause {
                            lits: learnt.clone(),
                            learned: true,
                            activity: self.clause_inc,
                        });
                        self.counters.learned_clauses += 1;
                        self.enqueue(learnt[0], Some(ci));
                    }
                    self.decay_activities();
                }
                None => {
                    if conflicts_since_restart >= conflicts_until_restart {
                        restarts += 1;
                        self.counters.restarts += 1;
                        conflicts_since_restart = 0;
                        conflicts_until_restart = 100 * Self::luby(restarts + 1);
                        self.backtrack(0, theory);
                        continue;
                    }
                    if self.counters.learned_clauses as usize > max_learned {
                        self.reduce_db();
                        max_learned += 500;
                    }
                    // Decision-boundary budget poll (same masked trick as the
                    // simplex pivot loop): a satisfiable instance that makes
                    // millions of decisions with few conflicts must still
                    // observe its deadline, and the round counter alone can
                    // lag when propagation queues run long. The progress
                    // sampler shares this boundary (and its masking) so
                    // sampling adds no clock reads to unsampled solves.
                    if self.counters.decisions & 63 == 0 {
                        if limited {
                            if let Some(why) = self.budget.exhausted() {
                                return SatOutcome::Unknown(why);
                            }
                        }
                        if self.progress.is_some() {
                            self.record_progress(theory.pivot_count());
                        }
                    }
                    // Place pending assumptions before branching: the next
                    // assumption to place is indexed by the current decision
                    // level, so restarts and backjumps that strip assumption
                    // levels re-place them here.
                    let placed = self.trail_lim.len();
                    if placed < assumptions.len() {
                        let a = assumptions[placed];
                        match self.lit_value(a) {
                            LBool::True => {
                                // Already satisfied: open a vacuous level so
                                // the level count keeps indexing assumptions.
                                theory.on_new_level();
                                self.trail_lim.push(self.trail.len());
                            }
                            LBool::False => {
                                let core = self.analyze_final(a);
                                if let Some(p) = &mut self.proof {
                                    p.log_learned(core.clone());
                                }
                                self.failed = core;
                                return SatOutcome::Unsat;
                            }
                            LBool::Undef => {
                                theory.on_new_level();
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(a, None);
                            }
                        }
                    } else if let Some(v) = self.pick_branch() {
                        self.counters.decisions += 1;
                        theory.on_new_level();
                        self.trail_lim.push(self.trail.len());
                        let phase = self.saved_phase[v as usize];
                        self.enqueue(Lit::with_polarity(v, phase), None);
                    } else {
                        // Fully assigned and theory-consistent.
                        return SatOutcome::Sat;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(v: SatVar) -> Lit {
        Lit::positive(v)
    }
    fn ln(v: SatVar) -> Lit {
        Lit::negative(v)
    }

    #[test]
    fn trivially_sat() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![lp(a), lp(b)]);
        s.add_clause(vec![ln(a)]);
        assert_eq!(s.solve(&mut NullTheory), SatOutcome::Sat);
        assert_eq!(s.value(a), LBool::False);
        assert_eq!(s.value(b), LBool::True);
    }

    /// Regression: a zero-duration budget must return `Unknown` before the
    /// search makes a single decision — both the round-counter poll at the
    /// loop top and the decision-boundary poll fire on their first pass.
    #[test]
    fn zero_budget_interrupts_before_any_search() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![lp(a), lp(b)]);
        s.add_clause(vec![lp(a), ln(b)]);
        s.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        assert_eq!(
            s.solve(&mut NullTheory),
            SatOutcome::Unknown(Interrupt::Timeout)
        );
        assert_eq!(s.counters().decisions, 0);
        // With the budget lifted the same solver finishes the search.
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(&mut NullTheory), SatOutcome::Sat);
    }

    #[test]
    fn trivially_unsat() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        s.add_clause(vec![lp(a)]);
        s.add_clause(vec![ln(a)]);
        assert_eq!(s.solve(&mut NullTheory), SatOutcome::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = CdclSolver::new();
        let _ = s.new_var();
        s.add_clause(vec![]);
        assert_eq!(s.solve(&mut NullTheory), SatOutcome::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        s.add_clause(vec![lp(a), ln(a)]);
        assert_eq!(s.solve(&mut NullTheory), SatOutcome::Sat);
    }

    #[test]
    fn pigeonhole_two_in_one_unsat() {
        // 2 pigeons, 1 hole: p0h0, p1h0, ¬p0h0 ∨ ¬p1h0.
        let mut s = CdclSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![lp(a)]);
        s.add_clause(vec![lp(b)]);
        s.add_clause(vec![ln(a), ln(b)]);
        assert_eq!(s.solve(&mut NullTheory), SatOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // Pigeon i in hole j: var(i,j) = i*2+j; 3 pigeons, 2 holes.
        let mut s = CdclSolver::new();
        let mut v = vec![];
        for _ in 0..6 {
            v.push(s.new_var());
        }
        let var = |i: usize, j: usize| v[i * 2 + j];
        for i in 0..3 {
            s.add_clause(vec![lp(var(i, 0)), lp(var(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(vec![ln(var(i1, j)), ln(var(i2, j))]);
                }
            }
        }
        assert_eq!(s.solve(&mut NullTheory), SatOutcome::Unsat);
    }

    #[test]
    fn chain_implication_forces_assignment() {
        // x0 ∧ (x_i → x_{i+1}) forces all true.
        let mut s = CdclSolver::new();
        let n = 50;
        let vars: Vec<SatVar> = (0..n).map(|_| s.new_var()).collect();
        s.add_clause(vec![lp(vars[0])]);
        for i in 0..n - 1 {
            s.add_clause(vec![ln(vars[i]), lp(vars[i + 1])]);
        }
        assert_eq!(s.solve(&mut NullTheory), SatOutcome::Sat);
        for &v in &vars {
            assert_eq!(s.value(v), LBool::True);
        }
    }

    /// Brute-force cross-check on random 3-SAT instances.
    #[test]
    fn random_3sat_matches_brute_force() {
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let n_vars = 6;
            let n_clauses = 3 + (next() % 22) as usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..n_clauses {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push(((next() % n_vars as u64) as usize, next() % 2 == 0));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << n_vars) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = CdclSolver::new();
            let vars: Vec<SatVar> = (0..n_vars).map(|_| s.new_var()).collect();
            for cl in &clauses {
                s.add_clause(
                    cl.iter()
                        .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                        .collect(),
                );
            }
            let got = s.solve(&mut NullTheory) == SatOutcome::Sat;
            assert_eq!(got, brute_sat, "round {round} clauses {clauses:?}");
            if got {
                // Verify the model actually satisfies every clause.
                for cl in &clauses {
                    assert!(cl.iter().any(|&(v, pos)| {
                        (s.value(vars[v]) == LBool::True) == pos
                    }));
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (1..=15).map(CdclSolver::luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    /// A theory that only counts push/pop balance, to pin level lockstep.
    #[derive(Debug, Default)]
    struct LevelCounter {
        depth: i64,
    }

    impl Theory for LevelCounter {
        fn on_new_level(&mut self) {
            self.depth += 1;
        }
        fn on_backtrack(&mut self, n_levels: usize) {
            self.depth -= n_levels as i64;
            assert!(self.depth >= 0, "backtrack below root");
        }
        fn on_assert(&mut self, _lit: Lit) -> TheoryResult {
            TheoryResult::Ok
        }
        fn check(&mut self) -> TheoryResult {
            TheoryResult::Ok
        }
    }

    /// Regression: a `Sat` return must not leave a dangling theory level
    /// (the old code opened the level before discovering there was nothing
    /// left to branch on). A persistent core would carry that level into
    /// the next check and misattribute root bound asserts to it.
    #[test]
    fn sat_then_reset_leaves_theory_at_root() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![lp(a), lp(b)]);
        let mut th = LevelCounter::default();
        assert_eq!(s.solve(&mut th), SatOutcome::Sat);
        s.reset_to_root(&mut th);
        assert_eq!(th.depth, 0, "theory levels must unwind to root");
    }

    #[test]
    fn assumptions_select_branch_and_failed_core_is_minimal() {
        // (a ∨ b) with assumption ¬a forces b; assumption set {¬a, ¬b}
        // fails with a core naming both.
        let mut s = CdclSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![lp(a), lp(b)]);
        let mut th = NullTheory;
        assert_eq!(s.solve_under_assumptions(&[ln(a)], &mut th), SatOutcome::Sat);
        assert_eq!(s.value(a), LBool::False);
        assert_eq!(s.value(b), LBool::True);
        assert!(s.failed_assumptions().is_empty());

        s.reset_to_root(&mut th);
        assert_eq!(
            s.solve_under_assumptions(&[ln(a), ln(b)], &mut th),
            SatOutcome::Unsat
        );
        let mut core = s.failed_assumptions().to_vec();
        core.sort_unstable();
        let mut want = vec![lp(a), lp(b)];
        want.sort_unstable();
        assert_eq!(core, want, "core = negations of both assumptions");

        // The same solver answers again after a reset: the instance is
        // satisfiable without assumptions.
        s.reset_to_root(&mut th);
        assert_eq!(s.solve(&mut th), SatOutcome::Sat);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn root_false_assumption_yields_unit_core() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        s.add_clause(vec![lp(a)]);
        let mut th = NullTheory;
        assert_eq!(
            s.solve_under_assumptions(&[ln(a)], &mut th),
            SatOutcome::Unsat
        );
        assert_eq!(s.failed_assumptions(), &[lp(a)]);
    }

    #[test]
    fn genuine_unsat_under_assumptions_has_empty_core() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![lp(a)]);
        s.add_clause(vec![ln(a)]);
        assert_eq!(
            s.solve_under_assumptions(&[lp(b)], &mut NullTheory),
            SatOutcome::Unsat
        );
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn contradictory_assumptions_fail_without_clauses() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        let _ = s.new_var();
        let mut th = NullTheory;
        assert_eq!(
            s.solve_under_assumptions(&[lp(a), ln(a)], &mut th),
            SatOutcome::Unsat
        );
        let core = s.failed_assumptions();
        assert_eq!(core.len(), 2);
        assert!(core.contains(&lp(a)) && core.contains(&ln(a)));
    }

    #[test]
    fn purge_literal_removes_guarded_clauses_only() {
        let mut s = CdclSolver::new();
        let act = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        // Guarded: act → (a ∧ b); unguarded: a ∨ b.
        s.add_clause(vec![ln(act), lp(a)]);
        s.add_clause(vec![ln(act), lp(b)]);
        s.add_clause(vec![lp(a), lp(b)]);
        assert_eq!(s.num_clauses(), 3);
        s.add_clause(vec![ln(act)]); // retirement unit
        assert_eq!(s.purge_literal(ln(act)), 2);
        assert_eq!(s.num_clauses(), 1);
        // The survivor still constrains the search.
        let mut th = NullTheory;
        assert_eq!(
            s.solve_under_assumptions(&[ln(a), ln(b)], &mut th),
            SatOutcome::Unsat
        );
        s.reset_to_root(&mut th);
        assert_eq!(s.solve_under_assumptions(&[ln(a)], &mut th), SatOutcome::Sat);
        assert_eq!(s.value(b), LBool::True);
    }

    /// Assumption-driven solves under a brute-force cross-check, reusing
    /// one solver across rounds with learned clauses retained throughout.
    #[test]
    fn random_3sat_under_assumptions_matches_brute_force() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n_vars = 6usize;
        let mut s = CdclSolver::new();
        let vars: Vec<SatVar> = (0..n_vars).map(|_| s.new_var()).collect();
        let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
        for _ in 0..14 {
            let mut cl = Vec::new();
            for _ in 0..3 {
                cl.push(((next() % n_vars as u64) as usize, next() % 2 == 0));
            }
            clauses.push(cl.clone());
            s.add_clause(
                cl.iter()
                    .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                    .collect(),
            );
        }
        let mut th = NullTheory;
        for round in 0..40 {
            // Random assumption set over a random subset of variables.
            let mask = (next() % (1 << n_vars)) as u32;
            let vals = (next() % (1 << n_vars)) as u32;
            let assumptions: Vec<Lit> = (0..n_vars)
                .filter(|&v| (mask >> v) & 1 == 1)
                .map(|v| Lit::with_polarity(vars[v], (vals >> v) & 1 == 1))
                .collect();
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << n_vars) {
                for v in 0..n_vars {
                    if (mask >> v) & 1 == 1 && ((m >> v) & 1) != ((vals >> v) & 1) {
                        continue 'outer;
                    }
                }
                for cl in &clauses {
                    if !cl.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            s.reset_to_root(&mut th);
            let got = s.solve_under_assumptions(&assumptions, &mut th);
            assert_eq!(
                got == SatOutcome::Sat,
                brute_sat,
                "round {round} mask {mask:b} vals {vals:b}"
            );
            match got {
                SatOutcome::Sat => {
                    for &l in &assumptions {
                        assert_eq!(s.lit_value(l), LBool::True);
                    }
                    for cl in &clauses {
                        assert!(cl.iter().any(|&(v, pos)| {
                            (s.value(vars[v]) == LBool::True) == pos
                        }));
                    }
                }
                SatOutcome::Unsat => {
                    // Core lits are negated assumptions.
                    for l in s.failed_assumptions() {
                        assert!(
                            assumptions.contains(&!*l),
                            "core literal {l:?} is not a negated assumption"
                        );
                    }
                }
                SatOutcome::Unknown(_) => panic!("unlimited budget"),
            }
        }
    }
}
