//! DIMACS CNF import/export for the SAT core.
//!
//! The standard interchange format of the SAT community: `p cnf V C`
//! followed by clauses of nonzero literals terminated by `0`. Lets the
//! CDCL core be exercised on external benchmark instances and lets any
//! encoding this workspace builds be inspected with off-the-shelf SAT
//! tooling.

use super::cdcl::{CdclSolver, NullTheory, SatOutcome};
use super::lit::{LBool, Lit};
use std::fmt;

/// A parsed DIMACS instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsInstance {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses as signed 1-based literals (DIMACS convention).
    pub clauses: Vec<Vec<i64>>,
}

impl DimacsInstance {
    /// Loads the clauses into a fresh [`CdclSolver`], returning it with
    /// `num_vars` allocated variables.
    pub fn into_solver(&self) -> CdclSolver {
        let mut solver = CdclSolver::new();
        let vars: Vec<_> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            solver.add_clause(
                clause
                    .iter()
                    .map(|&l| {
                        let v = vars[(l.unsigned_abs() as usize) - 1];
                        Lit::with_polarity(v, l > 0)
                    })
                    .collect(),
            );
        }
        solver
    }

    /// Decides the instance (plain SAT) and returns the model as signed
    /// literals if satisfiable.
    pub fn solve(&self) -> Option<Vec<i64>> {
        let mut solver = self.into_solver();
        match solver.solve(&mut NullTheory) {
            // A fresh solver with the default unlimited budget never
            // interrupts.
            SatOutcome::Unsat | SatOutcome::Unknown(_) => None,
            SatOutcome::Sat => Some(
                (0..self.num_vars)
                    .map(|i| {
                        let sign = if solver.value(i as u32) == LBool::True {
                            1
                        } else {
                            -1
                        };
                        sign * (i as i64 + 1)
                    })
                    .collect(),
            ),
        }
    }
}

impl fmt::Display for DimacsInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for clause in &self.clauses {
            for lit in clause {
                write!(f, "{lit} ")?;
            }
            writeln!(f, "0")?;
        }
        Ok(())
    }
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-indexed input line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIMACS line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// Accepts `c` comment lines, one `p cnf` header, and whitespace-
/// separated clause literals (clauses may span lines; each ends at `0`).
///
/// # Errors
/// Returns [`ParseDimacsError`] on malformed headers, out-of-range
/// literals, or a missing header.
pub fn parse(text: &str) -> Result<DimacsInstance, ParseDimacsError> {
    let err = |line: usize, message: &str| ParseDimacsError {
        line,
        message: message.to_string(),
    };
    let mut header: Option<(usize, usize)> = None;
    let mut clauses: Vec<Vec<i64>> = Vec::new();
    let mut current: Vec<i64> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if header.is_some() {
                return Err(err(ln, "duplicate header"));
            }
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(err(ln, "expected `p cnf`"));
            }
            let v: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(ln, "bad variable count"))?;
            let c: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(ln, "bad clause count"))?;
            header = Some((v, c));
            continue;
        }
        let (num_vars, _) = header.ok_or_else(|| err(ln, "clause before header"))?;
        for tok in line.split_whitespace() {
            let lit: i64 = tok
                .parse()
                .map_err(|_| err(ln, "bad literal"))?;
            if lit == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if lit.unsigned_abs() as usize > num_vars {
                    return Err(err(ln, "literal out of declared range"));
                }
                current.push(lit);
            }
        }
    }
    let (num_vars, _declared) = header.ok_or_else(|| err(0, "missing `p cnf` header"))?;
    if !current.is_empty() {
        clauses.push(current); // tolerate a missing trailing 0
    }
    // A clause count differing from the header is tolerated — many
    // real-world generators get it wrong and solvers conventionally
    // trust the clause list.
    Ok(DimacsInstance { num_vars, clauses })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_solves_sat() {
        let text = "c a satisfiable toy\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";
        let inst = parse(text).unwrap();
        assert_eq!(inst.num_vars, 3);
        assert_eq!(inst.clauses.len(), 3);
        let model = inst.solve().expect("sat");
        assert_eq!(model.len(), 3);
        // Model satisfies every clause.
        for clause in &inst.clauses {
            assert!(clause.iter().any(|&l| model.contains(&l)));
        }
    }

    #[test]
    fn parses_and_refutes_unsat() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        assert!(parse(text).unwrap().solve().is_none());
    }

    #[test]
    fn clauses_may_span_lines_and_trailing_zero_optional() {
        let text = "p cnf 2 2\n1\n2 0\n-1 -2";
        let inst = parse(text).unwrap();
        assert_eq!(inst.clauses, vec![vec![1, 2], vec![-1, -2]]);
    }

    #[test]
    fn display_roundtrip() {
        let inst = DimacsInstance {
            num_vars: 2,
            clauses: vec![vec![1, -2], vec![2]],
        };
        let text = inst.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("1 2 0").is_err()); // clause before header
        assert!(parse("p cnf x 1\n").is_err());
        assert!(parse("p cnf 2 1\n5 0\n").is_err()); // out of range
        assert!(parse("p cnf 1 0\np cnf 1 0\n").is_err()); // dup header
        assert!(parse("").is_err()); // no header
        let e = parse("p cnf 2 1\nfoo 0\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn pigeonhole_via_dimacs() {
        // 3 pigeons, 2 holes, generated as DIMACS: unsat.
        let mut clauses = Vec::new();
        let var = |p: i64, h: i64| p * 2 + h; // 1-based packing
        for p in 0..3 {
            clauses.push(vec![var(p, 1), var(p, 2)]);
        }
        for h in 1..=2 {
            for p1 in 0..3 {
                for p2 in p1 + 1..3 {
                    clauses.push(vec![-var(p1, h), -var(p2, h)]);
                }
            }
        }
        let inst = DimacsInstance { num_vars: 6, clauses };
        assert!(inst.solve().is_none());
    }
}
