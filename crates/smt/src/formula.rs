//! Boolean formulas over propositional variables and arithmetic atoms.
//!
//! [`Formula`] is the assertion language of the [`crate::Solver`]: full
//! propositional structure (negation, n-ary conjunction/disjunction,
//! implication, equivalence), linear-arithmetic comparisons built from
//! [`LinExpr`], and cardinality constraints over sub-formulas.
//!
//! # Examples
//!
//! ```
//! use sta_smt::{Formula, LinExpr, LinExprCmp, Solver};
//! use sta_smt::rational::Rational;
//!
//! let mut solver = Solver::new();
//! let p = solver.new_bool();
//! let x = solver.new_real();
//! // p → x ≥ 2, together with ¬(x ≥ 1) forces ¬p.
//! solver.assert_formula(
//!     &Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(2))),
//! );
//! solver.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)).not());
//! let model = solver.check().expect_sat();
//! assert!(!model.bool_value(p));
//! ```

use crate::expr::LinExpr;
use std::fmt;
use std::sync::Arc;

/// Identifier of a propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoolVar(pub u32);

impl fmt::Display for BoolVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Comparison operator of an arithmetic atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `≤`
    Le,
    /// `<`
    Lt,
    /// `≥`
    Ge,
    /// `>`
    Gt,
    /// `=`
    Eq,
    /// `≠`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    True,
    False,
    Var(BoolVar),
    /// `expr op 0` — the right-hand side has been folded into the expression.
    Atom(LinExpr, CmpOp),
    Not(Formula),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    Implies(Formula, Formula),
    Iff(Formula, Formula),
    /// At most `k` of the sub-formulas are true.
    AtMost(Vec<Formula>, usize),
    /// At least `k` of the sub-formulas are true.
    AtLeast(Vec<Formula>, usize),
}

/// A Boolean combination of propositional variables and arithmetic atoms.
///
/// Formulas are immutable and cheaply cloneable (reference-counted nodes,
/// atomically counted so formulas — and everything holding them, like a
/// [`crate::Solver`] — can move between threads).
/// Build them with the constructors on this type and the comparison methods
/// on [`LinExpr`] (via [`LinExprCmp`]).
#[derive(Debug, Clone)]
pub struct Formula(pub(crate) Arc<Node>);

impl Formula {
    /// The constant true formula.
    pub fn top() -> Self {
        Formula(Arc::new(Node::True))
    }

    /// The constant false formula.
    pub fn bottom() -> Self {
        Formula(Arc::new(Node::False))
    }

    /// A propositional variable.
    pub fn var(v: BoolVar) -> Self {
        Formula(Arc::new(Node::Var(v)))
    }

    /// A literal: the variable or its negation.
    pub fn lit(v: BoolVar, positive: bool) -> Self {
        let f = Formula::var(v);
        if positive {
            f
        } else {
            f.not()
        }
    }

    /// Logical negation.
    pub fn not(self) -> Self {
        match &*self.0 {
            Node::True => Formula::bottom(),
            Node::False => Formula::top(),
            Node::Not(inner) => inner.clone(),
            _ => Formula(Arc::new(Node::Not(self))),
        }
    }

    /// N-ary conjunction. Empty input yields `true`.
    pub fn and(mut fs: Vec<Formula>) -> Self {
        fs.retain(|f| !matches!(&*f.0, Node::True));
        if fs.iter().any(|f| matches!(&*f.0, Node::False)) {
            return Formula::bottom();
        }
        match fs.len() {
            0 => Formula::top(),
            1 => fs.pop().unwrap(),
            _ => Formula(Arc::new(Node::And(fs))),
        }
    }

    /// N-ary disjunction. Empty input yields `false`.
    pub fn or(mut fs: Vec<Formula>) -> Self {
        fs.retain(|f| !matches!(&*f.0, Node::False));
        if fs.iter().any(|f| matches!(&*f.0, Node::True)) {
            return Formula::top();
        }
        match fs.len() {
            0 => Formula::bottom(),
            1 => fs.pop().unwrap(),
            _ => Formula(Arc::new(Node::Or(fs))),
        }
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Formula) -> Self {
        match (&*self.0, &*other.0) {
            (Node::True, _) => other,
            (Node::False, _) => Formula::top(),
            (_, Node::True) => Formula::top(),
            (_, Node::False) => self.not(),
            _ => Formula(Arc::new(Node::Implies(self, other))),
        }
    }

    /// Equivalence `self ↔ other`.
    pub fn iff(self, other: Formula) -> Self {
        match (&*self.0, &*other.0) {
            (Node::True, _) => other,
            (_, Node::True) => self,
            (Node::False, _) => other.not(),
            (_, Node::False) => self.not(),
            _ => Formula(Arc::new(Node::Iff(self, other))),
        }
    }

    /// At most `k` of `fs` hold.
    ///
    /// Encoded with the Sinz sequential-counter, so the CNF size is
    /// `O(k·|fs|)`.
    pub fn at_most(fs: Vec<Formula>, k: usize) -> Self {
        if fs.len() <= k {
            return Formula::top();
        }
        if k == 0 {
            return Formula::and(fs.into_iter().map(Formula::not).collect());
        }
        Formula(Arc::new(Node::AtMost(fs, k)))
    }

    /// At least `k` of `fs` hold.
    pub fn at_least(fs: Vec<Formula>, k: usize) -> Self {
        if k == 0 {
            return Formula::top();
        }
        if fs.len() < k {
            return Formula::bottom();
        }
        if k == 1 {
            return Formula::or(fs);
        }
        Formula(Arc::new(Node::AtLeast(fs, k)))
    }

    /// Exactly `k` of `fs` hold.
    pub fn exactly(fs: Vec<Formula>, k: usize) -> Self {
        Formula::and(vec![
            Formula::at_most(fs.clone(), k),
            Formula::at_least(fs, k),
        ])
    }

    /// An arithmetic atom `lhs op rhs`.
    pub fn cmp(lhs: LinExpr, op: CmpOp, rhs: LinExpr) -> Self {
        let diff = lhs - rhs;
        if diff.is_constant() {
            let c = diff.constant_term();
            let holds = match op {
                CmpOp::Le => !c.is_positive(),
                CmpOp::Lt => c.is_negative(),
                CmpOp::Ge => !c.is_negative(),
                CmpOp::Gt => c.is_positive(),
                CmpOp::Eq => c.is_zero(),
                CmpOp::Ne => !c.is_zero(),
            };
            return if holds { Formula::top() } else { Formula::bottom() };
        }
        Formula(Arc::new(Node::Atom(diff, op)))
    }
}

impl From<BoolVar> for Formula {
    fn from(v: BoolVar) -> Self {
        Formula::var(v)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, fs: &[Formula], sep: &str) -> fmt::Result {
            write!(f, "(")?;
            for (i, sub) in fs.iter().enumerate() {
                if i > 0 {
                    f.write_str(sep)?;
                }
                write!(f, "{sub}")?;
            }
            write!(f, ")")
        }
        match &*self.0 {
            Node::True => write!(f, "true"),
            Node::False => write!(f, "false"),
            Node::Var(v) => write!(f, "{v}"),
            Node::Atom(e, op) => write!(f, "({e} {op} 0)"),
            Node::Not(g) => write!(f, "¬{g}"),
            Node::And(fs) => join(f, fs, " ∧ "),
            Node::Or(fs) => join(f, fs, " ∨ "),
            Node::Implies(a, b) => write!(f, "({a} → {b})"),
            Node::Iff(a, b) => write!(f, "({a} ↔ {b})"),
            Node::AtMost(fs, k) => {
                write!(f, "atmost[{k}]")?;
                join(f, fs, ", ")
            }
            Node::AtLeast(fs, k) => {
                write!(f, "atleast[{k}]")?;
                join(f, fs, ", ")
            }
        }
    }
}

/// Comparison constructors on [`LinExpr`], producing [`Formula`] atoms.
///
/// This trait is sealed; it exists so `expr.le(other)` reads naturally.
pub trait LinExprCmp: sealed::Sealed + Sized {
    /// `self ≤ other`
    fn le(self, other: LinExpr) -> Formula;
    /// `self < other`
    fn lt(self, other: LinExpr) -> Formula;
    /// `self ≥ other`
    fn ge(self, other: LinExpr) -> Formula;
    /// `self > other`
    fn gt(self, other: LinExpr) -> Formula;
    /// `self = other`
    fn eq_expr(self, other: LinExpr) -> Formula;
    /// `self ≠ other`
    fn ne_expr(self, other: LinExpr) -> Formula;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for crate::expr::LinExpr {}
}

impl LinExprCmp for LinExpr {
    fn le(self, other: LinExpr) -> Formula {
        Formula::cmp(self, CmpOp::Le, other)
    }
    fn lt(self, other: LinExpr) -> Formula {
        Formula::cmp(self, CmpOp::Lt, other)
    }
    fn ge(self, other: LinExpr) -> Formula {
        Formula::cmp(self, CmpOp::Ge, other)
    }
    fn gt(self, other: LinExpr) -> Formula {
        Formula::cmp(self, CmpOp::Gt, other)
    }
    fn eq_expr(self, other: LinExpr) -> Formula {
        Formula::cmp(self, CmpOp::Eq, other)
    }
    fn ne_expr(self, other: LinExpr) -> Formula {
        Formula::cmp(self, CmpOp::Ne, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rational;

    #[test]
    fn constant_folding() {
        assert!(matches!(&*Formula::top().not().0, Node::False));
        assert!(matches!(&*Formula::and(vec![]).0, Node::True));
        assert!(matches!(&*Formula::or(vec![]).0, Node::False));
        let p = Formula::var(BoolVar(0));
        assert!(matches!(
            &*Formula::and(vec![p.clone(), Formula::bottom()]).0,
            Node::False
        ));
        assert!(matches!(
            &*Formula::or(vec![p.clone(), Formula::top()]).0,
            Node::True
        ));
        assert!(matches!(&*Formula::top().implies(p.clone()).0, Node::Var(_)));
        assert!(matches!(&*p.clone().implies(Formula::top()).0, Node::True));
    }

    #[test]
    fn double_negation_collapses() {
        let p = Formula::var(BoolVar(1));
        let pp = p.clone().not().not();
        assert!(matches!(&*pp.0, Node::Var(BoolVar(1))));
    }

    #[test]
    fn constant_atoms_fold() {
        let two = LinExpr::from(2);
        let three = LinExpr::from(3);
        assert!(matches!(&*two.clone().le(three.clone()).0, Node::True));
        assert!(matches!(&*three.clone().le(two.clone()).0, Node::False));
        assert!(matches!(&*two.clone().eq_expr(two.clone()).0, Node::True));
        assert!(matches!(&*two.clone().ne_expr(two.clone()).0, Node::False));
        assert!(matches!(&*two.clone().lt(two.clone()).0, Node::False));
        assert!(matches!(&*two.clone().ge(two).0, Node::True));
    }

    #[test]
    fn cardinality_degenerate_cases() {
        let ps: Vec<Formula> = (0..3).map(|i| Formula::var(BoolVar(i))).collect();
        assert!(matches!(&*Formula::at_most(ps.clone(), 3).0, Node::True));
        assert!(matches!(&*Formula::at_most(ps.clone(), 0).0, Node::And(_)));
        assert!(matches!(&*Formula::at_least(ps.clone(), 0).0, Node::True));
        assert!(matches!(&*Formula::at_least(ps.clone(), 4).0, Node::False));
        assert!(matches!(&*Formula::at_least(ps.clone(), 1).0, Node::Or(_)));
        assert!(matches!(&*Formula::at_least(ps, 2).0, Node::AtLeast(_, 2)));
    }

    #[test]
    fn atom_normalizes_to_difference() {
        let x = crate::RealVar(0);
        let f = LinExpr::var(x).le(LinExpr::constant(Rational::new(3, 1)));
        match &*f.0 {
            Node::Atom(e, CmpOp::Le) => {
                assert_eq!(e.coeff(x), Rational::one());
                assert_eq!(e.constant_term(), &Rational::new(-3, 1));
            }
            other => panic!("unexpected node {other:?}"),
        }
    }

    #[test]
    fn display_smoke() {
        let p = Formula::var(BoolVar(0));
        let q = Formula::var(BoolVar(1));
        let f = Formula::and(vec![p.clone(), q.clone().not()]).implies(q);
        assert_eq!(f.to_string(), "((b0 ∧ ¬b1) → b1)");
    }
}
