//! Static analysis of formulas before solving.
//!
//! [`lint`] inspects a set of asserted [`Formula`]s without solving them:
//! unused variables, trivially contradictory bound pairs on a single
//! variable (`x < c ∧ x > c`), constant assertions, duplicate assertions,
//! and malformed cardinality constraints. [`lint_clauses`] runs a second,
//! encoding-level pass over the Tseitin clause database looking for
//! duplicate and subsumed clauses.
//!
//! Findings carry a [`Severity`]; *deny mode* (used by
//! `Solver::check_certified` under [`crate::CertifyLevel::Full`]) fails
//! only on [`Severity::Error`] findings — warnings and notes are
//! informational, since legitimate encodings (e.g. a knowledge limit and
//! an accessibility limit pinning the same switch) can assert the same
//! formula twice.

use std::collections::{HashMap, HashSet};

use crate::expr::RealVar;
use crate::formula::{CmpOp, Formula, Node};
use crate::rational::{DeltaRational, Rational};
use crate::sat::Lit;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Cosmetic or redundancy note; never fails a run.
    Info,
    /// Suspicious but possibly intentional.
    Warning,
    /// Almost certainly an encoding bug; fails deny mode.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The category of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A Boolean variable was allocated but appears in no assertion.
    UnusedBoolVar,
    /// A real variable was allocated but appears in no assertion.
    UnusedRealVar,
    /// Top-level single-variable bounds admit no value (`x < c ∧ x > c`).
    ContradictoryBounds,
    /// An assertion is the constant `true` (adds nothing).
    TrivialAssertion,
    /// An assertion is the constant `false` (the problem is trivially
    /// unsat — almost always an encoding bug rather than intent).
    AssertedFalse,
    /// The same formula is asserted more than once.
    DuplicateAssertion,
    /// Two stored clauses are identical after Tseitin encoding.
    DuplicateClause,
    /// A stored clause is a superset of another (implied by it).
    SubsumedClause,
    /// A cardinality constraint with duplicate or constant members.
    MalformedCardinality,
}

/// One static-analysis finding.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// How serious the finding is.
    pub severity: Severity,
    /// What category of problem was found.
    pub kind: LintKind,
    /// Human-readable description.
    pub message: String,
}

/// The set of findings from one lint pass.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in discovery order.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    fn push(&mut self, severity: Severity, kind: LintKind, message: String) {
        self.findings.push(LintFinding { severity, kind, message });
    }

    /// Appends all findings from `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
    }

    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether any finding is an error (deny mode fails on these).
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == severity).count()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{}: {}", finding.severity, finding.message)?;
        }
        Ok(())
    }
}

/// Interval bounds on one real variable, accumulated over top-level
/// conjuncts. Strictness rides in the delta component, matching the
/// solver's own convention (upper δ ≤ 0, lower δ ≥ 0).
#[derive(Debug, Default)]
struct VarInterval {
    lower: Option<DeltaRational>,
    upper: Option<DeltaRational>,
}

/// Lints a set of asserted formulas.
///
/// `n_bools` / `n_reals` are the allocation counts (variables `0..n`);
/// variables outside every assertion are reported unused.
pub fn lint(formulas: &[Formula], n_bools: u32, n_reals: u32) -> LintReport {
    let mut report = LintReport::new();
    let mut used_bools: HashSet<u32> = HashSet::new();
    let mut used_reals: HashSet<u32> = HashSet::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut intervals: HashMap<RealVar, VarInterval> = HashMap::new();

    for f in formulas {
        collect_usage(f, &mut used_bools, &mut used_reals);
        check_cardinalities(f, &mut report);
        match &*f.0 {
            Node::True => report.push(
                Severity::Info,
                LintKind::TrivialAssertion,
                "assertion is the constant true".to_string(),
            ),
            Node::False => report.push(
                Severity::Error,
                LintKind::AssertedFalse,
                "assertion is the constant false (trivially unsat)".to_string(),
            ),
            _ => {}
        }
        let key = f.to_string();
        if !seen.insert(key.clone()) {
            report.push(
                Severity::Warning,
                LintKind::DuplicateAssertion,
                format!("formula asserted more than once: {key}"),
            );
        }
        for conjunct in conjuncts(f) {
            accumulate_bounds(conjunct, &mut intervals);
        }
    }

    for (rv, iv) in &intervals {
        if let (Some(lb), Some(ub)) = (&iv.lower, &iv.upper) {
            if lb > ub {
                report.push(
                    Severity::Error,
                    LintKind::ContradictoryBounds,
                    format!(
                        "contradictory bounds on r{}: lower {} exceeds upper {}",
                        rv.0,
                        show_delta(lb),
                        show_delta(ub)
                    ),
                );
            }
        }
    }

    for v in 0..n_bools {
        if !used_bools.contains(&v) {
            report.push(
                Severity::Warning,
                LintKind::UnusedBoolVar,
                format!("boolean variable b{v} is never used in an assertion"),
            );
        }
    }
    for v in 0..n_reals {
        if !used_reals.contains(&v) {
            report.push(
                Severity::Warning,
                LintKind::UnusedRealVar,
                format!("real variable r{v} is never used in an assertion"),
            );
        }
    }
    report
}

/// Caps for the quadratic subsumption scan in [`lint_clauses`]: skipped
/// beyond `MAX_CLAUSES_FOR_SUBSUMPTION` stored clauses, and clauses longer
/// than `MAX_SUBSUMPTION_LEN` literals are never compared. The IEEE
/// 14-bus case studies stay well under both.
const MAX_CLAUSES_FOR_SUBSUMPTION: usize = 2000;
const MAX_SUBSUMPTION_LEN: usize = 8;

/// Encoding-level lint over the stored Tseitin clause database
/// (from [`crate::sat::CdclSolver::clause_list`]).
///
/// Duplicate and subsumed clauses are redundancy notes ([`Severity::Info`])
/// — the encoder is expected to avoid them, but they cost memory, not
/// correctness.
pub fn lint_clauses(clauses: &[Vec<Lit>]) -> LintReport {
    let mut report = LintReport::new();
    let mut normalized: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len());
    let mut seen: HashSet<Vec<Lit>> = HashSet::new();
    for c in clauses {
        let mut key = c.clone();
        key.sort_unstable();
        key.dedup();
        if !seen.insert(key.clone()) {
            report.push(
                Severity::Info,
                LintKind::DuplicateClause,
                format!("duplicate clause in encoding: {}", display_clause(&key)),
            );
        }
        normalized.push(key);
    }
    if normalized.len() <= MAX_CLAUSES_FOR_SUBSUMPTION {
        for (i, a) in normalized.iter().enumerate() {
            if a.len() > MAX_SUBSUMPTION_LEN {
                continue;
            }
            for (j, b) in normalized.iter().enumerate() {
                if i == j || b.len() > MAX_SUBSUMPTION_LEN || a.len() >= b.len() {
                    continue;
                }
                // a ⊂ b (both sorted): b is implied by a.
                if is_subset(a, b) {
                    report.push(
                        Severity::Info,
                        LintKind::SubsumedClause,
                        format!(
                            "clause {} is subsumed by {}",
                            display_clause(b),
                            display_clause(a)
                        ),
                    );
                }
            }
        }
    }
    report
}

fn show_delta(d: &DeltaRational) -> String {
    if d.delta.is_zero() {
        d.value.to_string()
    } else if d.delta.is_positive() {
        format!("{}+δ", d.value)
    } else {
        format!("{}−δ", d.value)
    }
}

fn is_subset(a: &[Lit], b: &[Lit]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.any(|y| y == x))
}

fn display_clause(lits: &[Lit]) -> String {
    let parts: Vec<String> = lits.iter().map(|l| l.to_string()).collect();
    format!("({})", parts.join(" ∨ "))
}

fn collect_usage(f: &Formula, bools: &mut HashSet<u32>, reals: &mut HashSet<u32>) {
    match &*f.0 {
        Node::True | Node::False => {}
        Node::Var(v) => {
            bools.insert(v.0);
        }
        Node::Atom(expr, _) => {
            for (rv, _) in expr.iter() {
                reals.insert(rv.0);
            }
        }
        Node::Not(g) => collect_usage(g, bools, reals),
        Node::And(gs) | Node::Or(gs) | Node::AtMost(gs, _) | Node::AtLeast(gs, _) => {
            for g in gs {
                collect_usage(g, bools, reals);
            }
        }
        Node::Implies(a, b) | Node::Iff(a, b) => {
            collect_usage(a, bools, reals);
            collect_usage(b, bools, reals);
        }
    }
}

fn check_cardinalities(f: &Formula, report: &mut LintReport) {
    match &*f.0 {
        Node::True | Node::False | Node::Var(_) | Node::Atom(_, _) => {}
        Node::Not(g) => check_cardinalities(g, report),
        Node::And(gs) | Node::Or(gs) => {
            for g in gs {
                check_cardinalities(g, report);
            }
        }
        Node::Implies(a, b) | Node::Iff(a, b) => {
            check_cardinalities(a, report);
            check_cardinalities(b, report);
        }
        Node::AtMost(gs, k) | Node::AtLeast(gs, k) => {
            let name = if matches!(&*f.0, Node::AtMost(_, _)) { "at-most" } else { "at-least" };
            let mut members: HashSet<String> = HashSet::new();
            for g in gs {
                check_cardinalities(g, report);
                if matches!(&*g.0, Node::True | Node::False) {
                    report.push(
                        Severity::Warning,
                        LintKind::MalformedCardinality,
                        format!("{name}({k}) has a constant member {g}"),
                    );
                }
                if !members.insert(g.to_string()) {
                    report.push(
                        Severity::Error,
                        LintKind::MalformedCardinality,
                        format!("{name}({k}) counts duplicate member {g}"),
                    );
                }
            }
        }
    }
}

/// Flattens nested conjunctions into a list of conjunct formulas.
fn conjuncts(f: &Formula) -> Vec<&Formula> {
    fn walk<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
        match &*f.0 {
            Node::And(gs) => {
                for g in gs {
                    walk(g, out);
                }
            }
            _ => out.push(f),
        }
    }
    let mut out = Vec::new();
    walk(f, &mut out);
    out
}

/// If `conjunct` constrains a single real variable, tightens its interval.
/// Handles `Atom` and `Not(Atom)`; `Ne` contributes nothing.
fn accumulate_bounds(conjunct: &Formula, intervals: &mut HashMap<RealVar, VarInterval>) {
    let (expr, op) = match &*conjunct.0 {
        Node::Atom(expr, op) => (expr, *op),
        Node::Not(inner) => match &*inner.0 {
            Node::Atom(expr, op) => (expr, negate_op(*op)),
            _ => return,
        },
        _ => return,
    };
    if expr.len() != 1 {
        return;
    }
    let Some((rv, a)) = expr.iter().next().map(|(v, c)| (v, c.clone())) else {
        return;
    };
    if a.is_zero() {
        return;
    }
    // a·x + k op 0  ⇔  x op' −k/a, flipping the comparison when a < 0.
    let c = &(-expr.constant_term()) * &a.recip();
    let op = if a.is_negative() { flip_op(op) } else { op };
    let iv = intervals.entry(rv).or_default();
    match op {
        CmpOp::Le => tighten_upper(iv, DeltaRational::real(c)),
        CmpOp::Lt => tighten_upper(iv, DeltaRational::with_delta(c, -&Rational::one())),
        CmpOp::Ge => tighten_lower(iv, DeltaRational::real(c)),
        CmpOp::Gt => tighten_lower(iv, DeltaRational::with_delta(c, Rational::one())),
        CmpOp::Eq => {
            tighten_upper(iv, DeltaRational::real(c.clone()));
            tighten_lower(iv, DeltaRational::real(c));
        }
        CmpOp::Ne => {}
    }
}

fn tighten_upper(iv: &mut VarInterval, value: DeltaRational) {
    if iv.upper.as_ref().map_or(true, |u| value < *u) {
        iv.upper = Some(value);
    }
}

fn tighten_lower(iv: &mut VarInterval, value: DeltaRational) {
    if iv.lower.as_ref().map_or(true, |l| value > *l) {
        iv.lower = Some(value);
    }
}

fn negate_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
    }
}

fn flip_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::formula::{BoolVar, LinExprCmp};

    fn x() -> LinExpr {
        LinExpr::var(RealVar(0))
    }

    #[test]
    fn flags_contradictory_bound_pair() {
        // x < 1 ∧ x > 1 — infeasible.
        let fs = [x().lt(LinExpr::from(1)), x().gt(LinExpr::from(1))];
        let report = lint(&fs, 0, 1);
        assert!(report.has_errors());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == LintKind::ContradictoryBounds));

        // x ≤ 1 ∧ x ≥ 1 — feasible point, must not be flagged.
        let ok = [x().le(LinExpr::from(1)), x().ge(LinExpr::from(1))];
        assert!(!lint(&ok, 0, 1).has_errors());

        // Negative coefficient flips the comparison: −2x ≤ −4 means x ≥ 2,
        // contradictory with x < 2.
        let neg = [
            LinExpr::term(Rational::new(-2, 1), RealVar(0)).le(LinExpr::from(-4)),
            x().lt(LinExpr::from(2)),
        ];
        assert!(lint(&neg, 0, 1).has_errors());

        // A negated atom contributes the flipped bound: ¬(x ≤ 1) is x > 1.
        let negated = [x().le(LinExpr::from(0)), x().le(LinExpr::from(1)).not()];
        assert!(lint(&negated, 0, 1).has_errors());
    }

    #[test]
    fn flags_unused_variables() {
        let fs = [Formula::var(BoolVar(0)), x().le(LinExpr::from(1))];
        let report = lint(&fs, 2, 2);
        assert!(!report.has_errors());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == LintKind::UnusedBoolVar && f.message.contains("b1")));
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == LintKind::UnusedRealVar && f.message.contains("r1")));
    }

    #[test]
    fn flags_malformed_cardinality() {
        let p = Formula::var(BoolVar(0));
        let q = Formula::var(BoolVar(1));
        let dup = Formula::at_most(vec![p.clone(), p.clone(), q.clone()], 1);
        let report = lint(&[dup], 2, 0);
        assert!(report.has_errors());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == LintKind::MalformedCardinality));

        let clean = Formula::at_most(vec![p, q], 1);
        assert!(!lint(&[clean], 2, 0).has_errors());
    }

    #[test]
    fn flags_constants_and_duplicates() {
        let p = Formula::var(BoolVar(0));
        let fs = [Formula::top(), Formula::bottom(), p.clone(), p];
        let report = lint(&fs, 1, 0);
        assert!(report.has_errors()); // bottom
        assert!(report.findings.iter().any(|f| f.kind == LintKind::AssertedFalse));
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == LintKind::TrivialAssertion && f.severity == Severity::Info));
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == LintKind::DuplicateAssertion && f.severity == Severity::Warning));
    }

    #[test]
    fn bounds_inside_conjunctions_are_seen() {
        let f = Formula::and(vec![x().lt(LinExpr::from(0)), x().gt(LinExpr::from(0))]);
        assert!(lint(&[f], 0, 1).has_errors());
    }

    #[test]
    fn clause_lint_finds_duplicates_and_subsumption() {
        let p = |v| Lit::positive(v);
        let clauses = vec![
            vec![p(0), p(1)],
            vec![p(1), p(0)],       // duplicate modulo order
            vec![p(0), p(1), p(2)], // subsumed by the first
            vec![p(3)],
        ];
        let report = lint_clauses(&clauses);
        assert!(report.findings.iter().any(|f| f.kind == LintKind::DuplicateClause));
        assert!(report.findings.iter().any(|f| f.kind == LintKind::SubsumedClause));
        assert_eq!(report.max_severity(), Some(Severity::Info));
        assert!(!report.has_errors());
    }

    #[test]
    fn report_helpers() {
        let mut r = LintReport::new();
        assert!(r.is_empty());
        assert_eq!(r.max_severity(), None);
        r.push(Severity::Info, LintKind::DuplicateClause, "a".into());
        r.push(Severity::Warning, LintKind::UnusedBoolVar, "b".into());
        assert_eq!(r.max_severity(), Some(Severity::Warning));
        assert_eq!(r.count(Severity::Info), 1);
        let mut other = LintReport::new();
        other.push(Severity::Error, LintKind::AssertedFalse, "c".into());
        r.merge(other);
        assert!(r.has_errors());
        assert_eq!(format!("{r}").lines().count(), 3);
    }
}
