//! Small deterministic PRNG (PCG-XSH-RR 64/32) for randomized solver
//! tests.
//!
//! `sta-smt` is dependency-free by design, so it carries its own copy of
//! the generator also found in `sta_linalg::rng` (the two crates sit at
//! the bottom of the dependency graph and deliberately do not depend on
//! each other). Not cryptographic; streams are fully determined by the
//! `u64` seed.
//!
//! # Examples
//!
//! ```
//! use sta_smt::rng::Pcg32;
//!
//! let mut r = Pcg32::new(0xDEADBEEF);
//! let k = r.below(10);
//! assert!(k < 10);
//! ```

/// A PCG-XSH-RR 64/32 generator: 64-bit LCG state, 32-bit permuted output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_INIT_INC: u64 = 1442695040888963407;

impl Pcg32 {
    /// Seeds the generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: PCG_INIT_INC | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 raw bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 raw bits (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform draw from `0..n` (rejection-sampled, unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let draw = self.next_u64();
            if draw < zone {
                return (draw % n) as usize;
            }
        }
    }

    /// Uniform draw from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform draw from the closed integer range `lo..=hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as usize + 1;
        lo + self.below(span) as i64
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_stream_shape() {
        let mut a = Pcg32::new(99);
        let mut b = Pcg32::new(99);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = Pcg32::new(5);
        for _ in 0..500 {
            assert!(r.below(7) < 7);
            let y = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&y));
        }
    }
}
