//! Observability: per-phase solver metrics and a JSONL trace-event sink.
//!
//! The paper's scaling claims (Table IV, Figs. 4–5) are statements about
//! *where* solver time goes as instances grow, so the toolchain needs a
//! first-class answer to "did this job spend its budget in encoding, in
//! the CDCL search, or in the simplex?". This module provides the two
//! halves of that answer, both dependency-free:
//!
//! * [`PhaseMetrics`] / [`PhaseTimings`] — a per-phase breakdown of one
//!   solver check (or an aggregate over many). Counters are strictly
//!   deterministic functions of the problem: aggregating them over a
//!   campaign yields byte-identical JSON at any worker count. Wall-clock
//!   quantities live in the separate [`PhaseTimings`] so they can be
//!   stripped, exactly like the campaign report's `timing` keys.
//! * [`TraceEvent`] + [`TraceSink`] — a line-oriented event stream
//!   (JSONL via [`JsonlSink`]) emitted by the verifier and campaign
//!   layers; [`SharedSink`] makes one sink safe to share across worker
//!   threads.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::escape_into;
use crate::tablefmt::{Align, Table};

/// The solver phases metrics are broken down by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tseitin / cardinality CNF encoding (including base-cache reuse).
    Encode,
    /// The CDCL search loop (BCP, decisions, conflict analysis).
    Search,
    /// The simplex theory solver (bound asserts, checks, pivots).
    Simplex,
}

impl Phase {
    /// Stable lowercase token used in JSON.
    pub fn token(self) -> &'static str {
        match self {
            Phase::Encode => "encode",
            Phase::Search => "search",
            Phase::Simplex => "simplex",
        }
    }
}

/// Deterministic per-phase counters of one solver check, or the sum over
/// many checks (a synthesis loop, a whole campaign).
///
/// Every field is a pure function of the problem instance — no wall clock,
/// no thread identity — so any aggregation of these values is reproducible
/// byte for byte regardless of scheduling. Timings live in
/// [`PhaseTimings`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// CNF clauses pushed by the encoder.
    pub clauses: u64,
    /// Total literal occurrences over pushed clauses.
    pub clause_lits: u64,
    /// SAT variables after encoding.
    pub sat_vars: u64,
    /// Distinct arithmetic atoms registered.
    pub atoms: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// BCP propagations.
    pub propagations: u64,
    /// Conflicts (Boolean + theory).
    pub conflicts: u64,
    /// Theory conflicts specifically.
    pub theory_conflicts: u64,
    /// Restarts.
    pub restarts: u64,
    /// Learned clauses retained at end of search.
    pub learned_clauses: u64,
    /// Clause-database size (original + learned) at end of search.
    pub clause_db: u64,
    /// Learned clauses carried in from earlier checks on a persistent
    /// incremental core (zero on the clone-per-check path).
    pub retained_clauses: u64,
    /// Clauses hard-deleted by activation-literal retirement (zero on the
    /// clone-per-check path).
    pub deleted_clauses: u64,
    /// Simplex pivot operations.
    pub pivots: u64,
    /// Theory bound assertions fed to the simplex.
    pub bound_asserts: u64,
    /// Full simplex consistency checks.
    pub theory_checks: u64,
    /// Simplex pivots already embodied by the warm-started basis at check
    /// entry (zero on the clone-per-check path).
    pub warm_pivots_saved: u64,
}

impl PhaseMetrics {
    /// Adds `other` into `self` (campaign/synthesis rollup).
    pub fn merge(&mut self, other: &PhaseMetrics) {
        self.clauses += other.clauses;
        self.clause_lits += other.clause_lits;
        self.sat_vars += other.sat_vars;
        self.atoms += other.atoms;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.theory_conflicts += other.theory_conflicts;
        self.restarts += other.restarts;
        self.learned_clauses += other.learned_clauses;
        self.clause_db += other.clause_db;
        self.retained_clauses += other.retained_clauses;
        self.deleted_clauses += other.deleted_clauses;
        self.pivots += other.pivots;
        self.bound_asserts += other.bound_asserts;
        self.theory_checks += other.theory_checks;
        self.warm_pivots_saved += other.warm_pivots_saved;
    }

    /// The counters grouped by phase, in the fixed serialization order.
    pub fn grouped(&self) -> Vec<(Phase, Vec<(&'static str, u64)>)> {
        vec![
            (
                Phase::Encode,
                vec![
                    ("clauses", self.clauses),
                    ("clause_lits", self.clause_lits),
                    ("sat_vars", self.sat_vars),
                    ("atoms", self.atoms),
                ],
            ),
            (
                Phase::Search,
                vec![
                    ("decisions", self.decisions),
                    ("propagations", self.propagations),
                    ("conflicts", self.conflicts),
                    ("theory_conflicts", self.theory_conflicts),
                    ("restarts", self.restarts),
                    ("learned_clauses", self.learned_clauses),
                    ("clause_db", self.clause_db),
                    ("retained_clauses", self.retained_clauses),
                    ("deleted_clauses", self.deleted_clauses),
                ],
            ),
            (
                Phase::Simplex,
                vec![
                    ("pivots", self.pivots),
                    ("bound_asserts", self.bound_asserts),
                    ("theory_checks", self.theory_checks),
                    ("warm_pivots_saved", self.warm_pivots_saved),
                ],
            ),
        ]
    }

    /// Serializes the counters as a JSON object grouped by phase, with a
    /// fixed key order (deterministic — safe to byte-compare).
    pub fn to_json_into(&self, out: &mut String) {
        out.push('{');
        for (i, (phase, counters)) in self.grouped().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{{", phase.token());
            for (k, (name, value)) in counters.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{value}");
            }
            out.push('}');
        }
        out.push('}');
    }

    /// The JSON form as a fresh string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.to_json_into(&mut out);
        out
    }

    /// Renders the end-of-run phase table (the `--metrics` output).
    pub fn table(&self) -> String {
        let mut table = Table::new(&[
            ("phase", Align::Left),
            ("counter", Align::Left),
            ("total", Align::Right),
        ]);
        for (phase, counters) in self.grouped() {
            for (name, value) in counters {
                table.row(&[phase.token(), name, &value.to_string()]);
            }
        }
        table.render()
    }
}

/// Observational per-phase data — wall clocks and base-cache behavior —
/// kept strictly apart from [`PhaseMetrics`] (the same discipline as the
/// campaign report's `timing` keys: serialize it only where timing is
/// wanted). Cache hits live here rather than in the deterministic
/// counters because session reuse depends on which worker executed which
/// job: the same campaign run at different worker counts legitimately
/// hits the cache a different number of times.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTimings {
    /// Time spent encoding (Tseitin + cardinality + base-cache extension).
    pub encode: Duration,
    /// Time spent in search (CDCL loop including theory checks).
    pub search: Duration,
    /// Checks that reused a cached base encoding.
    pub cache_hits: u64,
    /// Checks that built their base encoding from scratch.
    pub cache_misses: u64,
    /// Basis refactorizations by the revised simplex engine (zero on the
    /// dense engine). Observational: the refactorization schedule is an
    /// engine implementation detail, so — like cache behavior — it must
    /// never leak into [`PhaseMetrics`], whose aggregates are compared
    /// byte for byte across engine modes.
    pub refactorizations: u64,
}

impl PhaseTimings {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTimings) {
        self.encode += other.encode;
        self.search += other.search;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.refactorizations += other.refactorizations;
    }

    /// The wall time of `phase`, if this struct tracks it separately
    /// (simplex time is part of search).
    pub fn wall_of(&self, phase: Phase) -> Option<Duration> {
        match phase {
            Phase::Encode => Some(self.encode),
            Phase::Search => Some(self.search),
            Phase::Simplex => None,
        }
    }

    /// Serializes as a JSON fragment
    /// (`"encode_ms":…,"search_ms":…,"cache_hits":…,"cache_misses":…,`
    /// `"refactorizations":…`).
    pub fn to_json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "\"encode_ms\":{:.3},\"search_ms\":{:.3},\"cache_hits\":{},\"cache_misses\":{},\
             \"refactorizations\":{}",
            self.encode.as_secs_f64() * 1e3,
            self.search.as_secs_f64() * 1e3,
            self.cache_hits,
            self.cache_misses,
            self.refactorizations,
        );
    }
}

/// One observability event. The JSONL trace file is one event per line.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A run (one CLI check or one campaign) begins.
    RunStart {
        /// Run name (campaign name, or `verify:<case>`-style for one-shots).
        name: String,
        /// Number of jobs the run will execute.
        jobs: usize,
    },
    /// A job was picked up.
    JobStart {
        /// Job id within the run.
        job: usize,
        /// Job label.
        label: String,
        /// Case name the job ran against.
        case: String,
    },
    /// Per-phase counters of a finished job. `wall_us` is the phase's wall
    /// clock where tracked separately (trace files are observational and
    /// include timing; only the *report* strips it).
    Phase {
        /// Job id within the run.
        job: usize,
        /// Which phase the counters describe.
        phase: Phase,
        /// `(name, value)` counter pairs in serialization order.
        counters: Vec<(&'static str, u64)>,
        /// Wall clock of the phase in microseconds, when tracked.
        wall_us: Option<u64>,
    },
    /// One node of a job's profiling span tree, flattened to a
    /// `/`-joined path (see [`crate::profile::flatten_spans`]). Span
    /// times are wall clocks, so — like every `wall_us` here — they
    /// appear in trace files but never in timing-stripped reports.
    Span {
        /// Job id within the run.
        job: usize,
        /// `/`-joined span path (e.g. `verify/encode/delta`).
        path: String,
        /// Number of spans merged into this node.
        count: u64,
        /// Inclusive wall time in microseconds.
        incl_us: u64,
        /// Exclusive (self) wall time in microseconds.
        excl_us: u64,
    },
    /// A sampled point of a solver progress timeline, recorded at CDCL
    /// decision boundaries while a check runs (conflict/restart/pivot
    /// rates over time, for watching a long solve converge or thrash).
    Progress {
        /// Job id within the run.
        job: usize,
        /// Time since the check started, in microseconds.
        at_us: u64,
        /// `(name, value)` cumulative counter pairs in serialization
        /// order (`decisions`, `conflicts`, `restarts`, `propagations`,
        /// `pivots`).
        counters: Vec<(&'static str, u64)>,
    },
    /// A periodic campaign-level heartbeat: how far a multi-job run has
    /// progressed. Emitted by the campaign pool while jobs execute so a
    /// client watching the trace channel sees liveness between job
    /// completions. Elapsed time is a wall clock — observational only,
    /// never part of a timing-stripped report.
    Heartbeat {
        /// Jobs finished so far.
        done: usize,
        /// Jobs the run will execute in total.
        total: usize,
        /// Time since the run started, in microseconds.
        elapsed_us: u64,
    },
    /// A job finished.
    JobEnd {
        /// Job id within the run.
        job: usize,
        /// Verdict token (`sat`, `unsat`, `unknown(timeout)`, …).
        verdict: String,
        /// Job wall clock in microseconds.
        wall_us: u64,
    },
    /// The run finished.
    RunEnd {
        /// Run name, matching the `RunStart`.
        name: String,
        /// Total wall clock in microseconds.
        wall_us: u64,
    },
}

impl TraceEvent {
    /// Serializes the event as one JSON object (one JSONL line, no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        match self {
            TraceEvent::RunStart { name, jobs } => {
                out.push_str("{\"event\":\"run-start\",\"name\":");
                escape_into(name, &mut out);
                let _ = write!(out, ",\"jobs\":{jobs}}}");
            }
            TraceEvent::JobStart { job, label, case } => {
                let _ = write!(out, "{{\"event\":\"job-start\",\"job\":{job},\"label\":");
                escape_into(label, &mut out);
                out.push_str(",\"case\":");
                escape_into(case, &mut out);
                out.push('}');
            }
            TraceEvent::Phase { job, phase, counters, wall_us } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"phase\",\"job\":{job},\"phase\":\"{}\",\"counters\":{{",
                    phase.token()
                );
                for (i, (name, value)) in counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{name}\":{value}");
                }
                out.push('}');
                if let Some(us) = wall_us {
                    let _ = write!(out, ",\"wall_us\":{us}");
                }
                out.push('}');
            }
            TraceEvent::Span { job, path, count, incl_us, excl_us } => {
                let _ = write!(out, "{{\"event\":\"span\",\"job\":{job},\"path\":");
                escape_into(path, &mut out);
                let _ = write!(
                    out,
                    ",\"count\":{count},\"incl_us\":{incl_us},\"excl_us\":{excl_us}}}"
                );
            }
            TraceEvent::Progress { job, at_us, counters } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"progress\",\"job\":{job},\"at_us\":{at_us},\"counters\":{{"
                );
                for (i, (name, value)) in counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{name}\":{value}");
                }
                out.push_str("}}");
            }
            TraceEvent::Heartbeat { done, total, elapsed_us } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"heartbeat\",\"done\":{done},\"total\":{total},\
                     \"elapsed_us\":{elapsed_us}}}"
                );
            }
            TraceEvent::JobEnd { job, verdict, wall_us } => {
                let _ = write!(out, "{{\"event\":\"job-end\",\"job\":{job},\"verdict\":");
                escape_into(verdict, &mut out);
                let _ = write!(out, ",\"wall_us\":{wall_us}}}");
            }
            TraceEvent::RunEnd { name, wall_us } => {
                out.push_str("{\"event\":\"run-end\",\"name\":");
                escape_into(name, &mut out);
                let _ = write!(out, ",\"wall_us\":{wall_us}}}");
            }
        }
        out
    }
}

/// A consumer of [`TraceEvent`]s.
///
/// Sinks must be `Send` so a [`SharedSink`] can carry them across the
/// campaign pool's worker threads.
pub trait TraceSink: Send {
    /// Consumes one event. Implementations must not panic on I/O failure
    /// (observability must never abort an analysis run).
    fn emit(&mut self, event: &TraceEvent);
}

/// Writes each event as one JSON line to an [`io::Write`](std::io::Write)
/// (the `--trace <path>` file format). Write errors are swallowed — a full
/// disk degrades the trace, not the run.
pub struct JsonlSink<W: Write + Send> {
    inner: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        JsonlSink { inner }
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        let _ = writeln!(self.inner, "{}", event.to_json());
    }
}

/// Collects events into a shared vector — the in-process sink used by
/// tests and embedders. Clones share the same buffer.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// A snapshot of the events collected so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock(&self.events).clone()
    }
}

impl TraceSink for CollectSink {
    fn emit(&mut self, event: &TraceEvent) {
        lock(&self.events).push(event.clone());
    }
}

/// A thread-safe handle around a boxed sink, shared by reference across
/// the campaign pool's workers. Emission order between concurrently
/// finishing jobs is nondeterministic (the trace is observational); each
/// job's own events stay contiguous because they are emitted in one
/// critical section by [`SharedSink::emit_all`].
pub struct SharedSink {
    inner: Mutex<Box<dyn TraceSink>>,
}

impl SharedSink {
    /// Wraps a sink for cross-thread sharing.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        SharedSink { inner: Mutex::new(sink) }
    }

    /// Emits one event.
    pub fn emit(&self, event: &TraceEvent) {
        lock(&self.inner).emit(event);
    }

    /// Emits a batch of events without interleaving from other threads.
    pub fn emit_all(&self, events: &[TraceEvent]) {
        let mut sink = lock(&self.inner);
        for event in events {
            sink.emit(event);
        }
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSink").finish_non_exhaustive()
    }
}

/// Locks a mutex, shrugging off poisoning: sinks hold append-only buffers
/// or writers, never half-updated invariants.
fn lock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let mut a = PhaseMetrics::default();
        a.clauses = 1;
        a.decisions = 2;
        a.pivots = 3;
        let mut b = PhaseMetrics::default();
        b.clauses = 10;
        b.decisions = 20;
        b.pivots = 30;
        a.merge(&b);
        assert_eq!(a.clauses, 11);
        assert_eq!(a.decisions, 22);
        assert_eq!(a.pivots, 33);
    }

    #[test]
    fn json_is_deterministic_and_grouped() {
        let mut m = PhaseMetrics::default();
        m.clauses = 7;
        m.theory_checks = 5;
        m.warm_pivots_saved = 2;
        let json = m.to_json();
        assert_eq!(json, m.to_json());
        assert!(json.starts_with("{\"encode\":{\"clauses\":7,"));
        assert!(json.ends_with("\"warm_pivots_saved\":2}}"));
        assert!(json.contains("\"theory_checks\":5"));
        assert!(json.contains("\"retained_clauses\":0"));
        assert!(json.contains("\"search\":{"));
    }

    #[test]
    fn table_lists_all_phases() {
        let table = PhaseMetrics::default().table();
        for phase in ["encode", "search", "simplex"] {
            assert!(table.contains(phase), "{table}");
        }
        assert!(table.contains("propagations"));
    }

    #[test]
    fn events_serialize_with_escaping() {
        let ev = TraceEvent::JobStart {
            job: 3,
            label: "state=4 \"q\"".into(),
            case: "ieee14".into(),
        };
        let json = ev.to_json();
        assert!(json.starts_with("{\"event\":\"job-start\",\"job\":3,"));
        assert!(json.contains("\\\"q\\\""));
        let ph = TraceEvent::Phase {
            job: 0,
            phase: Phase::Simplex,
            counters: vec![("pivots", 4)],
            wall_us: None,
        };
        assert_eq!(
            ph.to_json(),
            "{\"event\":\"phase\",\"job\":0,\"phase\":\"simplex\",\"counters\":{\"pivots\":4}}"
        );
    }

    #[test]
    fn heartbeat_serializes_progress_fraction() {
        let hb = TraceEvent::Heartbeat { done: 3, total: 12, elapsed_us: 4500 };
        assert_eq!(
            hb.to_json(),
            "{\"event\":\"heartbeat\",\"done\":3,\"total\":12,\"elapsed_us\":4500}"
        );
    }

    #[test]
    fn jsonl_sink_writes_lines_and_collect_sink_collects() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.emit(&TraceEvent::RunStart { name: "t".into(), jobs: 1 });
            sink.emit(&TraceEvent::RunEnd { name: "t".into(), wall_us: 9 });
        }
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"run-start\""));

        let collect = CollectSink::new();
        let shared = SharedSink::new(Box::new(collect.clone()));
        shared.emit(&TraceEvent::RunStart { name: "s".into(), jobs: 2 });
        shared.emit_all(&[TraceEvent::RunEnd { name: "s".into(), wall_us: 1 }]);
        assert_eq!(collect.events().len(), 2);
    }

    #[test]
    fn timings_stay_separate_from_metrics() {
        let mut t = PhaseTimings::default();
        t.encode = Duration::from_millis(2);
        t.cache_misses = 1;
        t.merge(&PhaseTimings {
            encode: Duration::from_millis(1),
            search: Duration::from_millis(4),
            cache_hits: 2,
            cache_misses: 0,
            refactorizations: 3,
        });
        assert_eq!(t.encode, Duration::from_millis(3));
        assert_eq!(t.search, Duration::from_millis(4));
        assert_eq!(t.cache_hits, 2);
        assert_eq!(t.cache_misses, 1);
        assert_eq!(t.refactorizations, 3);
        assert_eq!(t.wall_of(Phase::Simplex), None);
        let mut out = String::new();
        t.to_json_into(&mut out);
        assert!(out.starts_with("\"encode_ms\":3"));
        assert!(out.ends_with("\"cache_misses\":1,\"refactorizations\":3"));
        // Cache behavior and the refactorization schedule are
        // engine/scheduling-dependent, so they must never leak into the
        // deterministic counters.
        assert!(!PhaseMetrics::default().to_json().contains("cache"));
        assert!(!PhaseMetrics::default().to_json().contains("refactor"));
    }
}
