//! Exact rational numbers and delta-rationals.
//!
//! [`Rational`] is a normalized fraction of [`BigInt`]s — the coefficient
//! domain for linear terms and the simplex tableau. [`DeltaRational`] extends
//! it with an infinitesimal `δ` component so strict bounds (`x < c`) can be
//! represented exactly as `x ≤ c − δ`, the standard trick from the
//! Dutertre–de Moura general simplex.
//!
//! # Examples
//!
//! ```
//! use sta_smt::rational::Rational;
//!
//! let a = Rational::new(1, 3);
//! let b = Rational::new(1, 6);
//! assert_eq!(&a + &b, Rational::new(1, 2));
//! assert_eq!(Rational::from_decimal_str("16.90").unwrap(), Rational::new(169, 10));
//! ```

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den`.
///
/// Invariants: `den > 0`, `gcd(|num|, den) = 1`, zero is `0/1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

/// Error returned by [`Rational::from_decimal_str`] for malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    input: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal literal: {:?}", self.input)
    }
}

impl std::error::Error for ParseRationalError {}

impl Rational {
    /// Creates `num / den` from machine integers, normalizing the result.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        Self::from_bigints(BigInt::from(num), BigInt::from(den))
    }

    /// Creates `num / den` from big integers, normalizing the result.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (num, den) = if den.is_negative() { (-num, -den) } else { (num, den) };
        if num.is_zero() {
            return Rational { num: BigInt::zero(), den: BigInt::one() };
        }
        let g = num.gcd(&den);
        if g.is_one() {
            Rational { num, den }
        } else {
            Rational { num: &num / &g, den: &den / &g }
        }
    }

    /// Returns zero.
    pub fn zero() -> Self {
        Rational { num: BigInt::zero(), den: BigInt::one() }
    }

    /// Returns one.
    pub fn one() -> Self {
        Rational { num: BigInt::one(), den: BigInt::one() }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Whether this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if this rational is zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero");
        Self::from_bigints(self.den.clone(), self.num.clone())
    }

    /// Parses a decimal literal such as `"16.90"`, `"-0.25"` or `"3"` into an
    /// exact rational.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRationalError`] when the input is not a plain decimal
    /// literal (scientific notation is not accepted).
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseRationalError> {
        let err = || ParseRationalError { input: s.to_owned() };
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() {
            return Err(err());
        }
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(err());
        }
        let mut num = BigInt::zero();
        let ten = BigInt::from(10i64);
        for ch in int_part.chars().chain(frac_part.chars()) {
            let d = ch.to_digit(10).ok_or_else(err)?;
            num = &(&num * &ten) + &BigInt::from(d as i64);
        }
        let mut den = BigInt::one();
        for _ in 0..frac_part.len() {
            den = &den * &ten;
        }
        if neg {
            num = -num;
        }
        Ok(Self::from_bigints(num, den))
    }

    /// Converts an `f64` to the exact rational it represents.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite.
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "cannot convert non-finite float to rational");
        if v == 0.0 {
            return Rational::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = if exponent == 0 {
            bits & 0xf_ffff_ffff_ffff
        } else {
            (bits & 0xf_ffff_ffff_ffff) | 0x10_0000_0000_0000
        };
        let exp2 = if exponent == 0 { -1074 } else { exponent - 1075 };
        let m = &BigInt::from(mantissa) * &BigInt::from(sign);
        let two = BigInt::from(2i64);
        let mut pow = BigInt::one();
        for _ in 0..exp2.unsigned_abs() {
            pow = &pow * &two;
        }
        if exp2 >= 0 {
            Self::from_bigints(&m * &pow, BigInt::one())
        } else {
            Self::from_bigints(m, pow)
        }
    }

    /// Lossy conversion to `f64` (reporting only; never used while solving).
    pub fn to_f64(&self) -> f64 {
        // Scale so the division happens in a range f64 can represent.
        let nf = self.num.to_f64();
        let df = self.den.to_f64();
        if nf.is_finite() && df.is_finite() && df != 0.0 {
            nf / df
        } else {
            // Fall back to a quotient-based approximation for huge operands.
            let (q, r) = self.num.divmod(&self.den);
            q.to_f64() + r.to_f64() / self.den.to_f64()
        }
    }

    /// Total limbs across numerator and denominator (memory accounting).
    pub fn limb_len(&self) -> usize {
        self.num.limb_len() + self.den.limb_len()
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational { num: BigInt::from(v), den: BigInt::one() }
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational { num: v, den: BigInt::one() }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        Rational::from_bigints(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        Rational::from_bigints(
            &(&self.num * &other.den) - &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        Rational::from_bigints(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "division by zero rational");
        Rational::from_bigints(&self.num * &other.den, &self.den * &other.num)
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -&self.num, den: self.den.clone() }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                (&self).$method(&other)
            }
        }
    };
}
forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// A rational extended with an infinitesimal: `value + delta·δ`.
///
/// Strict bounds become weak bounds over delta-rationals:
/// `x < c` ⇔ `x ≤ c − δ`. Comparison is lexicographic on
/// `(value, delta)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRational {
    /// Standard (real) part.
    pub value: Rational,
    /// Coefficient of the infinitesimal δ.
    pub delta: Rational,
}

impl DeltaRational {
    /// A plain rational with no infinitesimal part.
    pub fn real(value: Rational) -> Self {
        DeltaRational { value, delta: Rational::zero() }
    }

    /// `value + delta·δ`.
    pub fn with_delta(value: Rational, delta: Rational) -> Self {
        DeltaRational { value, delta }
    }

    /// Zero.
    pub fn zero() -> Self {
        DeltaRational::real(Rational::zero())
    }

    /// Whether both components are zero.
    pub fn is_zero(&self) -> bool {
        self.value.is_zero() && self.delta.is_zero()
    }

    /// Scales both components by a rational factor.
    pub fn scale(&self, k: &Rational) -> Self {
        DeltaRational {
            value: &self.value * k,
            delta: &self.delta * k,
        }
    }

    /// Concretizes to a plain rational by substituting a small positive value
    /// for δ. `eps` must be small enough that all strict comparisons in the
    /// current model remain strict; the caller computes a safe value.
    pub fn concretize(&self, eps: &Rational) -> Rational {
        &self.value + &(&self.delta * eps)
    }
}

impl PartialOrd for DeltaRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeltaRational {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .cmp(&other.value)
            .then_with(|| self.delta.cmp(&other.delta))
    }
}

impl Add for &DeltaRational {
    type Output = DeltaRational;
    fn add(self, other: &DeltaRational) -> DeltaRational {
        DeltaRational {
            value: &self.value + &other.value,
            delta: &self.delta + &other.delta,
        }
    }
}

impl Sub for &DeltaRational {
    type Output = DeltaRational;
    fn sub(self, other: &DeltaRational) -> DeltaRational {
        DeltaRational {
            value: &self.value - &other.value,
            delta: &self.delta - &other.delta,
        }
    }
}

impl Neg for &DeltaRational {
    type Output = DeltaRational;
    fn neg(self) -> DeltaRational {
        DeltaRational { value: -&self.value, delta: -&self.delta }
    }
}

impl fmt::Display for DeltaRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta.is_zero() {
            write!(f, "{}", self.value)
        } else {
            write!(f, "{} + {}δ", self.value, self.delta)
        }
    }
}

/// `Rational` is the exact coefficient field of the revised simplex's
/// sparse LU kernels in `sta-linalg`.
impl sta_linalg::Scalar for Rational {
    fn zero() -> Self {
        Rational::zero()
    }
    fn one() -> Self {
        Rational::one()
    }
    fn is_zero(&self) -> bool {
        Rational::is_zero(self)
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn recip(&self) -> Self {
        Rational::recip(self)
    }
}

/// Delta-rational right-hand sides solve against rational basis factors
/// without refactoring: FTRAN/BTRAN only ever scale vector elements by
/// rational factor entries, which `DeltaRational::scale` supports exactly.
impl sta_linalg::VectorElem<Rational> for DeltaRational {
    fn zero() -> Self {
        DeltaRational::zero()
    }
    fn is_zero(&self) -> bool {
        DeltaRational::is_zero(self)
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn scale(&self, k: &Rational) -> Self {
        DeltaRational::scale(self, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(0, -5).denom(), &BigInt::one());
    }

    #[test]
    fn field_operations() {
        assert_eq!(&r(1, 3) + &r(1, 6), r(1, 2));
        assert_eq!(&r(1, 3) - &r(1, 6), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 3), r(1, 2));
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(-r(3, 7), r(-3, 7));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(0, 1));
        assert!(r(7, 2) > r(10, 3));
    }

    #[test]
    fn decimal_parsing() {
        assert_eq!(Rational::from_decimal_str("16.90").unwrap(), r(169, 10));
        assert_eq!(Rational::from_decimal_str("-0.25").unwrap(), r(-1, 4));
        assert_eq!(Rational::from_decimal_str("3").unwrap(), r(3, 1));
        assert_eq!(Rational::from_decimal_str(".5").unwrap(), r(1, 2));
        assert_eq!(Rational::from_decimal_str("+2.").unwrap(), r(2, 1));
        assert!(Rational::from_decimal_str("").is_err());
        assert!(Rational::from_decimal_str("1.2.3").is_err());
        assert!(Rational::from_decimal_str("1e5").is_err());
        assert!(Rational::from_decimal_str(".").is_err());
    }

    #[test]
    fn f64_round_trip() {
        for v in [0.0, 1.0, -1.5, 0.1, 1234.5678, -1e-9, 2f64.powi(53)] {
            let q = Rational::from_f64(v);
            assert_eq!(q.to_f64(), v, "{v}");
        }
        // 0.1 is not exactly 1/10 in binary; from_f64 must be exact, not pretty.
        assert_ne!(Rational::from_f64(0.1), r(1, 10));
    }

    #[test]
    fn delta_rational_ordering() {
        let a = DeltaRational::real(r(1, 1));
        let b = DeltaRational::with_delta(r(1, 1), r(-1, 1)); // 1 - δ
        let c = DeltaRational::with_delta(r(1, 1), r(1, 1)); // 1 + δ
        assert!(b < a);
        assert!(a < c);
        assert_eq!(&a - &a, DeltaRational::zero());
    }

    #[test]
    fn delta_scale_and_concretize() {
        let x = DeltaRational::with_delta(r(3, 1), r(-2, 1));
        let s = x.scale(&r(1, 2));
        assert_eq!(s.value, r(3, 2));
        assert_eq!(s.delta, r(-1, 1));
        assert_eq!(s.concretize(&r(1, 100)), r(149, 100));
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(-3, 4).to_string(), "-3/4");
        assert_eq!(
            DeltaRational::with_delta(r(1, 2), r(-1, 1)).to_string(),
            "1/2 + -1δ"
        );
    }
}
