//! Certification of solver answers.
//!
//! `sat` answers are certified by re-evaluating every asserted [`Formula`]
//! under the extracted model with exact rational arithmetic
//! ([`eval_formula`]). `unsat` answers are certified by replaying the
//! solver's clause proof ([`crate::sat::ProofLog`]) through an independent
//! RUP checker ([`check_unsat_proof`]): learned clauses must follow from
//! the active clause set by reverse unit propagation, and theory lemmas
//! must carry a Farkas certificate that is verified arithmetically against
//! the atom semantics exported by the simplex ([`TheoryContext`]) — the
//! checker shares no code with conflict analysis or the tableau, so a bug
//! in either is caught rather than reproduced.

use std::collections::HashMap;

use crate::expr::RealVar;
use crate::formula::{CmpOp, Formula, Node};
use crate::rational::{DeltaRational, Rational};
use crate::sat::proof::{FarkasCertificate, ProofLog, ProofStep};
use crate::sat::{LBool, Lit, SatVar};

/// How much certification to perform after each `check()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CertifyLevel {
    /// No certification (production default).
    #[default]
    Off,
    /// Re-evaluate models of SAT answers against the original formulas.
    CheckModels,
    /// CheckModels plus DRAT/RUP proof replay of UNSAT answers, with
    /// formula linting in deny mode before solving.
    Full,
}

/// A certification failure.
#[derive(Debug, Clone)]
pub struct CertifyError {
    /// Description of the failure.
    pub message: String,
}

impl CertifyError {
    /// Builds an error from any message.
    pub fn new(message: impl Into<String>) -> Self {
        CertifyError { message: message.into() }
    }
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "certification failed: {}", self.message)
    }
}

impl std::error::Error for CertifyError {}

/// Arithmetic meaning of one registered SAT atom.
///
/// The positive phase of the atom's SAT variable asserts
/// `Σ coeff·var ≤ bound` (`<` when `strict`); the negative phase asserts
/// the negation `Σ coeff·var > bound` (`≥` when `strict`). This mirrors
/// the upper-bound normal form the simplex uses internally, but is
/// expressed over *problem* variables so certificates can be checked
/// without consulting the tableau.
#[derive(Debug, Clone)]
pub struct AtomSemantics {
    /// The linear form, as `(variable, coefficient)` pairs.
    pub expansion: Vec<(RealVar, Rational)>,
    /// The right-hand side.
    pub bound: Rational,
    /// Whether the positive phase is strict (`<` rather than `≤`).
    pub strict: bool,
}

/// Atom semantics for every theory-registered SAT variable, exported by
/// [`crate::simplex::Simplex::certificate_context`].
#[derive(Debug, Clone, Default)]
pub struct TheoryContext {
    /// SAT variable → meaning of its positive literal.
    pub atoms: HashMap<SatVar, AtomSemantics>,
}

/// Evaluates a formula under a full assignment, with exact arithmetic.
///
/// Out-of-range variables read as `false` / `0` — the solver allocates
/// model vectors densely, so this only matters for hand-built inputs.
pub fn eval_formula(f: &Formula, bools: &[bool], reals: &[Rational]) -> bool {
    let eval = |g: &Formula| eval_formula(g, bools, reals);
    match &*f.0 {
        Node::True => true,
        Node::False => false,
        Node::Var(v) => bools.get(v.0 as usize).copied().unwrap_or(false),
        Node::Atom(expr, op) => {
            let value = expr.eval(|rv| {
                reals.get(rv.0 as usize).cloned().unwrap_or_else(Rational::zero)
            });
            match op {
                CmpOp::Le => !value.is_positive(),
                CmpOp::Lt => value.is_negative(),
                CmpOp::Ge => !value.is_negative(),
                CmpOp::Gt => value.is_positive(),
                CmpOp::Eq => value.is_zero(),
                CmpOp::Ne => !value.is_zero(),
            }
        }
        Node::Not(g) => !eval(g),
        Node::And(gs) => gs.iter().all(eval),
        Node::Or(gs) => gs.iter().any(eval),
        Node::Implies(a, b) => !eval(a) || eval(b),
        Node::Iff(a, b) => eval(a) == eval(b),
        Node::AtMost(gs, k) => gs.iter().filter(|g| eval(g)).count() <= *k,
        Node::AtLeast(gs, k) => gs.iter().filter(|g| eval(g)).count() >= *k,
    }
}

/// Checks one theory lemma against its Farkas certificate.
///
/// The lemma clause is the negation of a set of asserted atom literals the
/// theory found jointly infeasible. The certificate lists those literals
/// with nonnegative multipliers; writing each literal's inequality in
/// `≤` orientation (negative literals flip sign), the weighted linear
/// forms must cancel to zero while the weighted bounds sum to a negative
/// delta-rational — a self-contained infeasibility witness. Every
/// certificate literal must appear negated in the lemma (the lemma may be
/// weaker, never stronger).
pub fn check_theory_lemma(
    clause: &[Lit],
    cert: Option<&FarkasCertificate>,
    ctx: &TheoryContext,
) -> Result<(), CertifyError> {
    let cert = cert.ok_or_else(|| CertifyError::new("theory lemma without a Farkas certificate"))?;
    if cert.terms.is_empty() {
        return Err(CertifyError::new("empty Farkas certificate"));
    }
    let mut form: HashMap<RealVar, Rational> = HashMap::new();
    let mut bound_sum = DeltaRational::zero();
    for (lit, lambda) in &cert.terms {
        if lambda.is_negative() {
            return Err(CertifyError::new(format!(
                "negative Farkas multiplier for {lit}"
            )));
        }
        if !clause.contains(&!*lit) {
            return Err(CertifyError::new(format!(
                "certificate literal {lit} is not negated in the lemma clause"
            )));
        }
        let atom = ctx.atoms.get(&lit.var()).ok_or_else(|| {
            CertifyError::new(format!("certificate references unregistered atom {lit}"))
        })?;
        // ≤-oriented inequality asserted by the literal.
        let (sign, delta) = if lit.is_positive() {
            // expansion ≤ bound (δ = −1 when strict)
            (lambda.clone(), if atom.strict { -&Rational::one() } else { Rational::zero() })
        } else {
            // expansion > bound, i.e. −expansion ≤ −(bound + δ), with
            // δ = +1 when the positive phase was nonstrict.
            (-lambda, if atom.strict { Rational::zero() } else { Rational::one() })
        };
        for (rv, c) in &atom.expansion {
            let entry = form.entry(*rv).or_insert_with(Rational::zero);
            *entry = &*entry + &(&sign * c);
        }
        let lit_bound = DeltaRational::with_delta(atom.bound.clone(), delta);
        bound_sum = &bound_sum + &lit_bound.scale(&sign);
    }
    if let Some((rv, c)) = form.iter().find(|(_, c)| !c.is_zero()) {
        return Err(CertifyError::new(format!(
            "Farkas combination does not cancel: residual {c} · r{}",
            rv.0
        )));
    }
    if !(bound_sum < DeltaRational::zero()) {
        return Err(CertifyError::new(
            "Farkas combination is not infeasible (weighted bound sum is nonnegative)",
        ));
    }
    Ok(())
}

/// A clause tracked by the RUP checker.
#[derive(Debug)]
struct CheckerClause {
    lits: Vec<Lit>,
    active: bool,
}

/// An independent reverse-unit-propagation checker.
///
/// Maintains the clause set active at the current point of the proof with
/// its own two-watched-literal propagation and a *persistent* root trail:
/// after every addition the root assignment is at unit-propagation
/// fixpoint, so a RUP check only assumes the candidate clause's negation
/// on top, propagates, and undoes back to the mark. Deletions deactivate
/// clauses lazily (watch lists skip inactive entries).
#[derive(Debug, Default)]
pub struct RupChecker {
    clauses: Vec<CheckerClause>,
    /// Normalized (sorted) literal vector → ids, for deletions.
    index: HashMap<Vec<Lit>, Vec<usize>>,
    /// `lit.index()` → clause ids watching that literal.
    watches: Vec<Vec<usize>>,
    assign: Vec<LBool>,
    trail: Vec<Lit>,
    qhead: usize,
    /// A root-level conflict has been derived: every clause is entailed.
    proved: bool,
}

impl RupChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        RupChecker::default()
    }

    /// Whether the empty clause has been derived.
    pub fn proved(&self) -> bool {
        self.proved
    }

    fn ensure_var(&mut self, v: SatVar) {
        let need = v as usize + 1;
        if self.assign.len() < need {
            self.assign.resize(need, LBool::Undef);
            self.watches.resize(need * 2, Vec::new());
        }
    }

    fn value(&self, lit: Lit) -> LBool {
        self.assign[lit.var() as usize].of_lit(lit)
    }

    fn enqueue(&mut self, lit: Lit) {
        self.assign[lit.var() as usize] =
            if lit.is_positive() { LBool::True } else { LBool::False };
        self.trail.push(lit);
    }

    /// Propagates to fixpoint; returns `false` on conflict. The watch
    /// invariant (each active clause watches its first two literals, and a
    /// watched literal is only False if the clause is satisfied or the
    /// conflict was reported) is preserved across undos because undoing
    /// only turns False literals back to Undef.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !lit;
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                if !self.clauses[ci].active {
                    watchers.swap_remove(i);
                    continue;
                }
                // Normalize: watched literals are positions 0 and 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.value(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Find a replacement watch among the tail.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.value(cand) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.index()].push(ci);
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting on `first`.
                match self.value(first) {
                    LBool::Undef => {
                        self.enqueue(first);
                        i += 1;
                    }
                    _ => {
                        self.watches[false_lit.index()] = watchers;
                        return false;
                    }
                }
            }
            self.watches[false_lit.index()] = watchers;
        }
        true
    }

    /// Undoes all assignments made after `mark`.
    fn undo_to(&mut self, mark: usize) {
        for lit in self.trail.drain(mark..) {
            self.assign[lit.var() as usize] = LBool::Undef;
        }
        self.qhead = mark;
    }

    /// Checks that `lits` follows from the active set by reverse unit
    /// propagation: assuming its negation must yield a conflict.
    pub fn rup_entailed(&mut self, lits: &[Lit]) -> bool {
        if self.proved {
            return true;
        }
        for &l in lits {
            self.ensure_var(l.var());
        }
        let mark = self.trail.len();
        let mut conflict = false;
        for &l in lits {
            match self.value(l) {
                // The root trail already satisfies a literal: assuming its
                // negation is an immediate conflict.
                LBool::True => {
                    conflict = true;
                    break;
                }
                LBool::False => {}
                LBool::Undef => self.enqueue(!l),
            }
        }
        let entailed = conflict || !self.propagate();
        self.undo_to(mark);
        entailed
    }

    /// Adds a clause to the active set, propagating any consequences at
    /// the root. A conflict (from the empty clause or propagation) marks
    /// the refutation as complete.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.ensure_var(l.var());
        }
        let id = self.clauses.len();
        let mut key: Vec<Lit> = lits.to_vec();
        key.sort_unstable();
        self.index.entry(key).or_default().push(id);
        self.clauses.push(CheckerClause { lits: lits.to_vec(), active: true });
        match lits.len() {
            0 => {
                self.proved = true;
                return;
            }
            1 => match self.value(lits[0]) {
                LBool::False => {
                    self.proved = true;
                    return;
                }
                LBool::True => {}
                LBool::Undef => self.enqueue(lits[0]),
            },
            _ => {
                // Watch two non-False literals when possible; an added
                // clause that is already unit under the root trail must
                // propagate now, and an already-falsified one concludes
                // the proof.
                let mut front = 0;
                for k in 0..self.clauses[id].lits.len() {
                    if front >= 2 {
                        break;
                    }
                    let l = self.clauses[id].lits[k];
                    if self.value(l) != LBool::False {
                        self.clauses[id].lits.swap(front, k);
                        front += 1;
                    }
                }
                let (w0, w1) = (self.clauses[id].lits[0], self.clauses[id].lits[1]);
                self.watches[w0.index()].push(id);
                self.watches[w1.index()].push(id);
                match front {
                    0 => {
                        self.proved = true;
                        return;
                    }
                    1 => {
                        if self.value(w0) == LBool::Undef {
                            self.enqueue(w0);
                        }
                    }
                    _ => {}
                }
            }
        }
        if !self.propagate() {
            self.proved = true;
        }
    }

    /// Deactivates one active clause with exactly these literals.
    pub fn delete_clause(&mut self, lits: &[Lit]) -> Result<(), CertifyError> {
        let mut key: Vec<Lit> = lits.to_vec();
        key.sort_unstable();
        let ids = self.index.get_mut(&key).ok_or_else(|| {
            CertifyError::new("proof deletes a clause that was never added")
        })?;
        let pos = ids
            .iter()
            .position(|&i| self.clauses[i].active)
            .ok_or_else(|| CertifyError::new("proof deletes an already-deleted clause"))?;
        let id = ids.swap_remove(pos);
        self.clauses[id].active = false;
        Ok(())
    }
}

/// Replays an UNSAT proof against the logged original CNF.
///
/// Original clauses are axioms; learned clauses (including the final
/// empty clause) must pass reverse unit propagation against the clauses
/// active at their point in the log; theory lemmas must carry Farkas
/// certificates valid under `ctx`. Succeeds only if the log derives the
/// empty clause.
pub fn check_unsat_proof(proof: &ProofLog, ctx: &TheoryContext) -> Result<(), CertifyError> {
    let checker = replay_steps(proof, ctx)?;
    if checker.proved() {
        Ok(())
    } else {
        Err(CertifyError::new("proof does not derive the empty clause"))
    }
}

/// Replays the proof of an UNSAT-under-assumptions answer.
///
/// Unlike [`check_unsat_proof`], the clause set itself need not be
/// refuted. The answer is certified when either the empty clause is
/// derived (unsatisfiable outright, assumptions irrelevant) or the final
/// learned clause in the log is a failed-assumption core: RUP-validated
/// during replay like every learned clause, and consisting solely of
/// literals from `negated_assumptions` — a checked witness that the
/// assumption set contradicts the (activation-guarded) clause set.
/// Retracted-scope clauses logged in earlier checks of the same session
/// stay in the log but are inert: their retirement units are root-level
/// axioms, so the replayed root trail satisfies every guarded clause
/// before it can participate in a derivation.
pub fn check_assumption_unsat_proof(
    proof: &ProofLog,
    ctx: &TheoryContext,
    negated_assumptions: &[Lit],
) -> Result<(), CertifyError> {
    let checker = replay_steps(proof, ctx)?;
    if checker.proved() {
        return Ok(());
    }
    let core = proof.steps.iter().rev().find_map(|s| match s {
        ProofStep::Learned(lits) => Some(lits),
        _ => None,
    });
    match core {
        Some(lits) if lits.iter().all(|l| negated_assumptions.contains(l)) => Ok(()),
        Some(lits) => Err(CertifyError::new(format!(
            "final learned clause {} is not a failed-assumption core \
             (it has literals outside the negated assumptions)",
            display_clause(lits)
        ))),
        None => Err(CertifyError::new(
            "proof has no learned clause to serve as a failed-assumption core",
        )),
    }
}

/// Replays every step of `proof`, RUP-checking learned clauses and
/// Farkas-checking theory lemmas, and returns the resulting checker state.
/// Shared by [`check_unsat_proof`] and [`check_assumption_unsat_proof`].
fn replay_steps(proof: &ProofLog, ctx: &TheoryContext) -> Result<RupChecker, CertifyError> {
    let mut checker = RupChecker::new();
    for (n, step) in proof.steps.iter().enumerate() {
        match step {
            ProofStep::Original(lits) => checker.add_clause(lits),
            ProofStep::Learned(lits) => {
                if !checker.rup_entailed(lits) {
                    return Err(CertifyError::new(format!(
                        "proof step {n}: learned clause {} is not RUP",
                        display_clause(lits)
                    )));
                }
                checker.add_clause(lits);
            }
            ProofStep::TheoryLemma(lits, cert) => {
                check_theory_lemma(lits, cert.as_ref(), ctx)
                    .map_err(|e| CertifyError::new(format!("proof step {n}: {}", e.message)))?;
                checker.add_clause(lits);
            }
            ProofStep::Delete(lits) => {
                checker
                    .delete_clause(lits)
                    .map_err(|e| CertifyError::new(format!("proof step {n}: {}", e.message)))?;
            }
        }
    }
    Ok(checker)
}

fn display_clause(lits: &[Lit]) -> String {
    if lits.is_empty() {
        return "⊥".to_string();
    }
    let parts: Vec<String> = lits.iter().map(|l| l.to_string()).collect();
    format!("({})", parts.join(" ∨ "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::formula::{BoolVar, LinExprCmp};
    use crate::sat::{CdclSolver, NullTheory, SatOutcome};

    fn num(n: i64) -> Rational {
        Rational::new(n, 1)
    }

    #[test]
    fn eval_formula_covers_connectives() {
        let p = Formula::var(BoolVar(0));
        let q = Formula::var(BoolVar(1));
        let x = LinExpr::var(RealVar(0));
        let atom = x.clone().le(LinExpr::from(2)); // x ≤ 2
        let f = Formula::and(vec![
            Formula::or(vec![p.clone(), q.clone()]),
            p.clone().implies(atom.clone()),
            Formula::at_most(vec![p.clone(), q.clone()], 1),
        ]);
        let reals = [num(2)];
        assert!(eval_formula(&f, &[true, false], &reals));
        // x = 3 violates the implication when p holds.
        assert!(!eval_formula(&f, &[true, false], &[num(3)]));
        // Both p and q break the at-most-1.
        assert!(!eval_formula(&f, &[true, true], &reals));
        // Strict and equality operators.
        assert!(eval_formula(&x.clone().lt(LinExpr::from(1)), &[], &[num(0)]));
        assert!(!eval_formula(&x.clone().lt(LinExpr::from(0)), &[], &[num(0)]));
        assert!(eval_formula(&x.clone().eq_expr(LinExpr::from(0)), &[], &[num(0)]));
        assert!(eval_formula(&x.ne_expr(LinExpr::from(1)), &[], &[num(0)]));
    }

    /// A hand-written resolution proof for the 2-variable complete CNF.
    #[test]
    fn rup_replay_accepts_valid_proof() {
        let p = |v| Lit::positive(v);
        let n = |v| Lit::negative(v);
        let mut log = ProofLog::new();
        log.log_original(vec![p(0), p(1)]);
        log.log_original(vec![n(0), p(1)]);
        log.log_original(vec![p(0), n(1)]);
        log.log_original(vec![n(0), n(1)]);
        log.log_learned(vec![p(1)]);
        log.log_learned(vec![]);
        assert!(check_unsat_proof(&log, &TheoryContext::default()).is_ok());
    }

    #[test]
    fn rup_replay_rejects_non_rup_step() {
        let p = |v| Lit::positive(v);
        let n = |v| Lit::negative(v);
        let mut log = ProofLog::new();
        log.log_original(vec![p(0), p(1)]);
        log.log_original(vec![n(0), p(1)]);
        // (p0 ∨ ¬p1) is missing: ¬p1 no longer propagates a conflict.
        log.log_original(vec![n(0), n(1)]);
        log.log_learned(vec![p(1)]);
        log.log_learned(vec![n(1)]);
        log.log_learned(vec![]);
        let err = check_unsat_proof(&log, &TheoryContext::default()).unwrap_err();
        assert!(err.message.contains("not RUP"), "{}", err.message);
    }

    #[test]
    fn rup_replay_requires_empty_clause() {
        let mut log = ProofLog::new();
        log.log_original(vec![Lit::positive(0)]);
        let err = check_unsat_proof(&log, &TheoryContext::default()).unwrap_err();
        assert!(err.message.contains("empty clause"), "{}", err.message);
    }

    /// End to end against the real CDCL core: the pigeonhole instance
    /// PHP(3,2) is UNSAT; its logged proof must replay, and corrupting a
    /// learned step must be caught.
    #[test]
    fn cdcl_proof_replays_and_corruption_is_caught() {
        let mut sat = CdclSolver::new();
        sat.enable_proof();
        // Pigeon i ∈ {0,1,2} in hole j ∈ {0,1}: var 2i+j.
        let v = |i: u32, j: u32| 2 * i + j;
        for _ in 0..6 {
            sat.new_var();
        }
        for i in 0..3 {
            sat.add_clause(vec![Lit::positive(v(i, 0)), Lit::positive(v(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    sat.add_clause(vec![
                        Lit::negative(v(i1, j)),
                        Lit::negative(v(i2, j)),
                    ]);
                }
            }
        }
        assert_eq!(sat.solve(&mut NullTheory), SatOutcome::Unsat);
        let proof = sat.take_proof().expect("proof logging was enabled");
        assert!(proof.derives_empty_clause());
        let ctx = TheoryContext::default();
        assert!(check_unsat_proof(&proof, &ctx).is_ok());

        // Corrupt the first learned step into a claim about a fresh,
        // unconstrained variable: RUP must fail.
        let mut bad = proof.clone();
        let idx = bad
            .steps
            .iter()
            .position(|s| matches!(s, ProofStep::Learned(l) if !l.is_empty()))
            .expect("proof has a nonempty learned clause");
        bad.steps[idx] = ProofStep::Learned(vec![Lit::positive(100)]);
        let err = check_unsat_proof(&bad, &ctx).unwrap_err();
        assert!(err.message.contains("not RUP"), "{}", err.message);
    }

    fn two_atom_ctx() -> TheoryContext {
        // Atom 0: x ≤ 1 (nonstrict); atom 1: x < 2 (strict).
        let mut atoms = HashMap::new();
        atoms.insert(
            0,
            AtomSemantics {
                expansion: vec![(RealVar(0), Rational::one())],
                bound: num(1),
                strict: false,
            },
        );
        atoms.insert(
            1,
            AtomSemantics {
                expansion: vec![(RealVar(0), Rational::one())],
                bound: num(2),
                strict: true,
            },
        );
        TheoryContext { atoms }
    }

    #[test]
    fn farkas_certificate_checks_and_rejects_tampering() {
        let ctx = two_atom_ctx();
        // Asserted: atom0 (x ≤ 1) and ¬atom1 (x ≥ 2) — jointly infeasible.
        let clause = vec![Lit::negative(0), Lit::positive(1)];
        let cert = FarkasCertificate {
            terms: vec![
                (Lit::positive(0), Rational::one()),
                (Lit::negative(1), Rational::one()),
            ],
        };
        assert!(check_theory_lemma(&clause, Some(&cert), &ctx).is_ok());

        // Missing certificate is rejected outright.
        assert!(check_theory_lemma(&clause, None, &ctx).is_err());

        // Tampered multiplier: the linear forms no longer cancel.
        let mut bad = cert.clone();
        bad.terms[0].1 = num(2);
        let err = check_theory_lemma(&clause, Some(&bad), &ctx).unwrap_err();
        assert!(err.message.contains("cancel"), "{}", err.message);

        // A certificate over feasible bounds: x ≤ 1 with ¬(x ≤ 1)'s
        // literal replaced so the bound sum is nonnegative.
        let mut atoms = HashMap::new();
        atoms.insert(
            0,
            AtomSemantics {
                expansion: vec![(RealVar(0), Rational::one())],
                bound: num(5),
                strict: false,
            },
        );
        atoms.insert(
            1,
            AtomSemantics {
                expansion: vec![(RealVar(0), Rational::one())],
                bound: num(2),
                strict: true,
            },
        );
        let loose = TheoryContext { atoms };
        let err = check_theory_lemma(&clause, Some(&cert), &loose).unwrap_err();
        assert!(err.message.contains("not infeasible"), "{}", err.message);

        // A certificate literal whose negation is missing from the lemma.
        let short = vec![Lit::negative(0)];
        let err = check_theory_lemma(&short, Some(&cert), &ctx).unwrap_err();
        assert!(err.message.contains("not negated"), "{}", err.message);
    }

    /// Assumption-UNSAT certification: the CDCL logs the failed-assumption
    /// core as its final learned clause; the replay validates it by RUP and
    /// accepts only cores built from negated assumptions.
    #[test]
    fn assumption_unsat_proof_replays_and_tampering_is_caught() {
        let mut sat = CdclSolver::new();
        sat.enable_proof();
        let a = sat.new_var();
        let b = sat.new_var();
        sat.add_clause(vec![Lit::positive(a), Lit::positive(b)]);
        let assumptions = [Lit::negative(a), Lit::negative(b)];
        assert_eq!(
            sat.solve_under_assumptions(&assumptions, &mut NullTheory),
            SatOutcome::Unsat
        );
        assert!(!sat.failed_assumptions().is_empty());
        let proof = sat.proof().expect("logging enabled").clone();
        // Not a refutation of the clause set: the strict entry must refuse.
        assert!(!proof.derives_empty_clause());
        let ctx = TheoryContext::default();
        let err = check_unsat_proof(&proof, &ctx).unwrap_err();
        assert!(err.message.contains("empty clause"), "{}", err.message);
        // The assumption-aware entry accepts with the matching negations…
        let negated: Vec<Lit> = assumptions.iter().map(|&l| !l).collect();
        assert!(check_assumption_unsat_proof(&proof, &ctx, &negated).is_ok());
        // …rejects when the core is not covered by the claimed assumptions…
        let err = check_assumption_unsat_proof(&proof, &ctx, &negated[..1]).unwrap_err();
        assert!(err.message.contains("outside"), "{}", err.message);
        // …and rejects a tampered core that smuggles in a free literal.
        let mut bad = proof.clone();
        let idx = bad
            .steps
            .iter()
            .rposition(|s| matches!(s, ProofStep::Learned(_)))
            .expect("core was logged");
        bad.steps[idx] = ProofStep::Learned(vec![Lit::positive(50)]);
        let err = check_assumption_unsat_proof(&bad, &ctx, &negated).unwrap_err();
        assert!(err.message.contains("not RUP"), "{}", err.message);
    }

    /// A genuinely unsatisfiable instance certifies through the
    /// assumption-aware entry too (the empty clause short-circuits the
    /// core check).
    #[test]
    fn assumption_entry_accepts_outright_refutations() {
        let mut sat = CdclSolver::new();
        sat.enable_proof();
        let a = sat.new_var();
        sat.add_clause(vec![Lit::positive(a)]);
        sat.add_clause(vec![Lit::negative(a)]);
        assert_eq!(
            sat.solve_under_assumptions(&[Lit::positive(a)], &mut NullTheory),
            SatOutcome::Unsat
        );
        assert!(sat.failed_assumptions().is_empty());
        let proof = sat.proof().expect("logging enabled").clone();
        let ctx = TheoryContext::default();
        assert!(check_assumption_unsat_proof(&proof, &ctx, &[Lit::negative(a)]).is_ok());
    }

    /// Retired-scope hygiene: guarded clauses whose activation was
    /// retracted may not contribute to a later core. After retirement the
    /// solver must find the relaxed instance satisfiable, and a proof that
    /// still pretended to use the retracted constraint would need the
    /// guarded clause un-guarded — which is not among the axioms.
    #[test]
    fn retired_guard_clauses_cannot_resurface_in_proofs() {
        let mut sat = CdclSolver::new();
        sat.enable_proof();
        let act = sat.new_var();
        let x = sat.new_var();
        // Scope clause: act → ¬x. Retire it, then assume x.
        sat.add_clause(vec![Lit::negative(act), Lit::negative(x)]);
        sat.add_clause(vec![Lit::negative(act)]); // retirement unit
        assert_eq!(sat.purge_literal(Lit::negative(act)), 1);
        let mut th = NullTheory;
        assert_eq!(
            sat.solve_under_assumptions(&[Lit::positive(x)], &mut th),
            SatOutcome::Sat,
            "retracted scope must not constrain x"
        );
        // Adversarial: a forged core claiming x still fails must not be
        // RUP against the replayed clause set (the guarded clause is
        // satisfied at the replay root by the retirement unit).
        let mut forged = sat.proof().expect("logging enabled").clone();
        forged.steps.push(ProofStep::Learned(vec![Lit::negative(x)]));
        let ctx = TheoryContext::default();
        let err =
            check_assumption_unsat_proof(&forged, &ctx, &[Lit::negative(x)]).unwrap_err();
        assert!(err.message.contains("not RUP"), "{}", err.message);
    }

    #[test]
    fn deletions_are_tracked() {
        let mut checker = RupChecker::new();
        let c = vec![Lit::positive(0), Lit::positive(1), Lit::positive(2)];
        checker.add_clause(&c);
        assert!(checker.delete_clause(&c).is_ok());
        assert!(checker.delete_clause(&c).is_err());
        assert!(checker
            .delete_clause(&[Lit::positive(7)])
            .unwrap_err()
            .message
            .contains("never added"));
    }
}
