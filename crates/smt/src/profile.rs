//! Hierarchical span profiling over an injectable clock.
//!
//! The deterministic counters in [`crate::trace`] say *what* the solver
//! did; this module answers *where the wall clock went* — encode vs
//! search vs simplex vs certification, base vs delta encoding, and the
//! per-iteration phases of the synthesis CEGIS loop. Three pieces:
//!
//! * [`Clock`] — the one source of elapsed time for every profiled
//!   subsystem. Production code uses the monotonic variant; tests inject
//!   a [`FakeClock`] and advance it by hand, which turns timing
//!   assertions from flaky sleeps into exact arithmetic.
//! * [`Profiler`] + [`SpanGuard`] — an RAII span stack. A guard opens a
//!   span when created and closes it when dropped; nesting guards nests
//!   spans. Closed spans merge by name into their parent, so a thousand
//!   CEGIS iterations collapse into one `iterate` node with
//!   `count = 1000` rather than a thousand siblings.
//! * [`SpanNode`] — the resulting tree: per-name call counts and
//!   inclusive wall time, with exclusive (self) time derived as
//!   inclusive minus the sum of child inclusive times. Trees from
//!   different workers merge deterministically by name.
//!
//! Span times are observational (scheduling-dependent), so they follow
//! the same discipline as [`crate::trace::PhaseTimings`]: they are
//! rendered by `--profile` and emitted in trace files, but never enter
//! the timing-stripped campaign report that the determinism gate
//! byte-compares.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::tablefmt::{Align, Table};

/// A monotonic time source, replaceable by a fake in tests.
///
/// All variants report [`Duration`] since an arbitrary epoch fixed at
/// construction; only differences between readings are meaningful.
/// Cloning shares the epoch (and, for fakes, the underlying counter),
/// so every subsystem handed a clone of one clock reads consistent time.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Real time from [`Instant`], relative to a construction-time epoch.
    Monotonic {
        /// The instant all readings are measured from.
        epoch: Instant,
    },
    /// Test time: a shared nanosecond counter advanced explicitly.
    Fake(Arc<AtomicU64>),
}

impl Clock {
    /// A real monotonic clock starting at zero now.
    pub fn monotonic() -> Self {
        Clock::Monotonic { epoch: Instant::now() }
    }

    /// A fake clock (starting at zero) plus the handle that advances it.
    pub fn fake() -> (Self, FakeClock) {
        let counter = Arc::new(AtomicU64::new(0));
        (Clock::Fake(Arc::clone(&counter)), FakeClock(counter))
    }

    /// Time elapsed since this clock's epoch.
    pub fn now(&self) -> Duration {
        match self {
            Clock::Monotonic { epoch } => epoch.elapsed(),
            Clock::Fake(ns) => Duration::from_nanos(ns.load(Ordering::Relaxed)),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

/// The advancing half of a [`Clock::fake`] pair.
#[derive(Debug, Clone)]
pub struct FakeClock(Arc<AtomicU64>);

impl FakeClock {
    /// Moves the paired clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

/// One node of a completed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (static: span sites are code locations, not data).
    pub name: &'static str,
    /// How many spans of this name closed at this tree position.
    pub count: u64,
    /// Total wall time inside the span, children included.
    pub inclusive: Duration,
    /// Child spans, in first-opened order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Self time: inclusive minus the children's inclusive total.
    /// Saturates at zero (a fake clock can advance during a child span
    /// only, making the children nominally "longer" than the parent).
    pub fn exclusive(&self) -> Duration {
        let children: Duration = self.children.iter().map(|c| c.inclusive).sum();
        self.inclusive.saturating_sub(children)
    }
}

/// Merges `other` into `nodes`, matching children by name recursively.
/// Unmatched nodes append in `other`'s order, so merging is
/// deterministic for any fixed operand order.
pub fn merge_spans(nodes: &mut Vec<SpanNode>, other: &[SpanNode]) {
    for node in other {
        if let Some(existing) = nodes.iter_mut().find(|n| n.name == node.name) {
            existing.count += node.count;
            existing.inclusive += node.inclusive;
            merge_spans(&mut existing.children, &node.children);
        } else {
            nodes.push(node.clone());
        }
    }
}

/// Renders a span forest as the `--profile` table: one indented row per
/// node with call count, inclusive, and exclusive (self) milliseconds.
pub fn render_spans(nodes: &[SpanNode]) -> String {
    let mut table = Table::new(&[
        ("span", Align::Left),
        ("count", Align::Right),
        ("incl ms", Align::Right),
        ("self ms", Align::Right),
    ]);
    fn walk(table: &mut Table, nodes: &[SpanNode], depth: usize) {
        for node in nodes {
            table.row(&[
                format!("{}{}", "  ".repeat(depth), node.name),
                node.count.to_string(),
                format!("{:.3}", node.inclusive.as_secs_f64() * 1e3),
                format!("{:.3}", node.exclusive().as_secs_f64() * 1e3),
            ]);
            walk(table, &node.children, depth + 1);
        }
    }
    walk(&mut table, nodes, 0);
    table.render()
}

/// Flattens a span forest to `(path, node)` rows in depth-first order,
/// with `/`-joined paths (`verify/encode/delta`). This is the shape the
/// `TraceEvent::Span` records carry.
pub fn flatten_spans(nodes: &[SpanNode]) -> Vec<(String, SpanNode)> {
    fn walk(nodes: &[SpanNode], prefix: &str, out: &mut Vec<(String, SpanNode)>) {
        for node in nodes {
            let path = if prefix.is_empty() {
                node.name.to_string()
            } else {
                format!("{prefix}/{}", node.name)
            };
            out.push((path.clone(), node.clone()));
            walk(&node.children, &path, out);
        }
    }
    let mut out = Vec::new();
    walk(nodes, "", &mut out);
    out
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    started: Duration,
    children: Vec<SpanNode>,
}

#[derive(Debug, Default)]
struct ProfilerState {
    roots: Vec<SpanNode>,
    stack: Vec<OpenSpan>,
}

/// A cloneable handle to one span stack.
///
/// Clones share state, so a solver, the session driving it, and the
/// synthesis loop above both can each hold a handle and their spans
/// nest naturally. The handle is cheap enough to thread everywhere but
/// profiling is opt-in: unprofiled code paths carry `Option<Profiler>`
/// set to `None` and pay only the `is_some` check.
///
/// One profiler serves one logical thread of work at a time (the span
/// stack is a stack); the campaign pool gives each worker its own and
/// merges the resulting trees by name.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    state: Arc<Mutex<ProfilerState>>,
    clock: Clock,
}

impl Profiler {
    /// A profiler over the real monotonic clock.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// A profiler over an explicit clock (inject a fake in tests).
    pub fn with_clock(clock: Clock) -> Self {
        Profiler { state: Arc::default(), clock }
    }

    /// The clock this profiler reads. Subsystems that need raw readings
    /// (histograms, report walls) clone this instead of calling
    /// [`Instant::now`] themselves, so a fake clock steers everything.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Opens a span; it closes (and merges into its parent) when the
    /// returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let started = self.clock.now();
        lock(&self.state).stack.push(OpenSpan { name, started, children: Vec::new() });
        SpanGuard { profiler: self }
    }

    /// Records an already-measured leaf span under the innermost open
    /// span (or at the root if none is open). Used where RAII guards
    /// would sit in too hot a loop — e.g. simplex self-time accumulated
    /// by the theory solver's own timers and attached once per check.
    pub fn record_leaf(&self, name: &'static str, elapsed: Duration, count: u64) {
        let mut state = lock(&self.state);
        let state = &mut *state;
        let siblings = match state.stack.last_mut() {
            Some(open) => &mut open.children,
            None => &mut state.roots,
        };
        merge_spans(
            siblings,
            &[SpanNode { name, count, inclusive: elapsed, children: Vec::new() }],
        );
    }

    fn close_top(&self) {
        let ended = self.clock.now();
        let mut state = lock(&self.state);
        let state = &mut *state;
        let Some(open) = state.stack.pop() else { return };
        let node = SpanNode {
            name: open.name,
            count: 1,
            inclusive: ended.saturating_sub(open.started),
            children: open.children,
        };
        let siblings = match state.stack.last_mut() {
            Some(parent) => &mut parent.children,
            None => &mut state.roots,
        };
        merge_spans(siblings, &[node]);
    }

    /// A snapshot of the completed span forest (open spans excluded).
    pub fn snapshot(&self) -> Vec<SpanNode> {
        lock(&self.state).roots.clone()
    }

    /// Drains and returns the completed span forest.
    pub fn take(&self) -> Vec<SpanNode> {
        std::mem::take(&mut lock(&self.state).roots)
    }
}

/// RAII guard for one open span; dropping it closes the span.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    profiler: &'a Profiler,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.profiler.close_top();
    }
}

/// Locks, shrugging off poisoning: the state is a tree of plain values
/// with no cross-field invariant a panic could tear.
fn lock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_is_exact() {
        let (clock, handle) = Clock::fake();
        assert_eq!(clock.now(), Duration::ZERO);
        handle.advance(Duration::from_micros(250));
        assert_eq!(clock.now(), Duration::from_micros(250));
        let shared = clock.clone();
        handle.advance(Duration::from_micros(50));
        assert_eq!(shared.now(), Duration::from_micros(300));
    }

    #[test]
    fn nested_spans_build_a_tree_and_merge_by_name() {
        let (clock, handle) = Clock::fake();
        let prof = Profiler::with_clock(clock);
        for _ in 0..3 {
            let _outer = prof.span("solve");
            handle.advance(Duration::from_millis(1));
            {
                let _inner = prof.span("encode");
                handle.advance(Duration::from_millis(2));
            }
            {
                let _inner = prof.span("search");
                handle.advance(Duration::from_millis(4));
            }
        }
        let roots = prof.snapshot();
        assert_eq!(roots.len(), 1);
        let solve = &roots[0];
        assert_eq!(solve.name, "solve");
        assert_eq!(solve.count, 3);
        assert_eq!(solve.inclusive, Duration::from_millis(21));
        assert_eq!(solve.children.len(), 2);
        assert_eq!(solve.children[0].name, "encode");
        assert_eq!(solve.children[0].count, 3);
        assert_eq!(solve.children[0].inclusive, Duration::from_millis(6));
        assert_eq!(solve.children[1].inclusive, Duration::from_millis(12));
        // Exclusive (self) time of the root is what its children do not
        // account for, and the tree is conservation-exact.
        assert_eq!(solve.exclusive(), Duration::from_millis(3));
        let child_sum: Duration = solve.children.iter().map(|c| c.inclusive).sum();
        assert_eq!(solve.exclusive() + child_sum, solve.inclusive);
    }

    #[test]
    fn record_leaf_attaches_under_open_span() {
        let (clock, _handle) = Clock::fake();
        let prof = Profiler::with_clock(clock);
        {
            let _search = prof.span("search");
            prof.record_leaf("simplex", Duration::from_millis(5), 2);
            prof.record_leaf("simplex", Duration::from_millis(3), 1);
        }
        let roots = prof.snapshot();
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].count, 3);
        assert_eq!(roots[0].children[0].inclusive, Duration::from_millis(8));
    }

    #[test]
    fn merge_is_by_name_and_order_preserving() {
        let mk = |name, ms| SpanNode {
            name,
            count: 1,
            inclusive: Duration::from_millis(ms),
            children: Vec::new(),
        };
        let mut a = vec![mk("x", 1), mk("y", 2)];
        merge_spans(&mut a, &[mk("y", 10), mk("z", 100)]);
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].inclusive, Duration::from_millis(12));
        assert_eq!(a[1].count, 2);
        assert_eq!(a[2].name, "z");
    }

    #[test]
    fn flatten_produces_slash_paths() {
        let (clock, handle) = Clock::fake();
        let prof = Profiler::with_clock(clock);
        {
            let _a = prof.span("verify");
            let _b = prof.span("encode");
            handle.advance(Duration::from_millis(1));
        }
        let flat = flatten_spans(&prof.snapshot());
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["verify", "verify/encode"]);
    }

    #[test]
    fn render_aligns_and_indents() {
        let (clock, handle) = Clock::fake();
        let prof = Profiler::with_clock(clock);
        {
            let _a = prof.span("outer");
            let _b = prof.span("inner");
            handle.advance(Duration::from_millis(2));
        }
        let text = render_spans(&prof.snapshot());
        assert!(text.contains("span"), "{text}");
        assert!(text.contains("\n  inner") || text.contains(" inner"), "{text}");
        assert!(text.contains("2.000"), "{text}");
    }

    #[test]
    fn take_drains_state() {
        let prof = Profiler::new();
        {
            let _s = prof.span("once");
        }
        assert_eq!(prof.take().len(), 1);
        assert!(prof.snapshot().is_empty());
    }
}
