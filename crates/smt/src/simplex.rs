//! General simplex decision procedure for quantifier-free linear real
//! arithmetic (QF_LRA), in the style of Dutertre and de Moura (CAV'06).
//!
//! The solver maintains a tableau of linear equalities over *solver
//! variables* (problem variables plus slack variables, one per distinct
//! linear form), a pair of optional bounds per variable, and a candidate
//! assignment `β` of [`DeltaRational`]s. Strict bounds are represented
//! exactly with the infinitesimal `δ` component. It plugs into the CDCL core
//! through the [`Theory`] trait: asserted atom literals become bound
//! updates, and `check` restores the bound invariants by pivoting, reporting
//! minimal conflicting bound sets as explanations.
//!
//! Pivoting uses Bland's rule (smallest-index selection for both leaving and
//! entering variables), which guarantees termination.

use crate::budget::Budget;
use crate::certify::{AtomSemantics, TheoryContext};
use crate::expr::{LinExpr, RealVar};
use crate::rational::{DeltaRational, Rational};
use crate::sat::proof::FarkasCertificate;
use crate::sat::{Lit, SatVar, Theory, TheoryResult};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Internal solver-variable index (problem variables and slacks).
type SVar = usize;

/// Which side of a variable a bound constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundKind {
    Lower,
    Upper,
}

/// A bound imposed by an asserted literal.
#[derive(Debug, Clone)]
struct Bound {
    value: DeltaRational,
    /// The literal whose assertion installed this bound (explanation term).
    lit: Lit,
}

/// Undo record for one bound overwrite.
#[derive(Debug, Clone)]
struct Undo {
    var: SVar,
    kind: BoundKind,
    previous: Option<Bound>,
}

/// How an atom constrains its variable when its SAT literal is *true*.
///
/// The positive phase is always an upper bound `var ≤ value` (strict or
/// not); the negative phase is the complementary lower bound. Lower-bound
/// atoms from the input are normalized into this form by flipping polarity
/// at registration time.
#[derive(Debug, Clone)]
struct AtomBinding {
    var: SVar,
    bound: Rational,
    strict: bool,
}

/// The simplex LRA theory solver.
///
/// Create one, register slack definitions and atoms while encoding the
/// formula, then hand it to [`crate::sat::CdclSolver::solve`].
///
/// `Clone` supports the template-and-clone incremental scheme of
/// [`crate::Solver`]: a tableau built during encoding (but never solved)
/// clones cheaply, and each clone is solved independently.
#[derive(Debug, Default, Clone)]
pub struct Simplex {
    /// `β`: the candidate assignment.
    assignment: Vec<DeltaRational>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    /// Tableau rows: `rows[r]` defines `basic[r] = Σ coeff·nonbasic`.
    rows: Vec<BTreeMap<SVar, Rational>>,
    /// Basic variable of each row.
    basic: Vec<SVar>,
    /// `row_of[v] = Some(r)` iff `v` is basic in row `r`.
    row_of: Vec<Option<usize>>,
    /// `cols[v]`: rows whose right-hand side mentions `v` (v nonbasic).
    cols: Vec<Vec<usize>>,
    /// Map from SAT atom variable to its bound semantics.
    atoms: HashMap<SatVar, AtomBinding>,
    /// Map from problem [`RealVar`] index to solver variable.
    real_vars: Vec<SVar>,
    /// Dedup of slack variables by normalized linear form.
    slack_by_form: HashMap<Vec<(SVar, Rational)>, SVar>,
    /// Per-decision-level undo stacks.
    trail: Vec<Vec<Undo>>,
    /// Number of pivots performed (statistics).
    pivots: u64,
    /// Number of bound assertions received from the SAT core (statistics).
    bound_asserts: u64,
    /// Number of full consistency checks run (statistics).
    theory_checks: u64,
    /// Farkas certificate for the most recent conflict, consumed by proof
    /// logging through [`Theory::take_certificate`].
    last_certificate: Option<FarkasCertificate>,
    /// Deadline / cancellation budget polled in the pivot loop.
    budget: Budget,
    /// Populate [`Simplex::debug_timers`] even without `STA_SMT_DEBUG`
    /// (turned on by the span profiler, which attaches the accumulated
    /// simplex self-time as a leaf under the search span).
    timing_enabled: bool,
    /// Debug accounting (populated when `STA_SMT_DEBUG` is set or timing
    /// was enabled by a profiler): time in `repair_nonbasic`, in the
    /// violation/entering scans, and in `pivot_and_update`, plus
    /// scan-iteration count.
    pub debug_timers: DebugTimers,
}

/// Internal instrumentation; see [`Simplex::debug_timers`].
#[derive(Debug, Default, Clone)]
pub struct DebugTimers {
    /// Time spent repairing nonbasic assignments.
    pub repair: std::time::Duration,
    /// Time spent scanning for violations/entering variables.
    pub scan: std::time::Duration,
    /// Time spent pivoting.
    pub pivot: std::time::Duration,
    /// Number of outer check iterations.
    pub iterations: u64,
}

impl Simplex {
    /// Creates an empty theory solver.
    pub fn new() -> Self {
        Simplex::default()
    }

    /// Number of solver variables (problem + slack).
    pub fn num_vars(&self) -> usize {
        self.assignment.len()
    }

    /// Number of tableau rows (slack definitions).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total number of tableau entries (memory statistic).
    pub fn tableau_entries(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    /// Number of pivot operations performed so far.
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Number of bound assertions received from the SAT core so far.
    pub fn bound_asserts(&self) -> u64 {
        self.bound_asserts
    }

    /// Number of full consistency checks run so far.
    pub fn theory_checks(&self) -> u64 {
        self.theory_checks
    }

    /// Installs the budget polled by the pivot loop. An exhausted budget
    /// makes [`Theory::check`] return [`TheoryResult::Interrupted`], which
    /// the SAT core converts into an `Unknown` outcome.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Turns on [`Simplex::debug_timers`] accounting unconditionally
    /// (instead of only under `STA_SMT_DEBUG`). The per-phase `Instant`
    /// reads cost a few percent on pivot-heavy instances, so this stays
    /// opt-in with the profiler.
    pub fn enable_timing(&mut self) {
        self.timing_enabled = true;
    }

    fn new_svar(&mut self) -> SVar {
        let v = self.assignment.len();
        self.assignment.push(DeltaRational::zero());
        self.lower.push(None);
        self.upper.push(None);
        self.row_of.push(None);
        self.cols.push(Vec::new());
        v
    }

    /// Ensures problem variable `rv` has a solver variable; returns it.
    pub fn solver_var(&mut self, rv: RealVar) -> SVar {
        let idx = rv.0 as usize;
        // analysis: no-poll(grows the variable table up to a fixed index)
        while self.real_vars.len() <= idx {
            let sv = self.new_svar();
            self.real_vars.push(sv);
        }
        self.real_vars[idx]
    }

    /// Returns the solver variable representing the variable part of `expr`
    /// (the constant term is ignored — callers fold it into bounds).
    ///
    /// Single-variable forms with unit coefficient map to the problem
    /// variable directly; anything else gets a (deduplicated) slack variable
    /// defined by a tableau row.
    pub fn var_for_form(&mut self, expr: &LinExpr) -> SVar {
        debug_assert!(!expr.is_constant(), "constant atoms fold in Formula::cmp");
        if expr.len() == 1 {
            let (v, c) = expr.iter().next().map(|(v, c)| (v, c.clone())).unwrap();
            if c == Rational::one() {
                return self.solver_var(v);
            }
        }
        let form: Vec<(SVar, Rational)> = {
            let pairs: Vec<(RealVar, Rational)> =
                expr.iter().map(|(v, c)| (v, c.clone())).collect();
            pairs
                .into_iter()
                .map(|(v, c)| (self.solver_var(v), c))
                .collect()
        };
        if let Some(&s) = self.slack_by_form.get(&form) {
            return s;
        }
        let s = self.new_svar();
        // Row: s = Σ coeff·var. Substitute any variables that are already
        // basic so the row mentions only nonbasic variables.
        let mut row: BTreeMap<SVar, Rational> = BTreeMap::new();
        for (v, c) in &form {
            if let Some(r) = self.row_of[*v] {
                let sub = self.rows[r].clone();
                for (w, cw) in sub {
                    add_to_row(&mut row, w, &(c * &cw));
                }
            } else {
                add_to_row(&mut row, *v, c);
            }
        }
        let ridx = self.rows.len();
        for &v in row.keys() {
            self.cols[v].push(ridx);
        }
        // β[s] must satisfy the row under the current assignment.
        let val = row.iter().fold(DeltaRational::zero(), |acc, (v, c)| {
            &acc + &self.assignment[*v].scale(c)
        });
        self.assignment[s] = val;
        self.rows.push(row);
        self.basic.push(s);
        self.row_of[s] = Some(ridx);
        self.slack_by_form.insert(form, s);
        s
    }

    /// Registers a SAT atom variable: when `sat_var` is assigned true the
    /// constraint `var ≤ bound` (strict if `strict`) holds; when false, the
    /// complementary lower bound holds.
    pub fn register_atom(&mut self, sat_var: SatVar, var: SVar, bound: Rational, strict: bool) {
        self.atoms.insert(sat_var, AtomBinding { var, bound, strict });
    }

    /// The current value of problem variable `rv`, if it has been seen.
    pub fn value_of(&self, rv: RealVar) -> Option<&DeltaRational> {
        self.real_vars
            .get(rv.0 as usize)
            .map(|&sv| &self.assignment[sv])
    }

    /// Computes a positive `ε` small enough that substituting it for `δ`
    /// keeps every asserted bound satisfied, then returns the concretized
    /// rational value of every problem variable.
    ///
    /// Call only after a successful solve (all bounds satisfied by `β`).
    pub fn concrete_model(&self) -> Vec<Rational> {
        let mut eps = Rational::one();
        let mut shrink = |gap_real: &Rational, gap_delta: &Rational| {
            // Constraint satisfied in delta order: gap_real + gap_delta·δ ≥ 0
            // with (gap_real, gap_delta) ≥lex 0. If gap_real > 0 but
            // gap_delta < 0, ε must stay ≤ gap_real / (−gap_delta).
            if gap_real.is_positive() && gap_delta.is_negative() {
                let limit = gap_real / &(-gap_delta);
                if limit < eps {
                    eps = limit;
                }
            }
        };
        for v in 0..self.assignment.len() {
            let beta = &self.assignment[v];
            if let Some(lb) = &self.lower[v] {
                let gap = beta - &lb.value;
                shrink(&gap.value, &gap.delta);
            }
            if let Some(ub) = &self.upper[v] {
                let gap = &ub.value - beta;
                shrink(&gap.value, &gap.delta);
            }
        }
        let half = &eps * &Rational::new(1, 2);
        self.real_vars
            .iter()
            .map(|&sv| self.assignment[sv].concretize(&half))
            .collect()
    }

    /// Exports the atom semantics needed to check Farkas certificates
    /// independently of the tableau: each registered SAT atom resolved to
    /// its bound and to the expansion of its solver variable over the
    /// *problem* variables (slack forms are recorded at creation time over
    /// problem variables only, so no tableau state is consulted).
    pub fn certificate_context(&self) -> TheoryContext {
        // Inverse of `real_vars`: solver variable → problem variable.
        let mut problem_var: HashMap<SVar, RealVar> = HashMap::new();
        for (i, &sv) in self.real_vars.iter().enumerate() {
            problem_var.insert(sv, RealVar(i as u32));
        }
        // Slack expansions, mapped back into problem-variable space.
        let mut expansion: HashMap<SVar, Vec<(RealVar, Rational)>> = HashMap::new();
        for (form, &s) in &self.slack_by_form {
            let terms = form
                .iter()
                .filter_map(|(sv, c)| {
                    problem_var.get(sv).map(|&rv| (rv, c.clone()))
                })
                .collect();
            expansion.insert(s, terms);
        }
        let mut atoms = HashMap::new();
        for (&sat_var, binding) in &self.atoms {
            let terms = match problem_var.get(&binding.var) {
                Some(&rv) => vec![(rv, Rational::one())],
                None => expansion.get(&binding.var).cloned().unwrap_or_default(),
            };
            atoms.insert(
                sat_var,
                AtomSemantics {
                    expansion: terms,
                    bound: binding.bound.clone(),
                    strict: binding.strict,
                },
            );
        }
        TheoryContext { atoms }
    }

    /// Audits the tableau invariants; compiled only under the
    /// `certify-debug` feature and called at pivot boundaries (after
    /// nonbasic repair and after each pivot), where they must all hold.
    ///
    /// # Panics
    /// Panics on the first violated invariant — an audit failure is a
    /// solver bug, never an input error.
    #[cfg(feature = "certify-debug")]
    fn audit_invariants(&self) {
        for (r, row) in self.rows.iter().enumerate() {
            let b = self.basic[r];
            assert_eq!(self.row_of[b], Some(r), "basic var {b} points to row {r}");
            assert!(!row.contains_key(&b), "row {r} mentions its own basic var");
            // Row consistency: β[basic] = Σ c·β[nonbasic].
            let rhs = row.iter().fold(DeltaRational::zero(), |acc, (v, c)| {
                &acc + &self.assignment[*v].scale(c)
            });
            assert!(
                self.assignment[b] == rhs,
                "row {r} violated: β[{b}] ≠ Σ c·β"
            );
        }
        for v in 0..self.assignment.len() {
            if let Some(r) = self.row_of[v] {
                assert_eq!(self.basic[r], v, "row_of[{v}] inconsistent");
            }
            // Bound sanity in delta-rational order, and the strict-bound
            // representation convention: upper bounds carry δ ≤ 0, lower
            // bounds δ ≥ 0.
            if let Some(ub) = &self.upper[v] {
                assert!(!ub.value.delta.is_positive(), "upper bound with +δ");
            }
            if let Some(lb) = &self.lower[v] {
                assert!(!lb.value.delta.is_negative(), "lower bound with -δ");
            }
            if let (Some(lb), Some(ub)) = (&self.lower[v], &self.upper[v]) {
                assert!(lb.value <= ub.value, "crossed bounds on var {v}");
            }
            // Every nonbasic variable sits within its bounds.
            if self.row_of[v].is_none() {
                if let Some(lb) = &self.lower[v] {
                    assert!(self.assignment[v] >= lb.value, "nonbasic {v} below lb");
                }
                if let Some(ub) = &self.upper[v] {
                    assert!(self.assignment[v] <= ub.value, "nonbasic {v} above ub");
                }
            }
        }
    }

    fn assert_bound(&mut self, var: SVar, kind: BoundKind, value: DeltaRational, lit: Lit) -> TheoryResult {
        self.bound_asserts += 1;
        match kind {
            BoundKind::Upper => {
                if let Some(ub) = &self.upper[var] {
                    if value >= ub.value {
                        return TheoryResult::Ok; // not tighter
                    }
                }
                if let Some(lb) = &self.lower[var] {
                    if value < lb.value {
                        let other = lb.lit;
                        self.last_certificate = Some(FarkasCertificate {
                            terms: vec![(lit, Rational::one()), (other, Rational::one())],
                        });
                        return TheoryResult::Conflict(vec![lit, other]);
                    }
                }
                self.record_undo(var, BoundKind::Upper);
                self.upper[var] = Some(Bound { value: value.clone(), lit });
                if self.row_of[var].is_none() && self.assignment[var] > value {
                    self.update_nonbasic(var, value);
                }
            }
            BoundKind::Lower => {
                if let Some(lb) = &self.lower[var] {
                    if value <= lb.value {
                        return TheoryResult::Ok;
                    }
                }
                if let Some(ub) = &self.upper[var] {
                    if value > ub.value {
                        let other = ub.lit;
                        self.last_certificate = Some(FarkasCertificate {
                            terms: vec![(lit, Rational::one()), (other, Rational::one())],
                        });
                        return TheoryResult::Conflict(vec![lit, other]);
                    }
                }
                self.record_undo(var, BoundKind::Lower);
                self.lower[var] = Some(Bound { value: value.clone(), lit });
                if self.row_of[var].is_none() && self.assignment[var] < value {
                    self.update_nonbasic(var, value);
                }
            }
        }
        TheoryResult::Ok
    }

    fn record_undo(&mut self, var: SVar, kind: BoundKind) {
        let previous = match kind {
            BoundKind::Lower => self.lower[var].clone(),
            BoundKind::Upper => self.upper[var].clone(),
        };
        if let Some(level) = self.trail.last_mut() {
            level.push(Undo { var, kind, previous });
        }
        // At root level (empty trail) bounds are permanent.
    }

    /// Sets nonbasic `var` to `value`, updating every dependent basic var.
    fn update_nonbasic(&mut self, var: SVar, value: DeltaRational) {
        let diff = &value - &self.assignment[var];
        // cols[var] may contain stale row indices from pivoting; filter by
        // membership.
        let rows_touching: Vec<usize> = self.cols[var].clone();
        for r in rows_touching {
            if let Some(c) = self.rows[r].get(&var) {
                let b = self.basic[r];
                self.assignment[b] = &self.assignment[b] + &diff.scale(c);
            }
        }
        self.assignment[var] = value;
    }

    /// Pivots basic variable of row `r` with nonbasic `entering`, then sets
    /// the (now nonbasic) former basic variable so the leaving variable's
    /// violated bound becomes satisfied: standard `pivotAndUpdate`.
    fn pivot_and_update(&mut self, r: usize, entering: SVar, target: DeltaRational) {
        self.pivots += 1;
        let leaving = self.basic[r];
        let a = self.rows[r].get(&entering).cloned().expect("entering in row");
        // θ = (target − β[leaving]) / a
        let theta = (&target - &self.assignment[leaving]).scale(&a.recip());
        // β updates: leaving gets target; entering moves by θ; every other
        // basic row containing `entering` moves by its coefficient times θ.
        self.assignment[leaving] = target;
        self.assignment[entering] = &self.assignment[entering] + &theta;
        let touching: Vec<usize> = self.cols[entering].clone();
        for rr in touching {
            if rr == r {
                continue;
            }
            if let Some(c) = self.rows[rr].get(&entering) {
                let b = self.basic[rr];
                self.assignment[b] = &self.assignment[b] + &theta.scale(c);
            }
        }
        self.pivot(r, entering);
    }

    /// Row `r`: `leaving = Σ coeffs·nonbasic` with `entering` among them.
    /// Re-solves for `entering` and substitutes into all other rows.
    fn pivot(&mut self, r: usize, entering: SVar) {
        let leaving = self.basic[r];
        let mut row = std::mem::take(&mut self.rows[r]);
        let a = row.remove(&entering).expect("entering coefficient");
        // entering = (leaving − Σ rest) / a
        let inv = a.recip();
        let mut new_row: BTreeMap<SVar, Rational> = BTreeMap::new();
        new_row.insert(leaving, inv.clone());
        for (v, c) in row {
            new_row.insert(v, -&(&c * &inv));
        }
        // Column bookkeeping for the rewritten row.
        for (&v, _) in &new_row {
            if !self.cols[v].contains(&r) {
                self.cols[v].push(r);
            }
        }
        self.rows[r] = new_row;
        self.basic[r] = entering;
        self.row_of[leaving] = None;
        self.row_of[entering] = Some(r);

        // Substitute `entering` out of every other row.
        let touching: Vec<usize> = self.cols[entering].clone();
        for rr in touching {
            if rr == r {
                continue;
            }
            let Some(c) = self.rows[rr].remove(&entering) else {
                continue;
            };
            let expansion = self.rows[r].clone();
            for (v, cv) in expansion {
                let coeff = &c * &cv;
                let row_rr = &mut self.rows[rr];
                add_to_row(row_rr, v, &coeff);
                if row_rr.contains_key(&v) && !self.cols[v].contains(&rr) {
                    self.cols[v].push(rr);
                }
            }
        }
        self.cols[entering].retain(|&rr| rr == r);
        // `entering` now only appears as basic of row r; clear its column.
        self.cols[entering].clear();
        // Occasionally compact stale column entries to bound memory.
        if self.pivots % 256 == 0 {
            self.rebuild_cols();
        }
    }

    fn rebuild_cols(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        for (r, row) in self.rows.iter().enumerate() {
            for &v in row.keys() {
                self.cols[v].push(r);
            }
        }
    }

    /// Restores every *nonbasic* variable to within its bounds (needed after
    /// backtracking, which rewinds bounds but not `β`).
    fn repair_nonbasic(&mut self) {
        for v in 0..self.assignment.len() {
            if self.row_of[v].is_some() {
                continue;
            }
            let lb = self.lower[v].as_ref().map(|b| b.value.clone());
            let ub = self.upper[v].as_ref().map(|b| b.value.clone());
            if let Some(l) = &lb {
                if self.assignment[v] < *l {
                    self.update_nonbasic(v, l.clone());
                    continue;
                }
            }
            if let Some(u) = &ub {
                if self.assignment[v] > *u {
                    self.update_nonbasic(v, u.clone());
                }
            }
        }
    }

    /// The main `Check()` loop: Bland's rule pivoting until all basic
    /// variables respect their bounds, or a row proves infeasibility.
    fn check_internal(&mut self) -> TheoryResult {
        self.theory_checks += 1;
        let debug = self.timing_enabled || std::env::var_os("STA_SMT_DEBUG").is_some();
        let t0 = debug.then(std::time::Instant::now);
        self.repair_nonbasic();
        if let Some(t) = t0 {
            self.debug_timers.repair += t.elapsed();
        }
        #[cfg(feature = "certify-debug")]
        self.audit_invariants();
        let limited = self.budget.is_limited();
        let mut iters = 0u64;
        loop {
            // Pivot-boundary budget poll: a clock read per 16 iterations is
            // noise next to a tableau scan, and the first iteration checks
            // so an already-expired deadline never pivots at all.
            if limited && iters & 15 == 0 && self.budget.exhausted().is_some() {
                return TheoryResult::Interrupted;
            }
            iters += 1;
            self.debug_timers.iterations += 1;
            let t_scan = debug.then(std::time::Instant::now);
            // Leaving: smallest-index basic variable violating a bound.
            let mut violation: Option<(usize, SVar, bool)> = None; // (row, var, below)
            for (r, &b) in self.basic.iter().enumerate() {
                let below = matches!(&self.lower[b], Some(lb) if self.assignment[b] < lb.value);
                let above = matches!(&self.upper[b], Some(ub) if self.assignment[b] > ub.value);
                if below || above {
                    match violation {
                        Some((_, bv, _)) if bv <= b => {}
                        _ => violation = Some((r, b, below)),
                    }
                }
            }
            let Some((r, xb, below)) = violation else {
                if let Some(t) = t_scan {
                    self.debug_timers.scan += t.elapsed();
                }
                return TheoryResult::Ok;
            };
            // Entering: smallest-index nonbasic that can move xb toward the
            // violated bound.
            let mut entering: Option<SVar> = None;
            for (&xn, c) in &self.rows[r] {
                let can_increase = match &self.upper[xn] {
                    Some(ub) => self.assignment[xn] < ub.value,
                    None => true,
                };
                let can_decrease = match &self.lower[xn] {
                    Some(lb) => self.assignment[xn] > lb.value,
                    None => true,
                };
                let usable = if below {
                    // Need to raise xb.
                    (c.is_positive() && can_increase) || (c.is_negative() && can_decrease)
                } else {
                    // Need to lower xb.
                    (c.is_positive() && can_decrease) || (c.is_negative() && can_increase)
                };
                if usable {
                    match entering {
                        Some(e) if e <= xn => {}
                        _ => entering = Some(xn),
                    }
                }
            }
            if let Some(t) = t_scan {
                self.debug_timers.scan += t.elapsed();
            }
            match entering {
                Some(xn) => {
                    let target = if below {
                        self.lower[xb].as_ref().unwrap().value.clone()
                    } else {
                        self.upper[xb].as_ref().unwrap().value.clone()
                    };
                    let t_piv = debug.then(std::time::Instant::now);
                    self.pivot_and_update(r, xn, target);
                    if let Some(t) = t_piv {
                        self.debug_timers.pivot += t.elapsed();
                    }
                    #[cfg(feature = "certify-debug")]
                    self.audit_invariants();
                }
                None => {
                    // Infeasible row: explanation is the violated bound of xb
                    // plus the blocking bound of every nonbasic in the row.
                    // The same walk yields the Farkas certificate: λ = 1 on
                    // the violated bound and λ = |c| on each blocking bound —
                    // the row identity `xb = Σ c·xn` makes the weighted
                    // linear forms cancel while the weighted bound values
                    // sum to a negative delta-rational.
                    let mut expl = Vec::new();
                    let mut terms = Vec::new();
                    let violated =
                        if below { &self.lower[xb] } else { &self.upper[xb] };
                    debug_assert!(violated.is_some(), "violated bound exists");
                    if let Some(bv) = violated {
                        expl.push(bv.lit);
                        terms.push((bv.lit, Rational::one()));
                    }
                    for (&xn, c) in &self.rows[r] {
                        // Raising xb is blocked by the upper bound of
                        // positive-coefficient vars and the lower bound of
                        // negative ones; mirrored when xb must drop.
                        let blocking = if below == c.is_positive() {
                            &self.upper[xn]
                        } else {
                            &self.lower[xn]
                        };
                        debug_assert!(blocking.is_some(), "entering scan saw a bound");
                        if let Some(bb) = blocking {
                            expl.push(bb.lit);
                            terms.push((bb.lit, c.abs()));
                        }
                    }
                    self.last_certificate = Some(FarkasCertificate { terms });
                    expl.sort_unstable();
                    expl.dedup();
                    return TheoryResult::Conflict(expl);
                }
            }
        }
    }
}

fn add_to_row(row: &mut BTreeMap<SVar, Rational>, v: SVar, c: &Rational) {
    if c.is_zero() {
        return;
    }
    let entry = row.entry(v).or_default();
    let sum = &*entry + c;
    if sum.is_zero() {
        row.remove(&v);
    } else {
        *entry = sum;
    }
}

impl Theory for Simplex {
    fn on_new_level(&mut self) {
        self.trail.push(Vec::new());
    }

    fn pivot_count(&self) -> u64 {
        self.pivots
    }

    fn on_backtrack(&mut self, n_levels: usize) {
        for _ in 0..n_levels {
            let undos = self.trail.pop().expect("backtrack within pushed levels");
            for undo in undos.into_iter().rev() {
                match undo.kind {
                    BoundKind::Lower => self.lower[undo.var] = undo.previous,
                    BoundKind::Upper => self.upper[undo.var] = undo.previous,
                }
            }
        }
    }

    fn on_assert(&mut self, lit: Lit) -> TheoryResult {
        let Some(binding) = self.atoms.get(&lit.var()) else {
            return TheoryResult::Ok;
        };
        let AtomBinding { var, bound, strict } = binding.clone();
        if lit.is_positive() {
            // var ≤ bound (− δ if strict)
            let value = if strict {
                DeltaRational::with_delta(bound, Rational::new(-1, 1))
            } else {
                DeltaRational::real(bound)
            };
            self.assert_bound(var, BoundKind::Upper, value, lit)
        } else {
            // ¬(var ≤ bound) ⇔ var > bound; ¬(var < bound) ⇔ var ≥ bound.
            let value = if strict {
                DeltaRational::real(bound)
            } else {
                DeltaRational::with_delta(bound, Rational::one())
            };
            self.assert_bound(var, BoundKind::Lower, value, lit)
        }
    }

    fn check(&mut self) -> TheoryResult {
        self.check_internal()
    }

    fn take_certificate(&mut self) -> Option<FarkasCertificate> {
        self.last_certificate.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{CdclSolver, LBool, SatOutcome};

    /// Directly exercise the theory through a tiny CDCL harness: atoms
    /// `x ≤ 1`, `x ≥ 2` (as ¬(x < 2)) must be jointly unsat.
    #[test]
    fn contradictory_bounds_conflict() {
        let mut simplex = Simplex::new();
        let mut sat = CdclSolver::new();
        let x = simplex.solver_var(RealVar(0));

        let a = sat.new_var(); // x ≤ 1
        sat.set_theory_var(a);
        simplex.register_atom(a, x, Rational::new(1, 1), false);
        let b = sat.new_var(); // x < 2 ; ¬b means x ≥ 2
        sat.set_theory_var(b);
        simplex.register_atom(b, x, Rational::new(2, 1), true);

        sat.add_clause(vec![Lit::positive(a)]);
        sat.add_clause(vec![Lit::negative(b)]);
        assert_eq!(sat.solve(&mut simplex), SatOutcome::Unsat);
    }

    /// The pivot loop polls on its first iteration, so an already-expired
    /// budget interrupts a theory check before any pivot happens.
    #[test]
    fn zero_budget_interrupts_check_before_any_pivot() {
        let mut simplex = Simplex::new();
        let _ = simplex.solver_var(RealVar(0));
        simplex.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        assert_eq!(simplex.check(), TheoryResult::Interrupted);
        assert_eq!(simplex.pivots(), 0);
        assert_eq!(simplex.theory_checks(), 1);
    }

    #[test]
    fn counters_track_bound_asserts_and_checks() {
        let mut simplex = Simplex::new();
        let mut sat = CdclSolver::new();
        let x = simplex.solver_var(RealVar(0));
        let a = sat.new_var(); // x ≤ 3
        sat.set_theory_var(a);
        simplex.register_atom(a, x, Rational::new(3, 1), false);
        sat.add_clause(vec![Lit::positive(a)]);
        assert_eq!(sat.solve(&mut simplex), SatOutcome::Sat);
        assert!(simplex.bound_asserts() >= 1);
        assert!(simplex.theory_checks() >= 1);
    }

    #[test]
    fn feasible_bounds_produce_model() {
        let mut simplex = Simplex::new();
        let mut sat = CdclSolver::new();
        let x = simplex.solver_var(RealVar(0));

        let a = sat.new_var(); // x ≤ 3
        sat.set_theory_var(a);
        simplex.register_atom(a, x, Rational::new(3, 1), false);
        let b = sat.new_var(); // x ≤ 2 ; ¬b ⇒ x > 2
        sat.set_theory_var(b);
        simplex.register_atom(b, x, Rational::new(2, 1), false);

        sat.add_clause(vec![Lit::positive(a)]);
        sat.add_clause(vec![Lit::negative(b)]);
        assert_eq!(sat.solve(&mut simplex), SatOutcome::Sat);
        let model = simplex.concrete_model();
        let v = &model[0];
        assert!(*v > Rational::new(2, 1) && *v <= Rational::new(3, 1), "got {v}");
    }

    /// x + y ≤ 1 together with x ≥ 1 and y ≥ 1 is unsat; dropping one of
    /// the lower bounds makes it sat.
    #[test]
    fn sum_constraint_via_slack() {
        let mut simplex = Simplex::new();
        let mut sat = CdclSolver::new();
        let x = RealVar(0);
        let y = RealVar(1);
        let form = LinExpr::var(x) + LinExpr::var(y);
        let s = simplex.var_for_form(&form);
        let sx = simplex.solver_var(x);
        let sy = simplex.solver_var(y);

        let a = sat.new_var(); // x+y ≤ 1
        sat.set_theory_var(a);
        simplex.register_atom(a, s, Rational::new(1, 1), false);
        let b = sat.new_var(); // x < 1 ; ¬b ⇒ x ≥ 1
        sat.set_theory_var(b);
        simplex.register_atom(b, sx, Rational::new(1, 1), true);
        let c = sat.new_var(); // y < 1 ; ¬c ⇒ y ≥ 1
        sat.set_theory_var(c);
        simplex.register_atom(c, sy, Rational::new(1, 1), true);

        sat.add_clause(vec![Lit::positive(a)]);
        sat.add_clause(vec![Lit::negative(b)]);
        sat.add_clause(vec![Lit::negative(c)]);
        assert_eq!(sat.solve(&mut simplex), SatOutcome::Unsat);
    }

    #[test]
    fn sat_case_with_slack_and_choice() {
        let mut simplex = Simplex::new();
        let mut sat = CdclSolver::new();
        let x = RealVar(0);
        let y = RealVar(1);
        let form = LinExpr::var(x) + LinExpr::var(y);
        let s = simplex.var_for_form(&form);
        let sx = simplex.solver_var(x);

        let a = sat.new_var(); // x+y ≤ 1
        sat.set_theory_var(a);
        simplex.register_atom(a, s, Rational::new(1, 1), false);
        let b = sat.new_var(); // x ≤ -5
        sat.set_theory_var(b);
        simplex.register_atom(b, sx, Rational::new(-5, 1), false);
        // Either x+y ≤ 1 or x ≤ -5 must hold; both is fine too.
        sat.add_clause(vec![Lit::positive(a), Lit::positive(b)]);
        assert_eq!(sat.solve(&mut simplex), SatOutcome::Sat);
        let model = simplex.concrete_model();
        let xv = &model[0];
        let yv = &model[1];
        let asserted_a = sat.value(a) == LBool::True;
        let asserted_b = sat.value(b) == LBool::True;
        assert!(asserted_a || asserted_b);
        if asserted_a {
            assert!(&(xv + yv) <= &Rational::new(1, 1));
        }
        if asserted_b {
            assert!(xv <= &Rational::new(-5, 1));
        }
    }

    /// Dedup: the same linear form registered twice yields one slack.
    #[test]
    fn slack_deduplication() {
        let mut simplex = Simplex::new();
        let form = LinExpr::var(RealVar(0)) + LinExpr::var(RealVar(1));
        let s1 = simplex.var_for_form(&form);
        let s2 = simplex.var_for_form(&form.clone());
        assert_eq!(s1, s2);
        assert_eq!(simplex.num_rows(), 1);
    }
}
