//! Solver resource statistics.
//!
//! The paper's Table IV reports the SMT solver's memory footprint per IEEE
//! test system. Z3 exposes that through its own telemetry; our substitute is
//! an explicit accounting of the dominant allocations: SAT clauses and
//! watches, the simplex tableau and bound arrays, and the atom maps. The
//! estimate is deliberately conservative (it under-counts allocator slack)
//! but scales exactly with problem structure, which is what the table is
//! meant to demonstrate.

use crate::trace::{PhaseMetrics, PhaseTimings};
use std::fmt;
use std::time::Duration;

/// One point of a sampled solver progress timeline: cumulative search
/// counters captured at a decision boundary `at` into the search. A
/// sequence of these gives conflict/restart/pivot *rates* over time —
/// the "is this long solve converging or thrashing" view. Samples carry
/// wall-clock offsets, so (like all timings) they are observational:
/// emitted in trace files, never in timing-stripped reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSample {
    /// Offset from the start of the search.
    pub at: Duration,
    /// Cumulative SAT decisions.
    pub decisions: u64,
    /// Cumulative conflicts (Boolean + theory).
    pub conflicts: u64,
    /// Cumulative restarts.
    pub restarts: u64,
    /// Cumulative BCP propagations.
    pub propagations: u64,
    /// Cumulative simplex pivots.
    pub pivots: u64,
}

impl ProgressSample {
    /// The counter pairs in `TraceEvent::Progress` serialization order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("decisions", self.decisions),
            ("conflicts", self.conflicts),
            ("restarts", self.restarts),
            ("propagations", self.propagations),
            ("pivots", self.pivots),
        ]
    }
}

/// Resource usage of one [`crate::Solver::check`] call.
#[derive(Debug, Default, Clone)]
pub struct SolverStats {
    /// Problem-level Boolean variables declared.
    pub bool_vars: usize,
    /// Problem-level real variables declared.
    pub real_vars: usize,
    /// Formulas asserted (after push/pop trimming).
    pub assertions: usize,
    /// SAT variables after Tseitin encoding.
    pub sat_vars: usize,
    /// CNF clauses pushed by the encoder.
    pub clauses: u64,
    /// Total literal occurrences over all pushed clauses.
    pub clause_lits: u64,
    /// Distinct arithmetic atoms.
    pub atoms: usize,
    /// Simplex solver variables (problem + slack).
    pub simplex_vars: usize,
    /// Simplex tableau rows.
    pub simplex_rows: usize,
    /// Nonzero tableau entries at the end of solving.
    pub tableau_entries: usize,
    /// Simplex pivot operations.
    pub pivots: u64,
    /// Basis refactorizations performed by the revised simplex engine
    /// (zero on the dense engine). Observational, like wall clocks: the
    /// refactorization schedule is an engine implementation detail, so
    /// this never enters the deterministic phase counters.
    pub refactorizations: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT propagations.
    pub propagations: u64,
    /// Conflicts (Boolean + theory).
    pub conflicts: u64,
    /// Theory conflicts.
    pub theory_conflicts: u64,
    /// Restarts.
    pub restarts: u64,
    /// Learned clauses retained.
    pub learned_clauses: u64,
    /// Clause-database size (original + learned) at end of search.
    pub clause_db: u64,
    /// Theory bound assertions fed to the simplex.
    pub bound_asserts: u64,
    /// Full simplex consistency checks.
    pub theory_checks: u64,
    /// Learned clauses carried into this check from earlier checks on the
    /// same persistent core (zero on the clone-per-check path).
    pub retained_clauses: u64,
    /// Clauses hard-deleted this check by activation-literal retirement
    /// (zero on the clone-per-check path).
    pub deleted_clauses: u64,
    /// Simplex pivots whose work the warm-started basis already embodied
    /// at check entry (zero on the clone-per-check path, which rebuilds
    /// the tableau from scratch).
    pub warm_pivots_saved: u64,
    /// Whether this check reused an already-encoded base (the solver's
    /// incremental base-encoding cache).
    pub base_cache_hit: bool,
    /// Derivation steps in the logged proof (learned clauses plus theory
    /// lemmas); zero unless proof logging was enabled by certification.
    pub proof_steps: u64,
    /// Whether this check's answer was certified (model re-evaluation or
    /// proof replay, per the solver's [`crate::CertifyLevel`]).
    pub certified: bool,
    /// Lint findings at error severity.
    pub lint_errors: usize,
    /// Lint findings at warning severity.
    pub lint_warnings: usize,
    /// Lint findings at info severity.
    pub lint_infos: usize,
    /// Wall-clock time of the check.
    pub solve_time: Duration,
    /// Wall-clock time spent encoding (base extension + per-check delta).
    pub encode_time: Duration,
    /// Wall-clock time spent in the DPLL(T) search.
    pub search_time: Duration,
    /// Sampled progress timeline of the search; empty unless sampling
    /// was enabled (see [`crate::Solver::set_progress_sampling`]).
    pub progress: Vec<ProgressSample>,
}

impl SolverStats {
    /// Estimated resident bytes of the solver state.
    ///
    /// Dominant terms: clause literal arrays (4 B/lit plus ~32 B/clause
    /// header), two watch lists per variable, per-variable SAT metadata
    /// (~26 B), tableau entries (BTreeMap node ≈ 96 B for a key plus a
    /// big-rational pair), per-simplex-variable assignment and bound slots
    /// (three delta-rationals ≈ 240 B), and atom map entries (~96 B).
    pub fn estimated_bytes(&self) -> u64 {
        let clause_bytes = self.clause_lits * 4 + self.clauses * 32;
        let sat_var_bytes = self.sat_vars as u64 * (26 + 2 * 24);
        let tableau_bytes = self.tableau_entries as u64 * 96;
        let simplex_var_bytes = self.simplex_vars as u64 * 240;
        let atom_bytes = self.atoms as u64 * 96;
        let learned_bytes = self.learned_clauses * 64;
        clause_bytes
            + sat_var_bytes
            + tableau_bytes
            + simplex_var_bytes
            + atom_bytes
            + learned_bytes
    }

    /// Estimated memory in mebibytes (Table IV's unit).
    pub fn estimated_mb(&self) -> f64 {
        self.estimated_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// The deterministic per-phase counters of this check (the observability
    /// layer's unit of aggregation — see [`crate::trace`]).
    pub fn phase_metrics(&self) -> PhaseMetrics {
        PhaseMetrics {
            clauses: self.clauses,
            clause_lits: self.clause_lits,
            sat_vars: self.sat_vars as u64,
            atoms: self.atoms as u64,
            decisions: self.decisions,
            propagations: self.propagations,
            conflicts: self.conflicts,
            theory_conflicts: self.theory_conflicts,
            restarts: self.restarts,
            learned_clauses: self.learned_clauses,
            clause_db: self.clause_db,
            retained_clauses: self.retained_clauses,
            deleted_clauses: self.deleted_clauses,
            pivots: self.pivots,
            bound_asserts: self.bound_asserts,
            theory_checks: self.theory_checks,
            warm_pivots_saved: self.warm_pivots_saved,
        }
    }

    /// The observational side of the phase breakdown — wall clocks and
    /// base-cache behavior — kept apart from
    /// [`SolverStats::phase_metrics`] so deterministic aggregation stays
    /// byte-identical across worker counts (cache reuse depends on which
    /// worker ran which job).
    pub fn phase_timings(&self) -> PhaseTimings {
        PhaseTimings {
            encode: self.encode_time,
            search: self.search_time,
            cache_hits: u64::from(self.base_cache_hit),
            cache_misses: u64::from(!self.base_cache_hit),
            refactorizations: self.refactorizations,
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vars: {}b/{}r sat-vars: {} clauses: {} atoms: {} rows: {} \
             decisions: {} conflicts: {} (theory {}) pivots: {} mem: {:.2} MB \
             time: {:?}",
            self.bool_vars,
            self.real_vars,
            self.sat_vars,
            self.clauses,
            self.atoms,
            self.simplex_rows,
            self.decisions,
            self.conflicts,
            self.theory_conflicts,
            self.pivots,
            self.estimated_mb(),
            self.solve_time,
        )?;
        if self.refactorizations > 0 {
            write!(f, " refactors: {}", self.refactorizations)?;
        }
        if self.certified {
            write!(f, " certified")?;
            if self.proof_steps > 0 {
                write!(f, " (proof: {} steps)", self.proof_steps)?;
            }
        }
        if self.lint_errors + self.lint_warnings + self.lint_infos > 0 {
            write!(
                f,
                " lint: {}E/{}W/{}I",
                self.lint_errors, self.lint_warnings, self.lint_infos
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_estimate_scales_with_contents() {
        let empty = SolverStats::default();
        let mut big = SolverStats::default();
        big.clauses = 1000;
        big.clause_lits = 4000;
        big.sat_vars = 500;
        big.tableau_entries = 2000;
        big.simplex_vars = 300;
        assert!(big.estimated_bytes() > empty.estimated_bytes());
        assert!(big.estimated_mb() > 0.0);
    }

    #[test]
    fn display_smoke() {
        let s = SolverStats::default();
        let text = s.to_string();
        assert!(text.contains("mem:"));
        assert!(!text.contains("certified"));
    }

    #[test]
    fn phase_metrics_carry_counters_but_never_wall_clock() {
        let mut s = SolverStats::default();
        s.clauses = 9;
        s.decisions = 4;
        s.pivots = 2;
        s.bound_asserts = 11;
        s.theory_checks = 3;
        s.base_cache_hit = true;
        s.encode_time = Duration::from_millis(5);
        s.search_time = Duration::from_millis(7);
        let m = s.phase_metrics();
        assert_eq!(m.clauses, 9);
        assert_eq!(m.decisions, 4);
        assert_eq!(m.pivots, 2);
        assert_eq!(m.bound_asserts, 11);
        assert_eq!(m.theory_checks, 3);
        // Wall clock and cache behavior live only in the timings struct.
        assert!(!m.to_json().contains("_ms"));
        assert!(!m.to_json().contains("cache"));
        let t = s.phase_timings();
        assert_eq!(t.encode, Duration::from_millis(5));
        assert_eq!(t.search, Duration::from_millis(7));
        assert_eq!((t.cache_hits, t.cache_misses), (1, 0));
    }

    #[test]
    fn display_shows_certification_and_lint() {
        let mut s = SolverStats::default();
        s.certified = true;
        s.proof_steps = 7;
        s.lint_warnings = 2;
        let text = s.to_string();
        assert!(text.contains("certified (proof: 7 steps)"), "{text}");
        assert!(text.contains("lint: 0E/2W/0I"), "{text}");
    }
}
