//! Wall-clock deadlines and cooperative cancellation for solver calls.
//!
//! Campaign-style workloads (many verification instances swept over attack
//! parameters) need individual instances to give up instead of hanging: a
//! [`Budget`] carries an optional deadline and an optional shared cancel
//! flag, and the CDCL search loop and the simplex pivot loop poll it at
//! conflict/pivot boundaries. An exhausted budget surfaces as a first-class
//! `Unknown` verdict (see [`crate::SatResult`]) carrying the [`Interrupt`]
//! reason, so a timed-out instance is distinguishable from `Unsat`.
//!
//! Polling is cooperative and cheap: an unlimited budget (the default) is
//! never consulted, and limited budgets are checked every few dozen search
//! steps, so a zero-millisecond deadline still interrupts promptly while a
//! generous one costs a handful of clock reads per thousand conflicts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solver call stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The wall-clock deadline passed.
    Timeout,
    /// The shared cancel flag was raised.
    Cancelled,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Timeout => write!(f, "timeout"),
            Interrupt::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A resource budget for one solver call: an optional wall-clock deadline
/// plus an optional shared cancellation flag.
///
/// The default budget is unlimited. Budgets are cheap to clone — the cancel
/// flag is shared, so cloning a budget across worker threads lets one
/// [`Budget::cancel`] call stop them all.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget with no deadline and no cancel flag.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget that times out `timeout` from now.
    ///
    /// A `timeout` too large to represent as an `Instant` (e.g. a
    /// client-supplied `u64::MAX` milliseconds) means "no deadline"
    /// rather than a panic — the request is unvalidated user input at
    /// both the serve-protocol and scenario entry points.
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget { deadline: Instant::now().checked_add(timeout), cancel: None }
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a shared cancellation flag (raised with [`Budget::cancel`]
    /// or by storing `true` from any thread).
    pub fn with_cancel_token(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Creates and attaches a fresh cancellation flag, returning it.
    pub fn new_cancel_token(&mut self) -> Arc<AtomicBool> {
        let token = Arc::new(AtomicBool::new(false));
        self.cancel = Some(Arc::clone(&token));
        token
    }

    /// Raises the cancellation flag, if one is attached.
    pub fn cancel(&self) {
        if let Some(flag) = &self.cancel {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether this budget can ever interrupt a solve (fast pre-check so
    /// unlimited budgets cost nothing in the search loops).
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Checks the budget; `Some` means the current solve must stop.
    ///
    /// Cancellation takes precedence over the deadline, and both conditions
    /// are monotone: once exhausted, a budget stays exhausted.
    pub fn exhausted(&self) -> Option<Interrupt> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Interrupt::Timeout);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(b.exhausted().is_none());
    }

    #[test]
    fn zero_timeout_exhausts_immediately() {
        let b = Budget::with_timeout(Duration::ZERO);
        assert!(b.is_limited());
        assert_eq!(b.exhausted(), Some(Interrupt::Timeout));
    }

    #[test]
    fn generous_timeout_not_yet_exhausted() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        assert!(b.is_limited());
        assert!(b.exhausted().is_none());
    }

    #[test]
    fn overflowing_timeout_means_no_deadline_not_a_panic() {
        // Timeouts too large for Instant arithmetic (platform-dependent;
        // Duration::MAX overflows everywhere) must degrade to "no
        // deadline" instead of panicking the worker.
        let b = Budget::with_timeout(Duration::MAX);
        assert!(b.exhausted().is_none());
        // The overflowed deadline cannot limit the solve.
        assert!(!b.is_limited());
        // u64::MAX milliseconds — the wire-reachable extreme — must be
        // harmless whether or not it overflows on this platform.
        let b = Budget::with_timeout(Duration::from_millis(u64::MAX));
        assert!(b.exhausted().is_none());
    }

    #[test]
    fn cancel_token_wins_over_deadline() {
        let mut b = Budget::with_timeout(Duration::from_secs(3600));
        let token = b.new_cancel_token();
        assert!(b.exhausted().is_none());
        token.store(true, Ordering::Relaxed);
        assert_eq!(b.exhausted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let mut b = Budget::unlimited();
        let _ = b.new_cancel_token();
        let c = b.clone();
        b.cancel();
        assert_eq!(c.exhausted(), Some(Interrupt::Cancelled));
    }
}
