//! A tiny shared JSON layer: deterministic writers and a minimal parser.
//!
//! Every machine-readable artifact in the toolchain — trace events, the
//! campaign report, latency histograms, `sta bench` trajectory files —
//! is hand-rolled JSON with a *fixed key order*, so equal inputs yield
//! byte-identical output (the property the campaign determinism gate
//! byte-compares). This module centralizes the escaping and number
//! formatting those writers previously each reimplemented, plus a small
//! recursive-descent parser used where the toolchain must read its own
//! artifacts back (the `sta bench --baseline` diff).
//!
//! The parser is deliberately minimal: it accepts the JSON this crate
//! family emits (objects, arrays, strings with the escapes we produce,
//! integers and decimal floats, booleans, null) and rejects everything
//! else with a position-annotated error. It is not a general-purpose
//! JSON library and does not try to be one.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. JSON has no NaN/Inf, so non-finite
/// values clamp to `null` — never produced by the solver's exact
/// arithmetic, but the output must stay valid regardless.
pub fn f64_into(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
///
/// Object keys are kept in a [`BTreeMap`]: the writers in this family
/// emit each key once, and ordered lookup keeps the diffing code
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included; they survive `f64` up to 2^53,
    /// far beyond every counter this toolchain serializes into files
    /// meant to be read back).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {kw:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own output
                            // (we escape only control characters).
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a \"q\" \\ \n\r\t \u{1} end";
        let mut out = String::new();
        escape_into(nasty, &mut out);
        let parsed = parse(&out).expect("parses");
        assert_eq!(parsed, Json::Str(nasty.to_string()));
    }

    #[test]
    fn f64_writer_handles_nonfinite() {
        let mut out = String::new();
        f64_into(1.5, &mut out);
        out.push(',');
        f64_into(f64::NAN, &mut out);
        out.push(',');
        f64_into(f64::INFINITY, &mut out);
        assert_eq!(out, "1.5,null,null");
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()), Some(3));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").and_then(|e| e.as_str()), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn integer_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "tru", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1,]").unwrap_err();
        assert!(err.offset >= 3, "{err}");
        assert!(err.to_string().contains("byte"));
    }
}
