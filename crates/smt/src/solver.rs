//! The user-facing SMT solver: assertion stack, check, model extraction.
//!
//! [`Solver`] collects [`Formula`] assertions with [`Solver::push`] /
//! [`Solver::pop`] scoping, and [`Solver::check`] decides their conjunction
//! over QF_LRA.
//!
//! # Incremental reuse
//!
//! Checks reuse work across the assertion stack without ever reusing solver
//! *search* state: the assertions below the first open scope (the "base")
//! are encoded once into a cached, never-solved CDCL/simplex/encoder trio,
//! and each check clones that trio and encodes only the scoped deltas into
//! the clone before solving it. The push/pop-heavy campaign pattern (assert
//! the grid constraints once, push a per-variant delta, check, pop) thus
//! pays base encoding once per solver instead of once per check, while
//! learned clauses, theory state and proof-log steps stay strictly
//! per-check — popping a scope can never leak retracted constraints or
//! out-of-scope proof steps into later answers. A [`Solver::pop`] that
//! retracts assertions the cache has already encoded (possible only when
//! certification levels changed mid-stack) drains the cache entirely.
//!
//! Checks accept a [`Budget`]: deadlines and cooperative cancellation are
//! polled at every phase — Tseitin/cardinality encoding (including base
//! extension), the CDCL decision and conflict loops, and simplex pivoting —
//! surfacing as [`SatResult::Unknown`] instead of hanging. An interrupt
//! during base extension drains the cache (the half-encoded assertion
//! would poison the template); an interrupt while encoding scoped deltas
//! only discards the per-check clone.
//!
//! # Examples
//!
//! ```
//! use sta_smt::{Formula, LinExpr, LinExprCmp, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_real();
//! let y = solver.new_real();
//! solver.assert_formula(&(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)));
//! solver.assert_formula(&LinExpr::var(x).ge(LinExpr::from(7)));
//! let model = solver.check().expect_sat();
//! assert!(model.real_value(y).to_f64() <= 3.0);
//! ```

use crate::budget::{Budget, Interrupt};
use crate::certify::{check_unsat_proof, eval_formula, CertifyError, CertifyLevel};
use crate::cnf::Encoder;
use crate::expr::RealVar;
use crate::formula::{BoolVar, Formula};
use crate::lint::{self, LintReport, Severity};
use crate::profile::{Clock, Profiler};
use crate::rational::Rational;
use crate::sat::{CdclSolver, LBool, SatOutcome};
use crate::simplex::Simplex;
use crate::stats::SolverStats;

/// A satisfying assignment for the problem variables.
///
/// Every declared variable has a value; variables unconstrained by the
/// assertions default to `false` / `0`.
#[derive(Debug, Clone)]
pub struct Model {
    bools: Vec<bool>,
    reals: Vec<Rational>,
}

impl Model {
    /// Value of a Boolean variable.
    ///
    /// # Panics
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn bool_value(&self, v: BoolVar) -> bool {
        self.bools[v.0 as usize]
    }

    /// Value of a real variable.
    ///
    /// # Panics
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn real_value(&self, v: RealVar) -> &Rational {
        &self.reals[v.0 as usize]
    }
}

/// Outcome of [`Solver::check`].
#[derive(Debug, Clone)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The check's [`Budget`] ran out before a verdict. The assertion stack
    /// is untouched — raise the budget and re-check, or treat the instance
    /// as undecided.
    Unknown(Interrupt),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unknown` (budget exhausted).
    pub fn is_unknown(&self) -> bool {
        matches!(self, SatResult::Unknown(_))
    }

    /// Extracts the model.
    ///
    /// # Panics
    /// Panics if the result is not `Sat`.
    pub fn expect_sat(self) -> Model {
        match self {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("expected sat, got unsat"),
            SatResult::Unknown(why) => panic!("expected sat, got unknown ({why})"),
        }
    }

    /// The model, if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat | SatResult::Unknown(_) => None,
        }
    }
}

/// The cached base encoding: the assertion-stack prefix below the first
/// open scope, encoded into a CDCL/simplex/encoder trio that is *never*
/// solved. Checks clone it and solve the clone (see the module docs).
#[derive(Debug, Clone)]
struct BaseEncoding {
    sat: CdclSolver,
    simplex: Simplex,
    encoder: Encoder,
    /// Leading assertions already encoded (`assertions[..encoded]`).
    encoded: usize,
    /// Problem reals materialized into the tableau so far.
    reals: u32,
    /// Whether proof logging was on when the base was built; a mismatch
    /// with the current certification level forces a rebuild, since proofs
    /// must log the complete original CNF.
    proof: bool,
}

/// An SMT solver for Boolean combinations of linear real arithmetic.
///
/// See the [module docs](self) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    n_bools: u32,
    n_reals: u32,
    assertions: Vec<Formula>,
    scopes: Vec<usize>,
    last_stats: Option<SolverStats>,
    certify: CertifyLevel,
    budget: Budget,
    base: Option<BaseEncoding>,
    /// The single time source for every per-check wall clock in
    /// [`SolverStats`] (tests inject a fake; see [`crate::profile`]).
    clock: Clock,
    /// Span profiler, when attached: checks open `encode`/`search`/
    /// `certify` spans (with `base`/`delta` and `simplex` leaves).
    profiler: Option<Profiler>,
    /// Whether checks sample a progress timeline into their stats.
    progress: bool,
}

impl Solver {
    /// Creates a solver with no variables or assertions.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Declares a fresh Boolean variable.
    pub fn new_bool(&mut self) -> BoolVar {
        let v = BoolVar(self.n_bools);
        self.n_bools += 1;
        v
    }

    /// Declares a fresh real variable.
    pub fn new_real(&mut self) -> RealVar {
        let v = RealVar(self.n_reals);
        self.n_reals += 1;
        v
    }

    /// Asserts `f` in the current scope.
    pub fn assert_formula(&mut self, f: &Formula) {
        self.assertions.push(f.clone());
    }

    /// Opens a new assertion scope.
    pub fn push(&mut self) {
        self.scopes.push(self.assertions.len());
    }

    /// Discards all assertions added since the matching [`Solver::push`].
    ///
    /// # Panics
    /// Panics if there is no open scope.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        self.assertions.truncate(mark);
        // Drain the cached base if the pop retracted assertions it has
        // encoded — its clause database and proof log would otherwise leak
        // out-of-scope constraints and proof steps into later checks. (The
        // cache only ever covers the prefix below the first open scope, so
        // this fires only on caches built before that scope was opened.)
        if self.base.as_ref().is_some_and(|b| b.encoded > mark) {
            self.base = None;
        }
    }

    /// Number of assertions currently active.
    pub fn num_assertions(&self) -> usize {
        self.assertions.len()
    }

    /// Statistics of the most recent [`Solver::check`] call.
    pub fn last_stats(&self) -> Option<&SolverStats> {
        self.last_stats.as_ref()
    }

    /// Sets how much certification [`Solver::check`] performs.
    pub fn set_certify(&mut self, level: CertifyLevel) {
        self.certify = level;
    }

    /// Sets the budget applied to every subsequent check. The default is
    /// unlimited; with a deadline or cancel token installed, checks return
    /// [`SatResult::Unknown`] instead of running past the budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The budget applied to checks.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The configured certification level.
    pub fn certify_level(&self) -> CertifyLevel {
        self.certify
    }

    /// Attaches a span profiler (and adopts its clock, so spans and
    /// stats timings come from the same source). Checks then record an
    /// `encode` → `search` → `certify` span tree, with `base`/`delta`
    /// encode children and the simplex's accumulated self-time as a
    /// `simplex` leaf under `search`.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.clock = profiler.clock().clone();
        self.profiler = Some(profiler);
    }

    /// Replaces the clock behind per-check wall-clock stats (tests
    /// inject a fake). [`Solver::set_profiler`] also sets this.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// Enables (or disables) progress-timeline sampling: when on, each
    /// check's [`SolverStats::progress`] carries a bounded sequence of
    /// counter samples recorded at decision boundaries.
    pub fn set_progress_sampling(&mut self, on: bool) {
        self.progress = on;
    }

    /// Statically analyses the current assertion set without solving.
    pub fn lint(&self) -> LintReport {
        lint::lint(&self.assertions, self.n_bools, self.n_reals)
    }

    /// Renders the assertion set as text, for reproducing failures.
    pub fn dump_assertions(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; {} bool vars, {} real vars, {} assertions",
            self.n_bools,
            self.n_reals,
            self.assertions.len()
        );
        for f in &self.assertions {
            let _ = writeln!(out, "(assert {f})");
        }
        out
    }

    /// Decides satisfiability of the asserted conjunction.
    ///
    /// # Panics
    /// Panics if certification is enabled (see [`Solver::set_certify`]) and
    /// the answer fails to certify — a solver bug, reported together with a
    /// dump of the assertion set for reproduction.
    pub fn check(&mut self) -> SatResult {
        match self.check_certified() {
            Ok(result) => result,
            Err(e) => panic!("{e}\nassertions:\n{}", self.dump_assertions()),
        }
    }

    /// Decides satisfiability, returning certification failures as errors.
    ///
    /// Under [`CertifyLevel::Full`] the assertion set is first linted in
    /// deny mode (error-severity findings abort before solving), proof
    /// logging is enabled, and an `unsat` answer is replayed through the
    /// independent RUP/Farkas checker. Under [`CertifyLevel::CheckModels`]
    /// (or `Full`), a `sat` answer's model is re-evaluated against every
    /// original assertion with exact arithmetic.
    pub fn check_certified(&mut self) -> Result<SatResult, CertifyError> {
        // One clock read per timing boundary, with every interval derived
        // from those reads — never a second `elapsed()` for the same
        // boundary, so the intervals in one stats row are consistent
        // (encode + search never exceeds solve).
        let start = self.clock.now();
        let prof = self.profiler.clone();
        let full = self.certify >= CertifyLevel::Full;
        let mut lint_report = LintReport::new();
        if full {
            lint_report = self.lint();
            if lint_report.has_errors() {
                return Err(CertifyError::new(format!(
                    "lint errors in deny mode:\n{lint_report}"
                )));
            }
        }
        // Base cache maintenance: rebuild on a proof-enablement change,
        // otherwise extend it over any new below-scope assertions. Only the
        // prefix below the first open scope is ever cached, so scoped
        // deltas never enter the template.
        let base_limit = self.scopes.first().copied().unwrap_or(self.assertions.len());
        if self.base.as_ref().is_some_and(|b| b.proof != full) {
            self.base = None;
        }
        let cache_hit = self.base.is_some();
        let base = self.base.get_or_insert_with(|| {
            let mut sat = CdclSolver::new();
            if full {
                sat.enable_proof();
            }
            BaseEncoding {
                sat,
                simplex: Simplex::new(),
                encoder: Encoder::new(),
                encoded: 0,
                reals: 0,
                proof: full,
            }
        });
        // Materialize every declared real variable so models cover them and
        // the clone sees a stable tableau layout.
        for i in base.reals..self.n_reals {
            base.simplex.solver_var(RealVar(i));
        }
        base.reals = self.n_reals;
        // The encoder honors the budget: a huge Tseitin/cardinality
        // expansion must not blow past the deadline before the search loop
        // ever polls. The base template is encoded under the budget and
        // reset to unlimited afterwards so later unlimited checks reuse it.
        let sp_encode = prof.as_ref().map(|p| p.span("encode"));
        base.encoder.set_budget(self.budget.clone());
        let mut base_interrupt = None;
        {
            let _sp_base = prof.as_ref().map(|p| p.span("base"));
            while base.encoded < base_limit {
                let f = &self.assertions[base.encoded];
                if let Err(why) = base.encoder.assert_root(f, &mut base.sat, &mut base.simplex) {
                    base_interrupt = Some(why);
                    break;
                }
                base.encoded += 1;
            }
        }
        base.encoder.set_budget(Budget::unlimited());
        if let Some(why) = base_interrupt {
            // The interrupted assertion is half-encoded into the template —
            // drop the cache so the next check rebuilds it cleanly.
            self.base = None;
            let mut stats = SolverStats::default();
            stats.bool_vars = self.n_bools as usize;
            stats.real_vars = self.n_reals as usize;
            stats.assertions = self.assertions.len();
            stats.base_cache_hit = cache_hit;
            stats.lint_errors = lint_report.count(Severity::Error);
            stats.lint_warnings = lint_report.count(Severity::Warning);
            stats.lint_infos = lint_report.count(Severity::Info);
            // The whole check was encoding; one clock read covers both.
            stats.encode_time = self.clock.now().saturating_sub(start);
            stats.solve_time = stats.encode_time;
            self.last_stats = Some(stats);
            return Ok(SatResult::Unknown(why));
        }
        // Per-check clone: scoped deltas are encoded into it and it alone
        // is solved, keeping learned clauses, theory state and proof steps
        // isolated to this check.
        let mut sat = base.sat.clone();
        let mut simplex = base.simplex.clone();
        let mut encoder = base.encoder.clone();
        encoder.set_budget(self.budget.clone());
        let mut delta_interrupt = None;
        {
            let _sp_delta = prof.as_ref().map(|p| p.span("delta"));
            for f in &self.assertions[base_limit..] {
                if let Err(why) = encoder.assert_root(f, &mut sat, &mut simplex) {
                    delta_interrupt = Some(why);
                    break;
                }
            }
        }
        if let Some(why) = delta_interrupt {
            // Only the clone saw the partial delta; the base stays valid.
            let mut stats = SolverStats::default();
            stats.bool_vars = self.n_bools as usize;
            stats.real_vars = self.n_reals as usize;
            stats.assertions = self.assertions.len();
            stats.sat_vars = sat.num_vars();
            stats.clauses = encoder.clauses;
            stats.clause_lits = encoder.clause_lits;
            stats.atoms = encoder.num_atoms();
            stats.base_cache_hit = cache_hit;
            stats.lint_errors = lint_report.count(Severity::Error);
            stats.lint_warnings = lint_report.count(Severity::Warning);
            stats.lint_infos = lint_report.count(Severity::Info);
            stats.encode_time = self.clock.now().saturating_sub(start);
            stats.solve_time = stats.encode_time;
            self.last_stats = Some(stats);
            return Ok(SatResult::Unknown(why));
        }
        drop(sp_encode);
        if full {
            // Encoding-level pass (duplicate / subsumed clauses) over the
            // clause database before any learning happens.
            lint_report.merge(lint::lint_clauses(&sat.clause_list()));
        }
        sat.set_budget(self.budget.clone());
        simplex.set_budget(self.budget.clone());
        if self.progress {
            sat.enable_progress(self.clock.clone());
        }
        if prof.is_some() {
            // The per-check clone starts from the never-solved base, so
            // its timers accumulate exactly this check's simplex work.
            simplex.enable_timing();
        }
        let encode_done = self.clock.now();
        let outcome = {
            let _sp_search = prof.as_ref().map(|p| p.span("search"));
            let outcome = sat.solve(&mut simplex);
            if let Some(p) = &prof {
                let t = &simplex.debug_timers;
                p.record_leaf("simplex", t.repair + t.scan + t.pivot, t.iterations);
            }
            outcome
        };
        let search_done = self.clock.now();
        let search_time = search_done.saturating_sub(encode_done);
        if std::env::var_os("STA_SMT_DEBUG").is_some() {
            let t = &simplex.debug_timers;
            eprintln!(
                "[sta-smt] encode {:.2?} search {:.2?} | simplex repair {:.2?} \
                 scan {:.2?} pivot {:.2?} iters {}",
                encode_done.saturating_sub(start),
                search_time,
                t.repair,
                t.scan,
                t.pivot,
                t.iterations,
            );
        }
        let counters = sat.counters();
        let progress = sat.take_progress();
        let mut stats = SolverStats {
            bool_vars: self.n_bools as usize,
            real_vars: self.n_reals as usize,
            assertions: self.assertions.len(),
            sat_vars: sat.num_vars(),
            clauses: encoder.clauses,
            clause_lits: encoder.clause_lits,
            atoms: encoder.num_atoms(),
            simplex_vars: simplex.num_vars(),
            simplex_rows: simplex.num_rows(),
            tableau_entries: simplex.tableau_entries(),
            pivots: simplex.pivots(),
            decisions: counters.decisions,
            propagations: counters.propagations,
            conflicts: counters.conflicts,
            theory_conflicts: counters.theory_conflicts,
            restarts: counters.restarts,
            learned_clauses: counters.learned_clauses,
            clause_db: sat.num_clauses() as u64,
            bound_asserts: simplex.bound_asserts(),
            theory_checks: simplex.theory_checks(),
            base_cache_hit: cache_hit,
            proof_steps: 0,
            certified: false,
            lint_errors: lint_report.count(Severity::Error),
            lint_warnings: lint_report.count(Severity::Warning),
            lint_infos: lint_report.count(Severity::Info),
            solve_time: search_done.saturating_sub(start),
            encode_time: encode_done.saturating_sub(start),
            search_time,
            progress,
        };
        let result = match outcome {
            SatOutcome::Unsat => {
                if full {
                    let _sp_certify = prof.as_ref().map(|p| p.span("certify"));
                    let proof = sat
                        .take_proof()
                        .ok_or_else(|| CertifyError::new("proof logging produced no proof"))?;
                    stats.proof_steps = proof.num_derivations() as u64;
                    check_unsat_proof(&proof, &simplex.certificate_context())?;
                    stats.certified = true;
                }
                SatResult::Unsat
            }
            SatOutcome::Sat => {
                let reals = simplex.concrete_model();
                let bools: Vec<bool> = (0..self.n_bools)
                    .map(|i| match encoder.lookup_bool(BoolVar(i)) {
                        Some(v) => sat.value(v) == LBool::True,
                        None => false,
                    })
                    .collect();
                if self.certify >= CertifyLevel::CheckModels {
                    let _sp_certify = prof.as_ref().map(|p| p.span("certify"));
                    for f in &self.assertions {
                        if !eval_formula(f, &bools, &reals) {
                            return Err(CertifyError::new(format!(
                                "model does not satisfy asserted formula {f}"
                            )));
                        }
                    }
                    stats.certified = true;
                }
                SatResult::Sat(Model { bools, reals })
            }
            SatOutcome::Unknown(why) => SatResult::Unknown(why),
        };
        // Final wall clock includes certification; still one read.
        stats.solve_time = self.clock.now().saturating_sub(start);
        self.last_stats = Some(stats);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::formula::LinExprCmp;
    use std::time::Instant;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn pure_boolean() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let q = s.new_bool();
        s.assert_formula(&Formula::or(vec![Formula::var(p), Formula::var(q)]));
        s.assert_formula(&Formula::var(p).not());
        let m = s.check().expect_sat();
        assert!(!m.bool_value(p));
        assert!(m.bool_value(q));
    }

    #[test]
    fn pure_arithmetic_system() {
        // x + y = 10, x − y = 4 ⇒ x = 7, y = 3.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(
            &(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)),
        );
        s.assert_formula(
            &(LinExpr::var(x) - LinExpr::var(y)).eq_expr(LinExpr::from(4)),
        );
        let m = s.check().expect_sat();
        assert_eq!(*m.real_value(x), r(7, 1));
        assert_eq!(*m.real_value(y), r(3, 1));
    }

    #[test]
    fn mixed_boolean_arithmetic() {
        // p → x ≥ 5, ¬p → x ≤ −5, x = 2 forces... nothing consistent with p,
        // so p must be true and x ≥ 5 contradicts x = 2: unsat.
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
        assert!(!s.check().is_sat());
    }

    #[test]
    fn strict_inequalities_exact() {
        // 0 < x < 1 and 3x = 1 is sat with x = 1/3.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        s.assert_formula(
            &(LinExpr::var(x) * r(3, 1)).eq_expr(LinExpr::from(1)),
        );
        let m = s.check().expect_sat();
        assert_eq!(*m.real_value(x), r(1, 3));
    }

    #[test]
    fn strict_open_interval_has_interior_point() {
        // 0 < x < 1 alone: the delta-rational model must concretize to a
        // rational strictly inside the interval.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        let m = s.check().expect_sat();
        let v = m.real_value(x);
        assert!(v > &r(0, 1) && v < &r(1, 1), "got {v}");
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(0)));
        s.push();
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(0)));
        assert!(!s.check().is_sat());
        s.pop();
        assert!(s.check().is_sat());
    }

    #[test]
    fn unconstrained_variables_get_defaults() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::top());
        let m = s.check().expect_sat();
        assert!(!m.bool_value(p));
        assert_eq!(*m.real_value(x), Rational::zero());
    }

    #[test]
    fn stats_populated_after_check() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        let _ = s.check();
        let stats = s.last_stats().expect("stats");
        assert!(stats.sat_vars > 0);
        assert!(stats.estimated_bytes() > 0);
    }

    #[test]
    fn certified_check_sat_and_unsat() {
        // Same mixed Boolean/arithmetic problem as above, fully certified:
        // the unsat branch exercises theory lemmas with Farkas certificates
        // through the proof replayer, and the sat branch re-evaluates the
        // model against the original formulas.
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        assert_eq!(s.certify_level(), CertifyLevel::Full);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        s.push();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
        assert!(!s.check().is_sat());
        let stats = s.last_stats().expect("stats").clone();
        assert!(stats.certified);
        assert!(stats.proof_steps > 0);
        s.pop();
        let m = s.check().expect_sat();
        assert!(s.last_stats().expect("stats").certified);
        let v = m.real_value(x);
        assert!(v >= &r(5, 1) || v <= &r(-5, 1));
    }

    #[test]
    fn deny_mode_rejects_contradictory_bounds_before_solving() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(1)));
        let err = s.check_certified().unwrap_err();
        assert!(err.message.contains("lint"), "{}", err.message);
        // Without certification the solver still answers (unsat).
        s.set_certify(CertifyLevel::Off);
        assert!(!s.check().is_sat());
    }

    #[test]
    fn corrupted_model_fails_reevaluation() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::CheckModels);
        let x = s.new_real();
        let f = LinExpr::var(x).ge(LinExpr::from(3));
        s.assert_formula(&f);
        let m = s.check().expect_sat();
        // The genuine model passes; a tampered one is caught.
        assert!(crate::certify::eval_formula(&f, &m.bools, &m.reals));
        let mut bad = m.clone();
        bad.reals[x.0 as usize] = Rational::zero();
        assert!(!crate::certify::eval_formula(&f, &bad.bools, &bad.reals));
    }

    #[test]
    fn ne_forces_displacement() {
        // x = y ∧ x ≠ 0 ∧ y ≤ 0 ⇒ x = y < 0.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::var(y)));
        s.assert_formula(&LinExpr::var(x).ne_expr(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(y).le(LinExpr::from(0)));
        let m = s.check().expect_sat();
        assert!(m.real_value(x).is_negative());
        assert_eq!(m.real_value(x), m.real_value(y));
    }

    #[test]
    fn base_cache_extends_across_checks() {
        // Sequential assert/check/assert/check reuses the cached base
        // encoding; answers must match from-scratch solving.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        assert!(s.check().is_sat());
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(3)));
        let m = s.check().expect_sat();
        let v = m.real_value(x);
        assert!(v >= &r(1, 1) && v <= &r(3, 1), "got {v}");
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(5)));
        assert!(!s.check().is_sat());
    }

    /// Regression for incremental reuse under full certification: checks
    /// clone the cached base encoding, so a popped scope's learned clauses
    /// and proof steps must never reach a later check — each unsat answer
    /// replays a proof containing only in-scope steps.
    #[test]
    fn push_pop_recheck_certifies_with_in_scope_proof_only() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        // Build and cache the base with a certified sat check.
        assert!(s.check().is_sat());
        assert!(s.last_stats().expect("stats").certified);
        for _ in 0..2 {
            // Scoped contradiction: certified unsat (replayed proof must be
            // self-contained — base clauses plus this scope's delta only).
            s.push();
            s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
            assert!(!s.check().is_sat());
            let stats = s.last_stats().expect("stats").clone();
            assert!(stats.certified);
            assert!(stats.proof_steps > 0);
            s.pop();
            // Re-solve after pop: certifies again, with the popped scope's
            // clauses and proof steps drained.
            let m = s.check().expect_sat();
            assert!(s.last_stats().expect("stats").certified);
            let v = m.real_value(x);
            assert!(v >= &r(5, 1) || v <= &r(-5, 1), "got {v}");
        }
    }

    #[test]
    fn expired_deadline_returns_unknown_and_solver_stays_usable() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        s.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        let result = s.check();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        assert!(result.is_unknown());
        assert!(result.model().is_none());
        // Lifting the budget decides the untouched assertion stack.
        s.set_budget(Budget::unlimited());
        assert!(s.check().is_sat());
    }

    #[test]
    fn raised_cancel_token_returns_unknown_cancelled() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        let mut budget = Budget::unlimited();
        let token = budget.new_cancel_token();
        s.set_budget(budget);
        token.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(matches!(s.check(), SatResult::Unknown(Interrupt::Cancelled)));
    }

    /// Regression for the encode-phase budget gap: a zero-duration budget
    /// must interrupt *inside* the encoder — before a single clause is
    /// pushed — not merely before the search loop.
    #[test]
    fn zero_budget_interrupts_base_encoding_before_any_clause() {
        let mut s = Solver::new();
        let ps: Vec<Formula> = (0..200).map(|_| Formula::var(s.new_bool())).collect();
        s.assert_formula(&Formula::at_most(ps, 3));
        s.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        let result = s.check();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        let stats = s.last_stats().expect("stats").clone();
        assert_eq!(stats.clauses, 0, "encoder ran past an expired deadline");
        assert_eq!(stats.decisions, 0);
        // The poisoned base template was dropped; an unlimited re-check
        // rebuilds it and decides the instance.
        s.set_budget(Budget::unlimited());
        assert!(s.check().is_sat());
        assert!(!s.last_stats().expect("stats").base_cache_hit);
    }

    /// An interrupt while encoding a *scoped* delta must discard only the
    /// per-check clone: the cached base survives for the next check.
    #[test]
    fn zero_budget_delta_encode_interrupt_keeps_base_cache() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        assert!(s.check().is_sat()); // builds and caches the base
        s.push();
        let ps: Vec<Formula> = (0..200).map(|_| Formula::var(s.new_bool())).collect();
        s.assert_formula(&Formula::at_most(ps, 3));
        s.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        let result = s.check();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        assert!(s.last_stats().expect("stats").base_cache_hit);
        s.pop();
        s.set_budget(Budget::unlimited());
        assert!(s.check().is_sat());
        // The base was reused, not rebuilt, after the delta interrupt.
        assert!(s.last_stats().expect("stats").base_cache_hit);
    }

    /// Cancellation raised mid-run is observed at the next encode poll.
    #[test]
    fn cancellation_interrupts_encoding_phase() {
        let mut s = Solver::new();
        let ps: Vec<Formula> = (0..200).map(|_| Formula::var(s.new_bool())).collect();
        s.assert_formula(&Formula::at_most(ps, 3));
        let mut budget = Budget::unlimited();
        let token = budget.new_cancel_token();
        s.set_budget(budget);
        token.store(true, std::sync::atomic::Ordering::Relaxed);
        let result = s.check();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Cancelled)), "{result:?}");
        assert_eq!(s.last_stats().expect("stats").clauses, 0);
    }

    /// A deliberately hard instance (pigeonhole, exponential for CDCL) with
    /// a 50 ms deadline: the check must come back `Unknown(Timeout)` well
    /// within 10× the deadline, and popping the hard scope must leave the
    /// solver usable for the next job.
    #[test]
    fn hard_instance_times_out_promptly() {
        let n = 10; // 11 pigeons into 10 holes
        let mut s = Solver::new();
        let vars: Vec<Vec<BoolVar>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_bool()).collect())
            .collect();
        s.push();
        for pigeon in &vars {
            s.assert_formula(&Formula::or(
                pigeon.iter().map(|&v| Formula::var(v)).collect(),
            ));
        }
        for hole in 0..n {
            for p1 in 0..n + 1 {
                for p2 in p1 + 1..n + 1 {
                    s.assert_formula(&Formula::or(vec![
                        Formula::var(vars[p1][hole]).not(),
                        Formula::var(vars[p2][hole]).not(),
                    ]));
                }
            }
        }
        s.set_budget(Budget::with_timeout(std::time::Duration::from_millis(50)));
        let start = Instant::now();
        let result = s.check();
        let elapsed = start.elapsed();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        assert!(
            elapsed < std::time::Duration::from_millis(500),
            "timeout took {elapsed:?}, over 10x the 50ms deadline"
        );
        // The solver is immediately reusable for the next job.
        s.pop();
        s.set_budget(Budget::unlimited());
        s.assert_formula(&Formula::var(vars[0][0]));
        assert!(s.check().is_sat());
    }

    /// The span profiler must see the solver's phase structure: `encode`
    /// with `base`/`delta` children and `search` with a `simplex` leaf,
    /// and progress sampling must yield a monotone timeline.
    #[test]
    fn profiler_records_span_tree_and_progress() {
        let mut s = Solver::new();
        let prof = Profiler::new();
        s.set_profiler(prof.clone());
        s.set_progress_sampling(true);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.push();
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(10)));
        assert!(s.check().is_sat());
        let spans = prof.snapshot();
        let names: Vec<&str> = spans.iter().map(|n| n.name).collect();
        assert_eq!(names, ["encode", "search"], "{names:?}");
        let encode = &spans[0];
        let kids: Vec<&str> = encode.children.iter().map(|n| n.name).collect();
        assert!(kids.contains(&"base") && kids.contains(&"delta"), "{kids:?}");
        let search = &spans[1];
        assert!(
            search.children.iter().any(|n| n.name == "simplex"),
            "simplex leaf missing under search"
        );
        let stats = s.last_stats().expect("stats");
        assert!(!stats.progress.is_empty(), "no progress samples");
        for w in stats.progress.windows(2) {
            assert!(w[1].decisions >= w[0].decisions);
            assert!(w[1].at >= w[0].at);
        }
        // Unprofiled solver keeps an empty timeline.
        let mut plain = Solver::new();
        let y = plain.new_real();
        plain.assert_formula(&LinExpr::var(y).ge(LinExpr::from(1)));
        assert!(plain.check().is_sat());
        assert!(plain.last_stats().expect("stats").progress.is_empty());
    }

    /// Single-read timing discipline: the phase intervals of one stats
    /// row must nest consistently (encode + search ≤ solve), which the
    /// old double-`elapsed()` reads did not guarantee.
    #[test]
    fn phase_times_are_consistent_within_one_row() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(9)));
        assert!(s.check().is_sat());
        let stats = s.last_stats().expect("stats");
        assert!(
            stats.encode_time + stats.search_time <= stats.solve_time,
            "encode {:?} + search {:?} > solve {:?}",
            stats.encode_time,
            stats.search_time,
            stats.solve_time
        );
    }

    /// With a fake clock the solver's wall-clock stats are exact: zero
    /// if the clock never advances, and equal to the injected advance
    /// when a budget interrupt consumes the whole check.
    #[test]
    fn fake_clock_steers_stats_timing() {
        let (clock, _handle) = Clock::fake();
        let mut s = Solver::new();
        s.set_clock(clock);
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        assert!(s.check().is_sat());
        let stats = s.last_stats().expect("stats");
        assert_eq!(stats.solve_time, std::time::Duration::ZERO);
        assert_eq!(stats.encode_time, std::time::Duration::ZERO);
        assert_eq!(stats.search_time, std::time::Duration::ZERO);
    }

    #[test]
    fn cardinality_over_implication_guards() {
        // 4 booleans, each forces its real to 1; at most 2 true; sum of
        // reals ≥ 3 ⇒ unsat (reals otherwise pinned to 0).
        let mut s = Solver::new();
        let mut sum = LinExpr::zero();
        let mut card = Vec::new();
        for _ in 0..4 {
            let p = s.new_bool();
            let x = s.new_real();
            s.assert_formula(
                &Formula::var(p).implies(LinExpr::var(x).eq_expr(LinExpr::from(1))),
            );
            s.assert_formula(
                &Formula::var(p)
                    .not()
                    .implies(LinExpr::var(x).eq_expr(LinExpr::from(0))),
            );
            sum = sum + LinExpr::var(x);
            card.push(Formula::var(p));
        }
        s.assert_formula(&Formula::at_most(card, 2));
        s.push();
        s.assert_formula(&sum.clone().ge(LinExpr::from(3)));
        assert!(!s.check().is_sat());
        s.pop();
        s.assert_formula(&sum.ge(LinExpr::from(2)));
        assert!(s.check().is_sat());
    }
}
