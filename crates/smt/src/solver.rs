//! The user-facing SMT solver: assertion stack, check, model extraction.
//!
//! [`Solver`] collects [`Formula`] assertions with [`Solver::push`] /
//! [`Solver::pop`] scoping, and [`Solver::check`] decides their conjunction
//! over QF_LRA. Each check encodes the current assertion set from scratch —
//! the paper's Algorithm 1 uses push/pop around whole verification calls, so
//! re-encoding (rather than incremental clause retraction) keeps the solver
//! simple without changing any observable behavior.
//!
//! # Examples
//!
//! ```
//! use sta_smt::{Formula, LinExpr, LinExprCmp, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_real();
//! let y = solver.new_real();
//! solver.assert_formula(&(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)));
//! solver.assert_formula(&LinExpr::var(x).ge(LinExpr::from(7)));
//! let model = solver.check().expect_sat();
//! assert!(model.real_value(y).to_f64() <= 3.0);
//! ```

use crate::certify::{check_unsat_proof, eval_formula, CertifyError, CertifyLevel};
use crate::cnf::Encoder;
use crate::expr::RealVar;
use crate::formula::{BoolVar, Formula};
use crate::lint::{self, LintReport, Severity};
use crate::rational::Rational;
use crate::sat::{CdclSolver, LBool, SatOutcome};
use crate::simplex::Simplex;
use crate::stats::SolverStats;
use std::time::Instant;

/// A satisfying assignment for the problem variables.
///
/// Every declared variable has a value; variables unconstrained by the
/// assertions default to `false` / `0`.
#[derive(Debug, Clone)]
pub struct Model {
    bools: Vec<bool>,
    reals: Vec<Rational>,
}

impl Model {
    /// Value of a Boolean variable.
    ///
    /// # Panics
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn bool_value(&self, v: BoolVar) -> bool {
        self.bools[v.0 as usize]
    }

    /// Value of a real variable.
    ///
    /// # Panics
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn real_value(&self, v: RealVar) -> &Rational {
        &self.reals[v.0 as usize]
    }
}

/// Outcome of [`Solver::check`].
#[derive(Debug, Clone)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Extracts the model.
    ///
    /// # Panics
    /// Panics if the result is `Unsat`.
    pub fn expect_sat(self) -> Model {
        match self {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("expected sat, got unsat"),
        }
    }

    /// The model, if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

/// An SMT solver for Boolean combinations of linear real arithmetic.
///
/// See the [module docs](self) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    n_bools: u32,
    n_reals: u32,
    assertions: Vec<Formula>,
    scopes: Vec<usize>,
    last_stats: Option<SolverStats>,
    certify: CertifyLevel,
}

impl Solver {
    /// Creates a solver with no variables or assertions.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Declares a fresh Boolean variable.
    pub fn new_bool(&mut self) -> BoolVar {
        let v = BoolVar(self.n_bools);
        self.n_bools += 1;
        v
    }

    /// Declares a fresh real variable.
    pub fn new_real(&mut self) -> RealVar {
        let v = RealVar(self.n_reals);
        self.n_reals += 1;
        v
    }

    /// Asserts `f` in the current scope.
    pub fn assert_formula(&mut self, f: &Formula) {
        self.assertions.push(f.clone());
    }

    /// Opens a new assertion scope.
    pub fn push(&mut self) {
        self.scopes.push(self.assertions.len());
    }

    /// Discards all assertions added since the matching [`Solver::push`].
    ///
    /// # Panics
    /// Panics if there is no open scope.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        self.assertions.truncate(mark);
    }

    /// Number of assertions currently active.
    pub fn num_assertions(&self) -> usize {
        self.assertions.len()
    }

    /// Statistics of the most recent [`Solver::check`] call.
    pub fn last_stats(&self) -> Option<&SolverStats> {
        self.last_stats.as_ref()
    }

    /// Sets how much certification [`Solver::check`] performs.
    pub fn set_certify(&mut self, level: CertifyLevel) {
        self.certify = level;
    }

    /// The configured certification level.
    pub fn certify_level(&self) -> CertifyLevel {
        self.certify
    }

    /// Statically analyses the current assertion set without solving.
    pub fn lint(&self) -> LintReport {
        lint::lint(&self.assertions, self.n_bools, self.n_reals)
    }

    /// Renders the assertion set as text, for reproducing failures.
    pub fn dump_assertions(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; {} bool vars, {} real vars, {} assertions",
            self.n_bools,
            self.n_reals,
            self.assertions.len()
        );
        for f in &self.assertions {
            let _ = writeln!(out, "(assert {f})");
        }
        out
    }

    /// Decides satisfiability of the asserted conjunction.
    ///
    /// # Panics
    /// Panics if certification is enabled (see [`Solver::set_certify`]) and
    /// the answer fails to certify — a solver bug, reported together with a
    /// dump of the assertion set for reproduction.
    pub fn check(&mut self) -> SatResult {
        match self.check_certified() {
            Ok(result) => result,
            Err(e) => panic!("{e}\nassertions:\n{}", self.dump_assertions()),
        }
    }

    /// Decides satisfiability, returning certification failures as errors.
    ///
    /// Under [`CertifyLevel::Full`] the assertion set is first linted in
    /// deny mode (error-severity findings abort before solving), proof
    /// logging is enabled, and an `unsat` answer is replayed through the
    /// independent RUP/Farkas checker. Under [`CertifyLevel::CheckModels`]
    /// (or `Full`), a `sat` answer's model is re-evaluated against every
    /// original assertion with exact arithmetic.
    pub fn check_certified(&mut self) -> Result<SatResult, CertifyError> {
        let start = Instant::now();
        let full = self.certify >= CertifyLevel::Full;
        let mut lint_report = LintReport::new();
        if full {
            lint_report = self.lint();
            if lint_report.has_errors() {
                return Err(CertifyError::new(format!(
                    "lint errors in deny mode:\n{lint_report}"
                )));
            }
        }
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut encoder = Encoder::new();
        if full {
            sat.enable_proof();
        }
        // Materialize every declared real variable so the model covers them.
        for i in 0..self.n_reals {
            simplex.solver_var(RealVar(i));
        }
        for f in &self.assertions {
            encoder.assert_root(f, &mut sat, &mut simplex);
        }
        if full {
            // Encoding-level pass (duplicate / subsumed clauses) over the
            // clause database before any learning happens.
            lint_report.merge(lint::lint_clauses(&sat.clause_list()));
        }
        let encode_done = Instant::now();
        let outcome = sat.solve(&mut simplex);
        if std::env::var_os("STA_SMT_DEBUG").is_some() {
            let t = &simplex.debug_timers;
            eprintln!(
                "[sta-smt] encode {:.2?} solve {:.2?} | simplex repair {:.2?} \
                 scan {:.2?} pivot {:.2?} iters {}",
                encode_done - start,
                encode_done.elapsed(),
                t.repair,
                t.scan,
                t.pivot,
                t.iterations,
            );
        }
        let counters = sat.counters();
        let mut stats = SolverStats {
            bool_vars: self.n_bools as usize,
            real_vars: self.n_reals as usize,
            assertions: self.assertions.len(),
            sat_vars: sat.num_vars(),
            clauses: encoder.clauses,
            clause_lits: encoder.clause_lits,
            atoms: encoder.num_atoms(),
            simplex_vars: simplex.num_vars(),
            simplex_rows: simplex.num_rows(),
            tableau_entries: simplex.tableau_entries(),
            pivots: simplex.pivots(),
            decisions: counters.decisions,
            propagations: counters.propagations,
            conflicts: counters.conflicts,
            theory_conflicts: counters.theory_conflicts,
            restarts: counters.restarts,
            learned_clauses: counters.learned_clauses,
            proof_steps: 0,
            certified: false,
            lint_errors: lint_report.count(Severity::Error),
            lint_warnings: lint_report.count(Severity::Warning),
            lint_infos: lint_report.count(Severity::Info),
            solve_time: start.elapsed(),
        };
        let result = match outcome {
            SatOutcome::Unsat => {
                if full {
                    let proof = sat
                        .take_proof()
                        .ok_or_else(|| CertifyError::new("proof logging produced no proof"))?;
                    stats.proof_steps = proof.num_derivations() as u64;
                    check_unsat_proof(&proof, &simplex.certificate_context())?;
                    stats.certified = true;
                }
                SatResult::Unsat
            }
            SatOutcome::Sat => {
                let reals = simplex.concrete_model();
                let bools: Vec<bool> = (0..self.n_bools)
                    .map(|i| match encoder.lookup_bool(BoolVar(i)) {
                        Some(v) => sat.value(v) == LBool::True,
                        None => false,
                    })
                    .collect();
                if self.certify >= CertifyLevel::CheckModels {
                    for f in &self.assertions {
                        if !eval_formula(f, &bools, &reals) {
                            return Err(CertifyError::new(format!(
                                "model does not satisfy asserted formula {f}"
                            )));
                        }
                    }
                    stats.certified = true;
                }
                SatResult::Sat(Model { bools, reals })
            }
        };
        stats.solve_time = start.elapsed();
        self.last_stats = Some(stats);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::formula::LinExprCmp;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn pure_boolean() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let q = s.new_bool();
        s.assert_formula(&Formula::or(vec![Formula::var(p), Formula::var(q)]));
        s.assert_formula(&Formula::var(p).not());
        let m = s.check().expect_sat();
        assert!(!m.bool_value(p));
        assert!(m.bool_value(q));
    }

    #[test]
    fn pure_arithmetic_system() {
        // x + y = 10, x − y = 4 ⇒ x = 7, y = 3.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(
            &(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)),
        );
        s.assert_formula(
            &(LinExpr::var(x) - LinExpr::var(y)).eq_expr(LinExpr::from(4)),
        );
        let m = s.check().expect_sat();
        assert_eq!(*m.real_value(x), r(7, 1));
        assert_eq!(*m.real_value(y), r(3, 1));
    }

    #[test]
    fn mixed_boolean_arithmetic() {
        // p → x ≥ 5, ¬p → x ≤ −5, x = 2 forces... nothing consistent with p,
        // so p must be true and x ≥ 5 contradicts x = 2: unsat.
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
        assert!(!s.check().is_sat());
    }

    #[test]
    fn strict_inequalities_exact() {
        // 0 < x < 1 and 3x = 1 is sat with x = 1/3.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        s.assert_formula(
            &(LinExpr::var(x) * r(3, 1)).eq_expr(LinExpr::from(1)),
        );
        let m = s.check().expect_sat();
        assert_eq!(*m.real_value(x), r(1, 3));
    }

    #[test]
    fn strict_open_interval_has_interior_point() {
        // 0 < x < 1 alone: the delta-rational model must concretize to a
        // rational strictly inside the interval.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        let m = s.check().expect_sat();
        let v = m.real_value(x);
        assert!(v > &r(0, 1) && v < &r(1, 1), "got {v}");
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(0)));
        s.push();
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(0)));
        assert!(!s.check().is_sat());
        s.pop();
        assert!(s.check().is_sat());
    }

    #[test]
    fn unconstrained_variables_get_defaults() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::top());
        let m = s.check().expect_sat();
        assert!(!m.bool_value(p));
        assert_eq!(*m.real_value(x), Rational::zero());
    }

    #[test]
    fn stats_populated_after_check() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        let _ = s.check();
        let stats = s.last_stats().expect("stats");
        assert!(stats.sat_vars > 0);
        assert!(stats.estimated_bytes() > 0);
    }

    #[test]
    fn certified_check_sat_and_unsat() {
        // Same mixed Boolean/arithmetic problem as above, fully certified:
        // the unsat branch exercises theory lemmas with Farkas certificates
        // through the proof replayer, and the sat branch re-evaluates the
        // model against the original formulas.
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        assert_eq!(s.certify_level(), CertifyLevel::Full);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        s.push();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
        assert!(!s.check().is_sat());
        let stats = s.last_stats().expect("stats").clone();
        assert!(stats.certified);
        assert!(stats.proof_steps > 0);
        s.pop();
        let m = s.check().expect_sat();
        assert!(s.last_stats().expect("stats").certified);
        let v = m.real_value(x);
        assert!(v >= &r(5, 1) || v <= &r(-5, 1));
    }

    #[test]
    fn deny_mode_rejects_contradictory_bounds_before_solving() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(1)));
        let err = s.check_certified().unwrap_err();
        assert!(err.message.contains("lint"), "{}", err.message);
        // Without certification the solver still answers (unsat).
        s.set_certify(CertifyLevel::Off);
        assert!(!s.check().is_sat());
    }

    #[test]
    fn corrupted_model_fails_reevaluation() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::CheckModels);
        let x = s.new_real();
        let f = LinExpr::var(x).ge(LinExpr::from(3));
        s.assert_formula(&f);
        let m = s.check().expect_sat();
        // The genuine model passes; a tampered one is caught.
        assert!(crate::certify::eval_formula(&f, &m.bools, &m.reals));
        let mut bad = m.clone();
        bad.reals[x.0 as usize] = Rational::zero();
        assert!(!crate::certify::eval_formula(&f, &bad.bools, &bad.reals));
    }

    #[test]
    fn ne_forces_displacement() {
        // x = y ∧ x ≠ 0 ∧ y ≤ 0 ⇒ x = y < 0.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::var(y)));
        s.assert_formula(&LinExpr::var(x).ne_expr(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(y).le(LinExpr::from(0)));
        let m = s.check().expect_sat();
        assert!(m.real_value(x).is_negative());
        assert_eq!(m.real_value(x), m.real_value(y));
    }

    #[test]
    fn cardinality_over_implication_guards() {
        // 4 booleans, each forces its real to 1; at most 2 true; sum of
        // reals ≥ 3 ⇒ unsat (reals otherwise pinned to 0).
        let mut s = Solver::new();
        let mut sum = LinExpr::zero();
        let mut card = Vec::new();
        for _ in 0..4 {
            let p = s.new_bool();
            let x = s.new_real();
            s.assert_formula(
                &Formula::var(p).implies(LinExpr::var(x).eq_expr(LinExpr::from(1))),
            );
            s.assert_formula(
                &Formula::var(p)
                    .not()
                    .implies(LinExpr::var(x).eq_expr(LinExpr::from(0))),
            );
            sum = sum + LinExpr::var(x);
            card.push(Formula::var(p));
        }
        s.assert_formula(&Formula::at_most(card, 2));
        s.push();
        s.assert_formula(&sum.clone().ge(LinExpr::from(3)));
        assert!(!s.check().is_sat());
        s.pop();
        s.assert_formula(&sum.ge(LinExpr::from(2)));
        assert!(s.check().is_sat());
    }
}
