//! The user-facing SMT solver: assertion stack, check, model extraction.
//!
//! [`Solver`] collects [`Formula`] assertions with [`Solver::push`] /
//! [`Solver::pop`] scoping, and [`Solver::check`] decides their conjunction
//! over QF_LRA. Each check encodes the current assertion set from scratch —
//! the paper's Algorithm 1 uses push/pop around whole verification calls, so
//! re-encoding (rather than incremental clause retraction) keeps the solver
//! simple without changing any observable behavior.
//!
//! # Examples
//!
//! ```
//! use sta_smt::{Formula, LinExpr, LinExprCmp, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_real();
//! let y = solver.new_real();
//! solver.assert_formula(&(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)));
//! solver.assert_formula(&LinExpr::var(x).ge(LinExpr::from(7)));
//! let model = solver.check().expect_sat();
//! assert!(model.real_value(y).to_f64() <= 3.0);
//! ```

use crate::cnf::Encoder;
use crate::expr::RealVar;
use crate::formula::{BoolVar, Formula};
use crate::rational::Rational;
use crate::sat::{CdclSolver, LBool, SatOutcome};
use crate::simplex::Simplex;
use crate::stats::SolverStats;
use std::time::Instant;

/// A satisfying assignment for the problem variables.
///
/// Every declared variable has a value; variables unconstrained by the
/// assertions default to `false` / `0`.
#[derive(Debug, Clone)]
pub struct Model {
    bools: Vec<bool>,
    reals: Vec<Rational>,
}

impl Model {
    /// Value of a Boolean variable.
    ///
    /// # Panics
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn bool_value(&self, v: BoolVar) -> bool {
        self.bools[v.0 as usize]
    }

    /// Value of a real variable.
    ///
    /// # Panics
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn real_value(&self, v: RealVar) -> &Rational {
        &self.reals[v.0 as usize]
    }
}

/// Outcome of [`Solver::check`].
#[derive(Debug, Clone)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Extracts the model.
    ///
    /// # Panics
    /// Panics if the result is `Unsat`.
    pub fn expect_sat(self) -> Model {
        match self {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("expected sat, got unsat"),
        }
    }

    /// The model, if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

/// An SMT solver for Boolean combinations of linear real arithmetic.
///
/// See the [module docs](self) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    n_bools: u32,
    n_reals: u32,
    assertions: Vec<Formula>,
    scopes: Vec<usize>,
    last_stats: Option<SolverStats>,
}

impl Solver {
    /// Creates a solver with no variables or assertions.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Declares a fresh Boolean variable.
    pub fn new_bool(&mut self) -> BoolVar {
        let v = BoolVar(self.n_bools);
        self.n_bools += 1;
        v
    }

    /// Declares a fresh real variable.
    pub fn new_real(&mut self) -> RealVar {
        let v = RealVar(self.n_reals);
        self.n_reals += 1;
        v
    }

    /// Asserts `f` in the current scope.
    pub fn assert_formula(&mut self, f: &Formula) {
        self.assertions.push(f.clone());
    }

    /// Opens a new assertion scope.
    pub fn push(&mut self) {
        self.scopes.push(self.assertions.len());
    }

    /// Discards all assertions added since the matching [`Solver::push`].
    ///
    /// # Panics
    /// Panics if there is no open scope.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        self.assertions.truncate(mark);
    }

    /// Number of assertions currently active.
    pub fn num_assertions(&self) -> usize {
        self.assertions.len()
    }

    /// Statistics of the most recent [`Solver::check`] call.
    pub fn last_stats(&self) -> Option<&SolverStats> {
        self.last_stats.as_ref()
    }

    /// Decides satisfiability of the asserted conjunction.
    pub fn check(&mut self) -> SatResult {
        let start = Instant::now();
        let mut sat = CdclSolver::new();
        let mut simplex = Simplex::new();
        let mut encoder = Encoder::new();
        // Materialize every declared real variable so the model covers them.
        for i in 0..self.n_reals {
            simplex.solver_var(RealVar(i));
        }
        for f in &self.assertions {
            encoder.assert_root(f, &mut sat, &mut simplex);
        }
        let encode_done = Instant::now();
        let outcome = sat.solve(&mut simplex);
        if std::env::var_os("STA_SMT_DEBUG").is_some() {
            let t = &simplex.debug_timers;
            eprintln!(
                "[sta-smt] encode {:.2?} solve {:.2?} | simplex repair {:.2?} \
                 scan {:.2?} pivot {:.2?} iters {}",
                encode_done - start,
                encode_done.elapsed(),
                t.repair,
                t.scan,
                t.pivot,
                t.iterations,
            );
        }
        let counters = sat.counters();
        let stats = SolverStats {
            bool_vars: self.n_bools as usize,
            real_vars: self.n_reals as usize,
            assertions: self.assertions.len(),
            sat_vars: sat.num_vars(),
            clauses: encoder.clauses,
            clause_lits: encoder.clause_lits,
            atoms: encoder.num_atoms(),
            simplex_vars: simplex.num_vars(),
            simplex_rows: simplex.num_rows(),
            tableau_entries: simplex.tableau_entries(),
            pivots: simplex.pivots(),
            decisions: counters.decisions,
            propagations: counters.propagations,
            conflicts: counters.conflicts,
            theory_conflicts: counters.theory_conflicts,
            restarts: counters.restarts,
            learned_clauses: counters.learned_clauses,
            solve_time: start.elapsed(),
        };
        self.last_stats = Some(stats);
        match outcome {
            SatOutcome::Unsat => SatResult::Unsat,
            SatOutcome::Sat => {
                let reals = simplex.concrete_model();
                let bools = (0..self.n_bools)
                    .map(|i| match encoder.lookup_bool(BoolVar(i)) {
                        Some(v) => sat.value(v) == LBool::True,
                        None => false,
                    })
                    .collect();
                SatResult::Sat(Model { bools, reals })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::formula::LinExprCmp;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn pure_boolean() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let q = s.new_bool();
        s.assert_formula(&Formula::or(vec![Formula::var(p), Formula::var(q)]));
        s.assert_formula(&Formula::var(p).not());
        let m = s.check().expect_sat();
        assert!(!m.bool_value(p));
        assert!(m.bool_value(q));
    }

    #[test]
    fn pure_arithmetic_system() {
        // x + y = 10, x − y = 4 ⇒ x = 7, y = 3.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(
            &(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)),
        );
        s.assert_formula(
            &(LinExpr::var(x) - LinExpr::var(y)).eq_expr(LinExpr::from(4)),
        );
        let m = s.check().expect_sat();
        assert_eq!(*m.real_value(x), r(7, 1));
        assert_eq!(*m.real_value(y), r(3, 1));
    }

    #[test]
    fn mixed_boolean_arithmetic() {
        // p → x ≥ 5, ¬p → x ≤ −5, x = 2 forces... nothing consistent with p,
        // so p must be true and x ≥ 5 contradicts x = 2: unsat.
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
        assert!(!s.check().is_sat());
    }

    #[test]
    fn strict_inequalities_exact() {
        // 0 < x < 1 and 3x = 1 is sat with x = 1/3.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        s.assert_formula(
            &(LinExpr::var(x) * r(3, 1)).eq_expr(LinExpr::from(1)),
        );
        let m = s.check().expect_sat();
        assert_eq!(*m.real_value(x), r(1, 3));
    }

    #[test]
    fn strict_open_interval_has_interior_point() {
        // 0 < x < 1 alone: the delta-rational model must concretize to a
        // rational strictly inside the interval.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        let m = s.check().expect_sat();
        let v = m.real_value(x);
        assert!(v > &r(0, 1) && v < &r(1, 1), "got {v}");
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(0)));
        s.push();
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(0)));
        assert!(!s.check().is_sat());
        s.pop();
        assert!(s.check().is_sat());
    }

    #[test]
    fn unconstrained_variables_get_defaults() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::top());
        let m = s.check().expect_sat();
        assert!(!m.bool_value(p));
        assert_eq!(*m.real_value(x), Rational::zero());
    }

    #[test]
    fn stats_populated_after_check() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        let _ = s.check();
        let stats = s.last_stats().expect("stats");
        assert!(stats.sat_vars > 0);
        assert!(stats.estimated_bytes() > 0);
    }

    #[test]
    fn ne_forces_displacement() {
        // x = y ∧ x ≠ 0 ∧ y ≤ 0 ⇒ x = y < 0.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::var(y)));
        s.assert_formula(&LinExpr::var(x).ne_expr(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(y).le(LinExpr::from(0)));
        let m = s.check().expect_sat();
        assert!(m.real_value(x).is_negative());
        assert_eq!(m.real_value(x), m.real_value(y));
    }

    #[test]
    fn cardinality_over_implication_guards() {
        // 4 booleans, each forces its real to 1; at most 2 true; sum of
        // reals ≥ 3 ⇒ unsat (reals otherwise pinned to 0).
        let mut s = Solver::new();
        let mut sum = LinExpr::zero();
        let mut card = Vec::new();
        for _ in 0..4 {
            let p = s.new_bool();
            let x = s.new_real();
            s.assert_formula(
                &Formula::var(p).implies(LinExpr::var(x).eq_expr(LinExpr::from(1))),
            );
            s.assert_formula(
                &Formula::var(p)
                    .not()
                    .implies(LinExpr::var(x).eq_expr(LinExpr::from(0))),
            );
            sum = sum + LinExpr::var(x);
            card.push(Formula::var(p));
        }
        s.assert_formula(&Formula::at_most(card, 2));
        s.push();
        s.assert_formula(&sum.clone().ge(LinExpr::from(3)));
        assert!(!s.check().is_sat());
        s.pop();
        s.assert_formula(&sum.ge(LinExpr::from(2)));
        assert!(s.check().is_sat());
    }
}
