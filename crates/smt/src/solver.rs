//! The user-facing SMT solver: assertion stack, check, model extraction.
//!
//! [`Solver`] collects [`Formula`] assertions with [`Solver::push`] /
//! [`Solver::pop`] scoping, and [`Solver::check`] decides their conjunction
//! over QF_LRA.
//!
//! # Incremental reuse
//!
//! [`Solver::check`] reuses work across the assertion stack without ever
//! reusing solver *search* state: the assertions below the first open scope
//! (the "base") are encoded once into a cached, never-solved
//! CDCL/simplex/encoder trio, and each check clones that trio and encodes
//! only the scoped deltas into the clone before solving it. The
//! push/pop-heavy campaign pattern (assert the grid constraints once, push
//! a per-variant delta, check, pop) thus pays base encoding once per solver
//! instead of once per check, while learned clauses, theory state and
//! proof-log steps stay strictly per-check — popping a scope can never leak
//! retracted constraints or out-of-scope proof steps into later answers. A
//! [`Solver::pop`] that retracts assertions the cache has already encoded
//! (possible only when certification levels changed mid-stack) drains the
//! cache entirely.
//!
//! [`Solver::check_assuming`] goes further: it solves on a single
//! *persistent* core that lives across checks, so learned clauses, variable
//! activity, saved phases and the simplex basis all carry over. Scoped
//! assertions are guarded by per-scope activation literals (assumed true
//! while the scope is open); a pop retires the scope by asserting the
//! guard's negation as a root unit and hard-deleting every clause that
//! carries it — including learned clauses derived under the scope — so
//! retracted constraints can never resurface in an answer or a replayed
//! proof. [`Solver::set_incremental`] (default on) switches
//! `check_assuming` back to the clone-per-check path for A/B comparison;
//! `check` itself always uses the clone path, keeping its answers and
//! metrics identical in both modes.
//!
//! Checks accept a [`Budget`]: deadlines and cooperative cancellation are
//! polled at every phase — Tseitin/cardinality encoding (including base
//! extension), the CDCL decision and conflict loops, and simplex pivoting —
//! surfacing as [`SatResult::Unknown`] instead of hanging. An interrupt
//! during base extension drains the cache (the half-encoded assertion
//! would poison the template); an interrupt while encoding scoped deltas
//! only discards the per-check clone.
//!
//! # Examples
//!
//! ```
//! use sta_smt::{Formula, LinExpr, LinExprCmp, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_real();
//! let y = solver.new_real();
//! solver.assert_formula(&(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)));
//! solver.assert_formula(&LinExpr::var(x).ge(LinExpr::from(7)));
//! let model = solver.check().expect_sat();
//! assert!(model.real_value(y).to_f64() <= 3.0);
//! ```

use crate::budget::{Budget, Interrupt};
use crate::certify::{
    check_assumption_unsat_proof, check_unsat_proof, eval_formula, CertifyError, CertifyLevel,
};
use crate::cnf::Encoder;
use crate::expr::RealVar;
use crate::formula::{BoolVar, Formula};
use crate::lint::{self, LintReport, Severity};
use crate::profile::{Clock, Profiler};
use crate::rational::Rational;
use crate::sat::{CdclSolver, LBool, Lit, SatOutcome};
use crate::simplex::{Simplex, SimplexMode};
use crate::stats::SolverStats;
use std::fmt;

/// A satisfying assignment for the problem variables.
///
/// Every declared variable has a value; variables unconstrained by the
/// assertions default to `false` / `0`.
#[derive(Debug, Clone)]
pub struct Model {
    bools: Vec<bool>,
    reals: Vec<Rational>,
}

impl Model {
    /// Value of a Boolean variable.
    ///
    /// # Panics
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn bool_value(&self, v: BoolVar) -> bool {
        self.bools[v.0 as usize]
    }

    /// Value of a real variable.
    ///
    /// # Panics
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn real_value(&self, v: RealVar) -> &Rational {
        &self.reals[v.0 as usize]
    }
}

/// Outcome of [`Solver::check`].
#[derive(Debug, Clone)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The check's [`Budget`] ran out before a verdict. The assertion stack
    /// is untouched — raise the budget and re-check, or treat the instance
    /// as undecided.
    Unknown(Interrupt),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unknown` (budget exhausted).
    pub fn is_unknown(&self) -> bool {
        matches!(self, SatResult::Unknown(_))
    }

    /// Extracts the model.
    ///
    /// # Panics
    /// Panics if the result is not `Sat`.
    pub fn expect_sat(self) -> Model {
        match self {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("expected sat, got unsat"),
            SatResult::Unknown(why) => panic!("expected sat, got unknown ({why})"),
        }
    }

    /// The model, if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat | SatResult::Unknown(_) => None,
        }
    }
}

/// Misuse of the solver's stack discipline, reported instead of panicking
/// so embedding tools can map it to a usage exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError {
    /// What the caller did wrong.
    pub message: String,
}

impl UsageError {
    fn new(message: impl Into<String>) -> Self {
        UsageError {
            message: message.into(),
        }
    }
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "solver usage error: {}", self.message)
    }
}

impl std::error::Error for UsageError {}

/// The cached base encoding: the assertion-stack prefix below the first
/// open scope, encoded into a CDCL/simplex/encoder trio that is *never*
/// solved. Checks clone it and solve the clone (see the module docs).
#[derive(Debug, Clone)]
struct BaseEncoding {
    sat: CdclSolver,
    simplex: Simplex,
    encoder: Encoder,
    /// Leading assertions already encoded (`assertions[..encoded]`).
    encoded: usize,
    /// Problem reals materialized into the tableau so far.
    reals: u32,
    /// Whether proof logging was on when the base was built; a mismatch
    /// with the current certification level forces a rebuild, since proofs
    /// must log the complete original CNF.
    proof: bool,
}

/// How the live core guards one open assertion scope.
#[derive(Debug, Clone, Copy)]
enum ScopeGuard {
    /// A [`Solver::push`] scope none of whose assertions have been encoded
    /// yet; the activation literal is allocated on first use.
    Lazy,
    /// A [`Solver::push`] scope with its activation literal: every clause
    /// from the scope carries `¬act`, and `act` is assumed while the scope
    /// is open, so popping retires the scope surgically.
    Act(Lit),
    /// A [`Solver::push_sticky`] scope: assertions are encoded unguarded,
    /// exactly like base assertions, so root simplification applies in
    /// full. The price is paid at pop time — the whole core is dropped.
    Sticky,
}

/// The persistent incremental core behind [`Solver::check_assuming`]: one
/// CDCL/simplex/encoder trio solved *in place* across checks, so learned
/// clauses, variable activity, saved phases and the warm simplex basis all
/// carry over. Scoped assertions are guarded by per-scope activation
/// literals; popped scopes are retired lazily at the next check's preamble
/// (root unit `¬act` plus hard deletion of every clause carrying `¬act`).
/// Sticky scopes skip the guard — and the core — instead (see
/// [`ScopeGuard`]).
#[derive(Debug)]
struct LiveCore {
    sat: CdclSolver,
    simplex: Simplex,
    encoder: Encoder,
    /// Leading assertions already encoded (`assertions[..encoded]`).
    encoded: usize,
    /// Problem reals materialized into the tableau so far.
    reals: u32,
    /// Per-open-scope guards, parallel to `Solver::scopes`.
    scope_guards: Vec<ScopeGuard>,
    /// Activation literals of popped scopes awaiting retirement.
    retired: Vec<Lit>,
    /// Whether proof logging was on when the core was built; a mismatch
    /// with the current certification level forces a rebuild.
    proof: bool,
}

/// An SMT solver for Boolean combinations of linear real arithmetic.
///
/// See the [module docs](self) for an example.
#[derive(Debug)]
pub struct Solver {
    n_bools: u32,
    n_reals: u32,
    assertions: Vec<Formula>,
    scopes: Vec<usize>,
    /// Parallel to `scopes`: whether each open scope was opened with
    /// [`Solver::push_sticky`]. Kept on the solver (not the core) because
    /// the core is built lazily, possibly after scopes are already open.
    sticky: Vec<bool>,
    last_stats: Option<SolverStats>,
    certify: CertifyLevel,
    budget: Budget,
    base: Option<BaseEncoding>,
    /// Persistent core for [`Solver::check_assuming`]; built lazily,
    /// dropped on encode interrupts and mode/certification flips.
    live: Option<LiveCore>,
    /// Whether `check_assuming` uses the persistent core (default) or
    /// falls back to the clone-per-check path.
    incremental: bool,
    /// Which simplex engine checks use (see [`SimplexMode`]). Applied when
    /// a base/live core is built; changing it drops both caches.
    simplex_mode: SimplexMode,
    /// The single time source for every per-check wall clock in
    /// [`SolverStats`] (tests inject a fake; see [`crate::profile`]).
    clock: Clock,
    /// Span profiler, when attached: checks open `encode`/`search`/
    /// `certify` spans (with `base`/`delta` and `simplex` leaves).
    profiler: Option<Profiler>,
    /// Whether checks sample a progress timeline into their stats.
    progress: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            n_bools: 0,
            n_reals: 0,
            assertions: Vec::new(),
            scopes: Vec::new(),
            sticky: Vec::new(),
            last_stats: None,
            certify: CertifyLevel::default(),
            budget: Budget::default(),
            base: None,
            live: None,
            incremental: true,
            simplex_mode: SimplexMode::Auto,
            clock: Clock::default(),
            profiler: None,
            progress: false,
        }
    }
}

impl Solver {
    /// Creates a solver with no variables or assertions.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Declares a fresh Boolean variable.
    pub fn new_bool(&mut self) -> BoolVar {
        let v = BoolVar(self.n_bools);
        self.n_bools += 1;
        v
    }

    /// Declares a fresh real variable.
    pub fn new_real(&mut self) -> RealVar {
        let v = RealVar(self.n_reals);
        self.n_reals += 1;
        v
    }

    /// Asserts `f` in the current scope.
    pub fn assert_formula(&mut self, f: &Formula) {
        self.assertions.push(f.clone());
    }

    /// Opens a new assertion scope.
    pub fn push(&mut self) {
        self.scopes.push(self.assertions.len());
        self.sticky.push(false);
        if let Some(core) = &mut self.live {
            core.scope_guards.push(ScopeGuard::Lazy);
        }
    }

    /// Opens a *sticky* assertion scope: [`Solver::check_assuming`]'s
    /// persistent core encodes its assertions unguarded, like base
    /// assertions, so unit clauses propagate and simplify at the root
    /// instead of hiding behind an activation literal. Use it for a
    /// long-lived scenario that many checks share. The trade-off is at
    /// [`Solver::pop`]: a sticky scope cannot be retired surgically, so
    /// popping one drops the live core and the next `check_assuming`
    /// rebuilds from scratch. [`Solver::check`] treats sticky and plain
    /// scopes identically.
    pub fn push_sticky(&mut self) {
        self.scopes.push(self.assertions.len());
        self.sticky.push(true);
        if let Some(core) = &mut self.live {
            core.scope_guards.push(ScopeGuard::Sticky);
        }
    }

    /// Discards all assertions added since the matching [`Solver::push`].
    ///
    /// # Errors
    /// Returns a [`UsageError`] if there is no open scope.
    pub fn pop(&mut self) -> Result<(), UsageError> {
        let Some(mark) = self.scopes.pop() else {
            return Err(UsageError::new("pop without matching push"));
        };
        self.assertions.truncate(mark);
        // Drain the cached base if the pop retracted assertions it has
        // encoded — its clause database and proof log would otherwise leak
        // out-of-scope constraints and proof steps into later checks. (The
        // cache only ever covers the prefix below the first open scope, so
        // this fires only on caches built before that scope was opened.)
        if self.base.as_ref().is_some_and(|b| b.encoded > mark) {
            self.base = None;
        }
        self.sticky.pop();
        let mut drop_core = false;
        if let Some(core) = &mut self.live {
            // Mark the popped scope's activation literal (if its first
            // assertion was ever encoded) for retirement at the next
            // check's preamble, and roll the encode cursor back so a
            // re-asserted suffix is re-encoded under fresh guards. A
            // sticky scope's assertions went in unguarded and cannot be
            // retracted surgically: drop the whole core if any were
            // encoded.
            match core.scope_guards.pop() {
                Some(ScopeGuard::Act(act)) => core.retired.push(act),
                Some(ScopeGuard::Sticky) if core.encoded > mark => drop_core = true,
                Some(ScopeGuard::Sticky) | Some(ScopeGuard::Lazy) | None => {}
            }
            core.encoded = core.encoded.min(mark);
        }
        if drop_core {
            self.live = None;
        }
        Ok(())
    }

    /// Number of assertions currently active.
    pub fn num_assertions(&self) -> usize {
        self.assertions.len()
    }

    /// Statistics of the most recent [`Solver::check`] call.
    pub fn last_stats(&self) -> Option<&SolverStats> {
        self.last_stats.as_ref()
    }

    /// Sets how much certification [`Solver::check`] performs.
    pub fn set_certify(&mut self, level: CertifyLevel) {
        self.certify = level;
    }

    /// Chooses between the persistent incremental core (the default) and
    /// the clone-per-check fallback for [`Solver::check_assuming`].
    /// Turning the mode off drops any live core; [`Solver::check`] is
    /// unaffected either way.
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
        if !on {
            self.live = None;
        }
    }

    /// Whether [`Solver::check_assuming`] uses the persistent core.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Chooses the simplex engine for subsequent checks: `Auto` (the
    /// default) starts dense and upgrades to the revised engine once the
    /// tableau crosses the size threshold, `Dense`/`Revised` pin one
    /// backend. Both engines replay identical pivot trajectories over
    /// exact rationals, so answers, models and deterministic counters do
    /// not depend on the mode. Changing the mode drops the cached base
    /// encoding and the live incremental core (they embed a simplex built
    /// in the old mode).
    pub fn set_simplex_mode(&mut self, mode: SimplexMode) {
        if self.simplex_mode != mode {
            self.simplex_mode = mode;
            self.base = None;
            self.live = None;
        }
    }

    /// The configured simplex engine mode.
    pub fn simplex_mode(&self) -> SimplexMode {
        self.simplex_mode
    }

    /// Sets the budget applied to every subsequent check. The default is
    /// unlimited; with a deadline or cancel token installed, checks return
    /// [`SatResult::Unknown`] instead of running past the budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The budget applied to checks.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The configured certification level.
    pub fn certify_level(&self) -> CertifyLevel {
        self.certify
    }

    /// Attaches a span profiler (and adopts its clock, so spans and
    /// stats timings come from the same source). Checks then record an
    /// `encode` → `search` → `certify` span tree, with `base`/`delta`
    /// encode children and the simplex's accumulated self-time as a
    /// `simplex` leaf under `search`.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.clock = profiler.clock().clone();
        self.profiler = Some(profiler);
    }

    /// Replaces the clock behind per-check wall-clock stats (tests
    /// inject a fake). [`Solver::set_profiler`] also sets this.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// Enables (or disables) progress-timeline sampling: when on, each
    /// check's [`SolverStats::progress`] carries a bounded sequence of
    /// counter samples recorded at decision boundaries.
    pub fn set_progress_sampling(&mut self, on: bool) {
        self.progress = on;
    }

    /// Statically analyses the current assertion set without solving.
    pub fn lint(&self) -> LintReport {
        lint::lint(&self.assertions, self.n_bools, self.n_reals)
    }

    /// Renders the assertion set as text, for reproducing failures.
    pub fn dump_assertions(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; {} bool vars, {} real vars, {} assertions",
            self.n_bools,
            self.n_reals,
            self.assertions.len()
        );
        for f in &self.assertions {
            let _ = writeln!(out, "(assert {f})");
        }
        out
    }

    /// Decides satisfiability of the asserted conjunction.
    ///
    /// # Panics
    /// Panics if certification is enabled (see [`Solver::set_certify`]) and
    /// the answer fails to certify — a solver bug, reported together with a
    /// dump of the assertion set for reproduction.
    pub fn check(&mut self) -> SatResult {
        match self.check_certified() {
            Ok(result) => result,
            Err(e) => panic!("{e}\nassertions:\n{}", self.dump_assertions()),
        }
    }

    /// Decides satisfiability, returning certification failures as errors.
    ///
    /// Under [`CertifyLevel::Full`] the assertion set is first linted in
    /// deny mode (error-severity findings abort before solving), proof
    /// logging is enabled, and an `unsat` answer is replayed through the
    /// independent RUP/Farkas checker. Under [`CertifyLevel::CheckModels`]
    /// (or `Full`), a `sat` answer's model is re-evaluated against every
    /// original assertion with exact arithmetic.
    pub fn check_certified(&mut self) -> Result<SatResult, CertifyError> {
        // One clock read per timing boundary, with every interval derived
        // from those reads — never a second `elapsed()` for the same
        // boundary, so the intervals in one stats row are consistent
        // (encode + search never exceeds solve).
        let start = self.clock.now();
        let prof = self.profiler.clone();
        let full = self.certify >= CertifyLevel::Full;
        let mut lint_report = LintReport::new();
        if full {
            lint_report = self.lint();
            if lint_report.has_errors() {
                return Err(CertifyError::new(format!(
                    "lint errors in deny mode:\n{lint_report}"
                )));
            }
        }
        // Base cache maintenance: rebuild on a proof-enablement change,
        // otherwise extend it over any new below-scope assertions. Only the
        // prefix below the first open scope is ever cached, so scoped
        // deltas never enter the template.
        let base_limit = self.scopes.first().copied().unwrap_or(self.assertions.len());
        if self.base.as_ref().is_some_and(|b| b.proof != full) {
            self.base = None;
        }
        let cache_hit = self.base.is_some();
        let mode = self.simplex_mode;
        let base = self.base.get_or_insert_with(|| {
            let mut sat = CdclSolver::new();
            if full {
                sat.enable_proof();
            }
            BaseEncoding {
                sat,
                simplex: Simplex::with_mode(mode),
                encoder: Encoder::new(),
                encoded: 0,
                reals: 0,
                proof: full,
            }
        });
        // Materialize every declared real variable so models cover them and
        // the clone sees a stable tableau layout.
        for i in base.reals..self.n_reals {
            base.simplex.solver_var(RealVar(i));
        }
        base.reals = self.n_reals;
        // The encoder honors the budget: a huge Tseitin/cardinality
        // expansion must not blow past the deadline before the search loop
        // ever polls. The base template is encoded under the budget and
        // reset to unlimited afterwards so later unlimited checks reuse it.
        let sp_encode = prof.as_ref().map(|p| p.span("encode"));
        base.encoder.set_budget(self.budget.clone());
        let mut base_interrupt = None;
        {
            let _sp_base = prof.as_ref().map(|p| p.span("base"));
            while base.encoded < base_limit {
                let f = &self.assertions[base.encoded];
                if let Err(why) = base.encoder.assert_root(f, &mut base.sat, &mut base.simplex) {
                    base_interrupt = Some(why);
                    break;
                }
                base.encoded += 1;
            }
        }
        base.encoder.set_budget(Budget::unlimited());
        if let Some(why) = base_interrupt {
            // The interrupted assertion is half-encoded into the template —
            // drop the cache so the next check rebuilds it cleanly.
            self.base = None;
            let mut stats = SolverStats::default();
            stats.bool_vars = self.n_bools as usize;
            stats.real_vars = self.n_reals as usize;
            stats.assertions = self.assertions.len();
            stats.base_cache_hit = cache_hit;
            stats.lint_errors = lint_report.count(Severity::Error);
            stats.lint_warnings = lint_report.count(Severity::Warning);
            stats.lint_infos = lint_report.count(Severity::Info);
            // The whole check was encoding; one clock read covers both.
            stats.encode_time = self.clock.now().saturating_sub(start);
            stats.solve_time = stats.encode_time;
            self.last_stats = Some(stats);
            return Ok(SatResult::Unknown(why));
        }
        // Per-check clone: scoped deltas are encoded into it and it alone
        // is solved, keeping learned clauses, theory state and proof steps
        // isolated to this check.
        let mut sat = base.sat.clone();
        let mut simplex = base.simplex.clone();
        let mut encoder = base.encoder.clone();
        encoder.set_budget(self.budget.clone());
        let mut delta_interrupt = None;
        {
            let _sp_delta = prof.as_ref().map(|p| p.span("delta"));
            for f in &self.assertions[base_limit..] {
                if let Err(why) = encoder.assert_root(f, &mut sat, &mut simplex) {
                    delta_interrupt = Some(why);
                    break;
                }
            }
        }
        if let Some(why) = delta_interrupt {
            // Only the clone saw the partial delta; the base stays valid.
            let mut stats = SolverStats::default();
            stats.bool_vars = self.n_bools as usize;
            stats.real_vars = self.n_reals as usize;
            stats.assertions = self.assertions.len();
            stats.sat_vars = sat.num_vars();
            stats.clauses = encoder.clauses;
            stats.clause_lits = encoder.clause_lits;
            stats.atoms = encoder.num_atoms();
            stats.base_cache_hit = cache_hit;
            stats.lint_errors = lint_report.count(Severity::Error);
            stats.lint_warnings = lint_report.count(Severity::Warning);
            stats.lint_infos = lint_report.count(Severity::Info);
            stats.encode_time = self.clock.now().saturating_sub(start);
            stats.solve_time = stats.encode_time;
            self.last_stats = Some(stats);
            return Ok(SatResult::Unknown(why));
        }
        drop(sp_encode);
        if full {
            // Encoding-level pass (duplicate / subsumed clauses) over the
            // clause database before any learning happens.
            lint_report.merge(lint::lint_clauses(&sat.clause_list()));
        }
        sat.set_budget(self.budget.clone());
        simplex.set_budget(self.budget.clone());
        if self.progress {
            sat.enable_progress(self.clock.clone());
        }
        if prof.is_some() {
            // The per-check clone starts from the never-solved base, so
            // its timers accumulate exactly this check's simplex work.
            simplex.enable_timing();
        }
        let encode_done = self.clock.now();
        let outcome = {
            let _sp_search = prof.as_ref().map(|p| p.span("search"));
            let outcome = sat.solve(&mut simplex);
            if let Some(p) = &prof {
                let t = &simplex.debug_timers();
                p.record_leaf("simplex", t.repair + t.scan + t.pivot, t.iterations);
                if simplex.refactorizations() > 0 {
                    p.record_leaf("simplex-factor", t.factor, simplex.refactorizations());
                }
            }
            outcome
        };
        let search_done = self.clock.now();
        let search_time = search_done.saturating_sub(encode_done);
        if std::env::var_os("STA_SMT_DEBUG").is_some() {
            let t = &simplex.debug_timers();
            eprintln!(
                "[sta-smt] encode {:.2?} search {:.2?} | simplex repair {:.2?} \
                 scan {:.2?} pivot {:.2?} iters {}",
                encode_done.saturating_sub(start),
                search_time,
                t.repair,
                t.scan,
                t.pivot,
                t.iterations,
            );
        }
        let counters = sat.counters();
        let progress = sat.take_progress();
        let mut stats = SolverStats {
            bool_vars: self.n_bools as usize,
            real_vars: self.n_reals as usize,
            assertions: self.assertions.len(),
            sat_vars: sat.num_vars(),
            clauses: encoder.clauses,
            clause_lits: encoder.clause_lits,
            atoms: encoder.num_atoms(),
            simplex_vars: simplex.num_vars(),
            simplex_rows: simplex.num_rows(),
            tableau_entries: simplex.tableau_entries(),
            pivots: simplex.pivots(),
            refactorizations: simplex.refactorizations(),
            decisions: counters.decisions,
            propagations: counters.propagations,
            conflicts: counters.conflicts,
            theory_conflicts: counters.theory_conflicts,
            restarts: counters.restarts,
            learned_clauses: counters.learned_clauses,
            clause_db: sat.num_clauses() as u64,
            bound_asserts: simplex.bound_asserts(),
            theory_checks: simplex.theory_checks(),
            retained_clauses: 0,
            deleted_clauses: 0,
            warm_pivots_saved: 0,
            base_cache_hit: cache_hit,
            proof_steps: 0,
            certified: false,
            lint_errors: lint_report.count(Severity::Error),
            lint_warnings: lint_report.count(Severity::Warning),
            lint_infos: lint_report.count(Severity::Info),
            solve_time: search_done.saturating_sub(start),
            encode_time: encode_done.saturating_sub(start),
            search_time,
            progress,
        };
        let result = match outcome {
            SatOutcome::Unsat => {
                if full {
                    let _sp_certify = prof.as_ref().map(|p| p.span("certify"));
                    let proof = sat
                        .take_proof()
                        .ok_or_else(|| CertifyError::new("proof logging produced no proof"))?;
                    stats.proof_steps = proof.num_derivations() as u64;
                    check_unsat_proof(&proof, &simplex.certificate_context())?;
                    stats.certified = true;
                }
                SatResult::Unsat
            }
            SatOutcome::Sat => {
                let reals = simplex.concrete_model();
                let bools: Vec<bool> = (0..self.n_bools)
                    .map(|i| match encoder.lookup_bool(BoolVar(i)) {
                        Some(v) => sat.value(v) == LBool::True,
                        None => false,
                    })
                    .collect();
                if self.certify >= CertifyLevel::CheckModels {
                    let _sp_certify = prof.as_ref().map(|p| p.span("certify"));
                    for f in &self.assertions {
                        if !eval_formula(f, &bools, &reals) {
                            return Err(CertifyError::new(format!(
                                "model does not satisfy asserted formula {f}"
                            )));
                        }
                    }
                    stats.certified = true;
                }
                SatResult::Sat(Model { bools, reals })
            }
            SatOutcome::Unknown(why) => SatResult::Unknown(why),
        };
        // Final wall clock includes certification; still one read.
        stats.solve_time = self.clock.now().saturating_sub(start);
        self.last_stats = Some(stats);
        Ok(result)
    }

    /// Decides satisfiability of the asserted conjunction together with a
    /// set of per-call Boolean assumptions, without changing the assertion
    /// stack.
    ///
    /// In incremental mode (the default, see [`Solver::set_incremental`])
    /// this solves on a persistent core that carries learned clauses,
    /// branching heuristics and the simplex basis across calls; with the
    /// mode off it expresses the assumptions as a scoped delta and runs
    /// the clone-per-check path, which is answer-equivalent.
    ///
    /// # Panics
    /// Panics if certification is enabled and the answer fails to certify —
    /// a solver bug, reported with a dump of the assertion set.
    pub fn check_assuming(&mut self, assumptions: &[(BoolVar, bool)]) -> SatResult {
        match self.check_assuming_certified(assumptions) {
            Ok(result) => result,
            Err(e) => panic!("{e}\nassertions:\n{}", self.dump_assertions()),
        }
    }

    /// [`Solver::check_assuming`], returning certification failures as
    /// errors. An `unsat` answer under full certification replays either a
    /// root refutation or a failed-assumption core whose literals all come
    /// from the negated assumptions (see
    /// [`check_assumption_unsat_proof`]).
    pub fn check_assuming_certified(
        &mut self,
        assumptions: &[(BoolVar, bool)],
    ) -> Result<SatResult, CertifyError> {
        if !self.incremental {
            // A/B fallback: a scoped unit-assertion delta on the
            // clone-per-check path is answer-equivalent to assuming.
            self.push();
            for &(v, positive) in assumptions {
                let f = Formula::var(v);
                self.assert_formula(&if positive { f } else { f.not() });
            }
            let result = self.check_certified();
            // The matching push is three lines up, so this cannot fail.
            let popped = self.pop();
            debug_assert!(popped.is_ok());
            return result;
        }
        self.check_assuming_live(assumptions)
    }

    /// The persistent-core solve path behind [`Solver::check_assuming`].
    fn check_assuming_live(
        &mut self,
        assumptions: &[(BoolVar, bool)],
    ) -> Result<SatResult, CertifyError> {
        let start = self.clock.now();
        let prof = self.profiler.clone();
        let full = self.certify >= CertifyLevel::Full;
        let mut lint_report = LintReport::new();
        if full {
            lint_report = self.lint();
            if lint_report.has_errors() {
                return Err(CertifyError::new(format!(
                    "lint errors in deny mode:\n{lint_report}"
                )));
            }
        }
        // A certification flip invalidates the core: proofs must log the
        // complete original CNF from the first clause on.
        if self.live.as_ref().is_some_and(|c| c.proof != full) {
            self.live = None;
        }
        let core_reused = self.live.is_some();
        let n_scopes = self.scopes.len();
        // Scopes already open when the core is first built keep their
        // declared kind: sticky ones encode unguarded from the start.
        let initial_guards: Vec<ScopeGuard> = self
            .sticky
            .iter()
            .map(|&s| if s { ScopeGuard::Sticky } else { ScopeGuard::Lazy })
            .collect();
        let mode = self.simplex_mode;
        let live = self.live.get_or_insert_with(|| {
            let mut sat = CdclSolver::new();
            if full {
                sat.enable_proof();
            }
            LiveCore {
                sat,
                simplex: Simplex::with_mode(mode),
                encoder: Encoder::new(),
                encoded: 0,
                reals: 0,
                scope_guards: initial_guards,
                retired: Vec::new(),
                proof: full,
            }
        });
        debug_assert_eq!(live.scope_guards.len(), n_scopes);
        // Preamble: return the core to the root level (it may hold the
        // previous check's trail, or a mid-search trail if that check was
        // interrupted), then retire popped scopes — a root unit `¬act`
        // permanently satisfies every clause the scope guarded, and the
        // hard delete removes those clauses plus every learned clause
        // derived under the scope (each carries `¬act`), so retracted
        // constraints cannot resurface in answers or replayed proofs.
        live.sat.reset_to_root(&mut live.simplex);
        let mut deleted_clauses = 0u64;
        for act in std::mem::take(&mut live.retired) {
            live.sat.add_clause(vec![!act]);
            deleted_clauses += live.sat.purge_literal(!act);
        }
        // Materialize every declared real so models cover them.
        for i in live.reals..self.n_reals {
            live.simplex.solver_var(RealVar(i));
        }
        live.reals = self.n_reals;
        // Extend the encoding over assertions added (or re-added) since
        // the last check. Base assertions (below the first open scope) are
        // permanent; scoped ones get their scope's activation guard.
        let sp_encode = prof.as_ref().map(|p| p.span("encode"));
        live.encoder.set_budget(self.budget.clone());
        let mut encode_interrupt = None;
        {
            let _sp_delta = prof.as_ref().map(|p| p.span("delta"));
            while live.encoded < self.assertions.len() {
                let i = live.encoded;
                let f = &self.assertions[i];
                let scope = self.scopes.partition_point(|&mark| mark <= i);
                let guard = if scope == 0 {
                    ScopeGuard::Sticky
                } else {
                    let slot = &mut live.scope_guards[scope - 1];
                    if let ScopeGuard::Lazy = slot {
                        *slot = ScopeGuard::Act(Lit::positive(live.sat.new_var()));
                    }
                    *slot
                };
                let outcome = match guard {
                    // Base and sticky-scope assertions are permanent for
                    // the core's lifetime: encode unguarded.
                    ScopeGuard::Sticky => {
                        live.encoder.assert_root(f, &mut live.sat, &mut live.simplex)
                    }
                    ScopeGuard::Act(act) => live
                        .encoder
                        .assert_root_guarded(f, act, &mut live.sat, &mut live.simplex),
                    ScopeGuard::Lazy => unreachable!("lazy guards are resolved above"),
                };
                if let Err(why) = outcome {
                    encode_interrupt = Some(why);
                    break;
                }
                live.encoded += 1;
            }
        }
        live.encoder.set_budget(Budget::unlimited());
        drop(sp_encode);
        if let Some(why) = encode_interrupt {
            // The interrupted assertion is half-encoded into the core —
            // drop it so the next check rebuilds cleanly from the stack.
            self.live = None;
            let mut stats = SolverStats::default();
            stats.bool_vars = self.n_bools as usize;
            stats.real_vars = self.n_reals as usize;
            stats.assertions = self.assertions.len();
            stats.lint_errors = lint_report.count(Severity::Error);
            stats.lint_warnings = lint_report.count(Severity::Warning);
            stats.lint_infos = lint_report.count(Severity::Info);
            stats.encode_time = self.clock.now().saturating_sub(start);
            stats.solve_time = stats.encode_time;
            self.last_stats = Some(stats);
            return Ok(SatResult::Unknown(why));
        }
        // Entry snapshots: the core's counters are cumulative across its
        // lifetime, so per-check figures are deltas from here. What was
        // already present *is* the warm-start payoff — learned clauses
        // carried in, and pivots whose work the retained basis embodies.
        let entry = live.sat.counters();
        let entry_pivots = live.simplex.pivots();
        let entry_bounds = live.simplex.bound_asserts();
        let entry_checks = live.simplex.theory_checks();
        let entry_refactors = live.simplex.refactorizations();
        let retained_clauses = if core_reused { entry.learned_clauses } else { 0 };
        live.sat.set_budget(self.budget.clone());
        live.simplex.set_budget(self.budget.clone());
        if self.progress {
            live.sat.enable_progress(self.clock.clone());
        }
        let timers_entry = if prof.is_some() {
            live.simplex.enable_timing();
            live.simplex.debug_timers().clone()
        } else {
            Default::default()
        };
        // Assumptions: every open guarded scope's activation literal
        // (sticky scopes are asserted, not assumed), then the caller's
        // Boolean assumptions.
        let mut sat_assumptions: Vec<Lit> = live
            .scope_guards
            .iter()
            .filter_map(|g| match g {
                ScopeGuard::Act(act) => Some(*act),
                ScopeGuard::Lazy | ScopeGuard::Sticky => None,
            })
            .collect();
        for &(v, positive) in assumptions {
            let sv = live.encoder.sat_var_of_bool(v, &mut live.sat);
            sat_assumptions.push(Lit::with_polarity(sv, positive));
        }
        let encode_done = self.clock.now();
        let outcome = {
            let _sp_search = prof.as_ref().map(|p| p.span("search"));
            let outcome = live
                .sat
                .solve_under_assumptions(&sat_assumptions, &mut live.simplex);
            if let Some(p) = &prof {
                let t = &live.simplex.debug_timers();
                p.record_leaf(
                    "simplex",
                    (t.repair + t.scan + t.pivot).saturating_sub(
                        timers_entry.repair + timers_entry.scan + timers_entry.pivot,
                    ),
                    t.iterations.saturating_sub(timers_entry.iterations),
                );
                let refactors =
                    live.simplex.refactorizations().saturating_sub(entry_refactors);
                if refactors > 0 {
                    p.record_leaf(
                        "simplex-factor",
                        t.factor.saturating_sub(timers_entry.factor),
                        refactors,
                    );
                }
            }
            outcome
        };
        let search_done = self.clock.now();
        let counters = live.sat.counters();
        let progress = live.sat.take_progress();
        let mut stats = SolverStats {
            bool_vars: self.n_bools as usize,
            real_vars: self.n_reals as usize,
            assertions: self.assertions.len(),
            sat_vars: live.sat.num_vars(),
            clauses: live.encoder.clauses,
            clause_lits: live.encoder.clause_lits,
            atoms: live.encoder.num_atoms(),
            simplex_vars: live.simplex.num_vars(),
            simplex_rows: live.simplex.num_rows(),
            tableau_entries: live.simplex.tableau_entries(),
            pivots: live.simplex.pivots().saturating_sub(entry_pivots),
            refactorizations: live
                .simplex
                .refactorizations()
                .saturating_sub(entry_refactors),
            decisions: counters.decisions.saturating_sub(entry.decisions),
            propagations: counters.propagations.saturating_sub(entry.propagations),
            conflicts: counters.conflicts.saturating_sub(entry.conflicts),
            theory_conflicts: counters
                .theory_conflicts
                .saturating_sub(entry.theory_conflicts),
            restarts: counters.restarts.saturating_sub(entry.restarts),
            learned_clauses: counters.learned_clauses,
            clause_db: live.sat.num_clauses() as u64,
            bound_asserts: live.simplex.bound_asserts().saturating_sub(entry_bounds),
            theory_checks: live.simplex.theory_checks().saturating_sub(entry_checks),
            retained_clauses,
            deleted_clauses,
            warm_pivots_saved: if core_reused { entry_pivots } else { 0 },
            base_cache_hit: core_reused,
            proof_steps: 0,
            certified: false,
            lint_errors: lint_report.count(Severity::Error),
            lint_warnings: lint_report.count(Severity::Warning),
            lint_infos: lint_report.count(Severity::Info),
            solve_time: search_done.saturating_sub(start),
            encode_time: encode_done.saturating_sub(start),
            search_time: search_done.saturating_sub(encode_done),
            progress,
        };
        let result = match outcome {
            SatOutcome::Unsat => {
                if full {
                    let _sp_certify = prof.as_ref().map(|p| p.span("certify"));
                    // The session-long proof log stays attached (a later
                    // check keeps appending to it), so borrow and clone
                    // rather than take.
                    let proof = live
                        .sat
                        .proof()
                        .cloned()
                        .ok_or_else(|| CertifyError::new("proof logging produced no proof"))?;
                    stats.proof_steps = proof.num_derivations() as u64;
                    let ctx = live.simplex.certificate_context();
                    if live.sat.failed_assumptions().is_empty() {
                        check_unsat_proof(&proof, &ctx)?;
                    } else {
                        let negated: Vec<Lit> = sat_assumptions.iter().map(|&l| !l).collect();
                        check_assumption_unsat_proof(&proof, &ctx, &negated)?;
                    }
                    stats.certified = true;
                }
                SatResult::Unsat
            }
            SatOutcome::Sat => {
                // Read the model before anything resets the core (the
                // trail and tableau stay put until the next check's
                // preamble).
                let reals = live.simplex.concrete_model();
                let bools: Vec<bool> = (0..self.n_bools)
                    .map(|i| match live.encoder.lookup_bool(BoolVar(i)) {
                        Some(v) => live.sat.value(v) == LBool::True,
                        None => false,
                    })
                    .collect();
                if self.certify >= CertifyLevel::CheckModels {
                    let _sp_certify = prof.as_ref().map(|p| p.span("certify"));
                    for f in &self.assertions {
                        if !eval_formula(f, &bools, &reals) {
                            return Err(CertifyError::new(format!(
                                "model does not satisfy asserted formula {f}"
                            )));
                        }
                    }
                    for &(v, positive) in assumptions {
                        if bools[v.0 as usize] != positive {
                            return Err(CertifyError::new(format!(
                                "model does not satisfy assumption on b{}",
                                v.0
                            )));
                        }
                    }
                    stats.certified = true;
                }
                SatResult::Sat(Model { bools, reals })
            }
            SatOutcome::Unknown(why) => SatResult::Unknown(why),
        };
        stats.solve_time = self.clock.now().saturating_sub(start);
        self.last_stats = Some(stats);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::formula::LinExprCmp;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn pure_boolean() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let q = s.new_bool();
        s.assert_formula(&Formula::or(vec![Formula::var(p), Formula::var(q)]));
        s.assert_formula(&Formula::var(p).not());
        let m = s.check().expect_sat();
        assert!(!m.bool_value(p));
        assert!(m.bool_value(q));
    }

    #[test]
    fn pure_arithmetic_system() {
        // x + y = 10, x − y = 4 ⇒ x = 7, y = 3.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(
            &(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)),
        );
        s.assert_formula(
            &(LinExpr::var(x) - LinExpr::var(y)).eq_expr(LinExpr::from(4)),
        );
        let m = s.check().expect_sat();
        assert_eq!(*m.real_value(x), r(7, 1));
        assert_eq!(*m.real_value(y), r(3, 1));
    }

    #[test]
    fn mixed_boolean_arithmetic() {
        // p → x ≥ 5, ¬p → x ≤ −5, x = 2 forces... nothing consistent with p,
        // so p must be true and x ≥ 5 contradicts x = 2: unsat.
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
        assert!(!s.check().is_sat());
    }

    #[test]
    fn strict_inequalities_exact() {
        // 0 < x < 1 and 3x = 1 is sat with x = 1/3.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        s.assert_formula(
            &(LinExpr::var(x) * r(3, 1)).eq_expr(LinExpr::from(1)),
        );
        let m = s.check().expect_sat();
        assert_eq!(*m.real_value(x), r(1, 3));
    }

    #[test]
    fn strict_open_interval_has_interior_point() {
        // 0 < x < 1 alone: the delta-rational model must concretize to a
        // rational strictly inside the interval.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        let m = s.check().expect_sat();
        let v = m.real_value(x);
        assert!(v > &r(0, 1) && v < &r(1, 1), "got {v}");
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(0)));
        s.push();
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(0)));
        assert!(!s.check().is_sat());
        s.pop().unwrap();
        assert!(s.check().is_sat());
    }

    #[test]
    fn unconstrained_variables_get_defaults() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::top());
        let m = s.check().expect_sat();
        assert!(!m.bool_value(p));
        assert_eq!(*m.real_value(x), Rational::zero());
    }

    #[test]
    fn stats_populated_after_check() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        let _ = s.check();
        let stats = s.last_stats().expect("stats");
        assert!(stats.sat_vars > 0);
        assert!(stats.estimated_bytes() > 0);
    }

    #[test]
    fn certified_check_sat_and_unsat() {
        // Same mixed Boolean/arithmetic problem as above, fully certified:
        // the unsat branch exercises theory lemmas with Farkas certificates
        // through the proof replayer, and the sat branch re-evaluates the
        // model against the original formulas.
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        assert_eq!(s.certify_level(), CertifyLevel::Full);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        s.push();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
        assert!(!s.check().is_sat());
        let stats = s.last_stats().expect("stats").clone();
        assert!(stats.certified);
        assert!(stats.proof_steps > 0);
        s.pop().unwrap();
        let m = s.check().expect_sat();
        assert!(s.last_stats().expect("stats").certified);
        let v = m.real_value(x);
        assert!(v >= &r(5, 1) || v <= &r(-5, 1));
    }

    #[test]
    fn deny_mode_rejects_contradictory_bounds_before_solving() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
        s.assert_formula(&LinExpr::var(x).gt(LinExpr::from(1)));
        let err = s.check_certified().unwrap_err();
        assert!(err.message.contains("lint"), "{}", err.message);
        // Without certification the solver still answers (unsat).
        s.set_certify(CertifyLevel::Off);
        assert!(!s.check().is_sat());
    }

    #[test]
    fn corrupted_model_fails_reevaluation() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::CheckModels);
        let x = s.new_real();
        let f = LinExpr::var(x).ge(LinExpr::from(3));
        s.assert_formula(&f);
        let m = s.check().expect_sat();
        // The genuine model passes; a tampered one is caught.
        assert!(crate::certify::eval_formula(&f, &m.bools, &m.reals));
        let mut bad = m.clone();
        bad.reals[x.0 as usize] = Rational::zero();
        assert!(!crate::certify::eval_formula(&f, &bad.bools, &bad.reals));
    }

    #[test]
    fn ne_forces_displacement() {
        // x = y ∧ x ≠ 0 ∧ y ≤ 0 ⇒ x = y < 0.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::var(y)));
        s.assert_formula(&LinExpr::var(x).ne_expr(LinExpr::from(0)));
        s.assert_formula(&LinExpr::var(y).le(LinExpr::from(0)));
        let m = s.check().expect_sat();
        assert!(m.real_value(x).is_negative());
        assert_eq!(m.real_value(x), m.real_value(y));
    }

    #[test]
    fn base_cache_extends_across_checks() {
        // Sequential assert/check/assert/check reuses the cached base
        // encoding; answers must match from-scratch solving.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        assert!(s.check().is_sat());
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(3)));
        let m = s.check().expect_sat();
        let v = m.real_value(x);
        assert!(v >= &r(1, 1) && v <= &r(3, 1), "got {v}");
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(5)));
        assert!(!s.check().is_sat());
    }

    /// Regression for incremental reuse under full certification: checks
    /// clone the cached base encoding, so a popped scope's learned clauses
    /// and proof steps must never reach a later check — each unsat answer
    /// replays a proof containing only in-scope steps.
    #[test]
    fn push_pop_recheck_certifies_with_in_scope_proof_only() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.assert_formula(
            &Formula::var(p)
                .not()
                .implies(LinExpr::var(x).le(LinExpr::from(-5))),
        );
        // Build and cache the base with a certified sat check.
        assert!(s.check().is_sat());
        assert!(s.last_stats().expect("stats").certified);
        for _ in 0..2 {
            // Scoped contradiction: certified unsat (replayed proof must be
            // self-contained — base clauses plus this scope's delta only).
            s.push();
            s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
            assert!(!s.check().is_sat());
            let stats = s.last_stats().expect("stats").clone();
            assert!(stats.certified);
            assert!(stats.proof_steps > 0);
            s.pop().unwrap();
            // Re-solve after pop: certifies again, with the popped scope's
            // clauses and proof steps drained.
            let m = s.check().expect_sat();
            assert!(s.last_stats().expect("stats").certified);
            let v = m.real_value(x);
            assert!(v >= &r(5, 1) || v <= &r(-5, 1), "got {v}");
        }
    }

    #[test]
    fn expired_deadline_returns_unknown_and_solver_stays_usable() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        s.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        let result = s.check();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        assert!(result.is_unknown());
        assert!(result.model().is_none());
        // Lifting the budget decides the untouched assertion stack.
        s.set_budget(Budget::unlimited());
        assert!(s.check().is_sat());
    }

    #[test]
    fn raised_cancel_token_returns_unknown_cancelled() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        let mut budget = Budget::unlimited();
        let token = budget.new_cancel_token();
        s.set_budget(budget);
        token.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(matches!(s.check(), SatResult::Unknown(Interrupt::Cancelled)));
    }

    /// Regression for the encode-phase budget gap: a zero-duration budget
    /// must interrupt *inside* the encoder — before a single clause is
    /// pushed — not merely before the search loop.
    #[test]
    fn zero_budget_interrupts_base_encoding_before_any_clause() {
        let mut s = Solver::new();
        let ps: Vec<Formula> = (0..200).map(|_| Formula::var(s.new_bool())).collect();
        s.assert_formula(&Formula::at_most(ps, 3));
        s.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        let result = s.check();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        let stats = s.last_stats().expect("stats").clone();
        assert_eq!(stats.clauses, 0, "encoder ran past an expired deadline");
        assert_eq!(stats.decisions, 0);
        // The poisoned base template was dropped; an unlimited re-check
        // rebuilds it and decides the instance.
        s.set_budget(Budget::unlimited());
        assert!(s.check().is_sat());
        assert!(!s.last_stats().expect("stats").base_cache_hit);
    }

    /// An interrupt while encoding a *scoped* delta must discard only the
    /// per-check clone: the cached base survives for the next check.
    #[test]
    fn zero_budget_delta_encode_interrupt_keeps_base_cache() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        assert!(s.check().is_sat()); // builds and caches the base
        s.push();
        let ps: Vec<Formula> = (0..200).map(|_| Formula::var(s.new_bool())).collect();
        s.assert_formula(&Formula::at_most(ps, 3));
        s.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        let result = s.check();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        assert!(s.last_stats().expect("stats").base_cache_hit);
        s.pop().unwrap();
        s.set_budget(Budget::unlimited());
        assert!(s.check().is_sat());
        // The base was reused, not rebuilt, after the delta interrupt.
        assert!(s.last_stats().expect("stats").base_cache_hit);
    }

    /// Cancellation raised mid-run is observed at the next encode poll.
    #[test]
    fn cancellation_interrupts_encoding_phase() {
        let mut s = Solver::new();
        let ps: Vec<Formula> = (0..200).map(|_| Formula::var(s.new_bool())).collect();
        s.assert_formula(&Formula::at_most(ps, 3));
        let mut budget = Budget::unlimited();
        let token = budget.new_cancel_token();
        s.set_budget(budget);
        token.store(true, std::sync::atomic::Ordering::Relaxed);
        let result = s.check();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Cancelled)), "{result:?}");
        assert_eq!(s.last_stats().expect("stats").clauses, 0);
    }

    /// A deliberately hard instance (pigeonhole, exponential for CDCL) with
    /// a 50 ms deadline: the check must come back `Unknown(Timeout)` well
    /// within 10× the deadline, and popping the hard scope must leave the
    /// solver usable for the next job.
    #[test]
    fn hard_instance_times_out_promptly() {
        let n = 10; // 11 pigeons into 10 holes
        let mut s = Solver::new();
        let vars: Vec<Vec<BoolVar>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_bool()).collect())
            .collect();
        s.push();
        for pigeon in &vars {
            s.assert_formula(&Formula::or(
                pigeon.iter().map(|&v| Formula::var(v)).collect(),
            ));
        }
        for hole in 0..n {
            for p1 in 0..n + 1 {
                for p2 in p1 + 1..n + 1 {
                    s.assert_formula(&Formula::or(vec![
                        Formula::var(vars[p1][hole]).not(),
                        Formula::var(vars[p2][hole]).not(),
                    ]));
                }
            }
        }
        s.set_budget(Budget::with_timeout(std::time::Duration::from_millis(50)));
        let clock = Clock::monotonic();
        let result = s.check();
        let elapsed = clock.now();
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        assert!(
            elapsed < std::time::Duration::from_millis(500),
            "timeout took {elapsed:?}, over 10x the 50ms deadline"
        );
        // The solver is immediately reusable for the next job.
        s.pop().unwrap();
        s.set_budget(Budget::unlimited());
        s.assert_formula(&Formula::var(vars[0][0]));
        assert!(s.check().is_sat());
    }

    /// The span profiler must see the solver's phase structure: `encode`
    /// with `base`/`delta` children and `search` with a `simplex` leaf,
    /// and progress sampling must yield a monotone timeline.
    #[test]
    fn profiler_records_span_tree_and_progress() {
        let mut s = Solver::new();
        let prof = Profiler::new();
        s.set_profiler(prof.clone());
        s.set_progress_sampling(true);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        s.push();
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(10)));
        assert!(s.check().is_sat());
        let spans = prof.snapshot();
        let names: Vec<&str> = spans.iter().map(|n| n.name).collect();
        assert_eq!(names, ["encode", "search"], "{names:?}");
        let encode = &spans[0];
        let kids: Vec<&str> = encode.children.iter().map(|n| n.name).collect();
        assert!(kids.contains(&"base") && kids.contains(&"delta"), "{kids:?}");
        let search = &spans[1];
        assert!(
            search.children.iter().any(|n| n.name == "simplex"),
            "simplex leaf missing under search"
        );
        let stats = s.last_stats().expect("stats");
        assert!(!stats.progress.is_empty(), "no progress samples");
        for w in stats.progress.windows(2) {
            assert!(w[1].decisions >= w[0].decisions);
            assert!(w[1].at >= w[0].at);
        }
        // Unprofiled solver keeps an empty timeline.
        let mut plain = Solver::new();
        let y = plain.new_real();
        plain.assert_formula(&LinExpr::var(y).ge(LinExpr::from(1)));
        assert!(plain.check().is_sat());
        assert!(plain.last_stats().expect("stats").progress.is_empty());
    }

    /// Single-read timing discipline: the phase intervals of one stats
    /// row must nest consistently (encode + search ≤ solve), which the
    /// old double-`elapsed()` reads did not guarantee.
    #[test]
    fn phase_times_are_consistent_within_one_row() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(9)));
        assert!(s.check().is_sat());
        let stats = s.last_stats().expect("stats");
        assert!(
            stats.encode_time + stats.search_time <= stats.solve_time,
            "encode {:?} + search {:?} > solve {:?}",
            stats.encode_time,
            stats.search_time,
            stats.solve_time
        );
    }

    /// With a fake clock the solver's wall-clock stats are exact: zero
    /// if the clock never advances, and equal to the injected advance
    /// when a budget interrupt consumes the whole check.
    #[test]
    fn fake_clock_steers_stats_timing() {
        let (clock, _handle) = Clock::fake();
        let mut s = Solver::new();
        s.set_clock(clock);
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        assert!(s.check().is_sat());
        let stats = s.last_stats().expect("stats");
        assert_eq!(stats.solve_time, std::time::Duration::ZERO);
        assert_eq!(stats.encode_time, std::time::Duration::ZERO);
        assert_eq!(stats.search_time, std::time::Duration::ZERO);
    }

    #[test]
    fn cardinality_over_implication_guards() {
        // 4 booleans, each forces its real to 1; at most 2 true; sum of
        // reals ≥ 3 ⇒ unsat (reals otherwise pinned to 0).
        let mut s = Solver::new();
        let mut sum = LinExpr::zero();
        let mut card = Vec::new();
        for _ in 0..4 {
            let p = s.new_bool();
            let x = s.new_real();
            s.assert_formula(
                &Formula::var(p).implies(LinExpr::var(x).eq_expr(LinExpr::from(1))),
            );
            s.assert_formula(
                &Formula::var(p)
                    .not()
                    .implies(LinExpr::var(x).eq_expr(LinExpr::from(0))),
            );
            sum = sum + LinExpr::var(x);
            card.push(Formula::var(p));
        }
        s.assert_formula(&Formula::at_most(card, 2));
        s.push();
        s.assert_formula(&sum.clone().ge(LinExpr::from(3)));
        assert!(!s.check().is_sat());
        s.pop().unwrap();
        s.assert_formula(&sum.ge(LinExpr::from(2)));
        assert!(s.check().is_sat());
    }

    #[test]
    fn pop_without_push_is_a_usage_error_not_a_panic() {
        let mut s = Solver::new();
        let err = s.pop().unwrap_err();
        assert!(err.message.contains("pop without matching push"), "{err}");
        assert!(err.to_string().contains("usage error"), "{err}");
        // The solver stays usable after the misuse.
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        assert!(s.check().is_sat());
        s.push();
        s.pop().unwrap();
        assert!(s.pop().is_err());
    }

    /// One persistent core, many checks: assumption subsets select among
    /// mutually exclusive configurations without any push/pop, and the
    /// answers match the clone-per-check fallback on an identical solver.
    #[test]
    fn check_assuming_matches_non_incremental_fallback() {
        let build = |incremental: bool| {
            let mut s = Solver::new();
            s.set_incremental(incremental);
            let p = s.new_bool();
            let q = s.new_bool();
            let x = s.new_real();
            s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
            s.assert_formula(&Formula::var(q).implies(LinExpr::var(x).le(LinExpr::from(2))));
            (s, p, q, x)
        };
        for incremental in [true, false] {
            let (mut s, p, q, x) = build(incremental);
            assert_eq!(s.incremental(), incremental);
            // p ∧ q forces 5 ≤ x ≤ 2: unsat.
            assert!(!s.check_assuming(&[(p, true), (q, true)]).is_sat());
            // p alone: sat with x ≥ 5.
            let m = s.check_assuming(&[(p, true), (q, false)]).expect_sat();
            assert!(m.bool_value(p) && !m.bool_value(q));
            assert!(m.real_value(x) >= &r(5, 1));
            // The same contradictory pair again — the core must still know.
            assert!(!s.check_assuming(&[(p, true), (q, true)]).is_sat());
            // No assumptions at all: sat.
            assert!(s.check_assuming(&[]).is_sat());
            // The assertion stack was never disturbed.
            assert_eq!(s.num_assertions(), 2);
        }
    }

    /// The warm-start ledger: a second check on a reused core reports the
    /// carried-in learned clauses and basis work; the fallback path
    /// reports zeros for all three incremental counters.
    #[test]
    fn incremental_stats_expose_retention_and_warm_start() {
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        let y = s.new_real();
        // Equality system so the first solve must pivot.
        s.assert_formula(&(LinExpr::var(x) + LinExpr::var(y)).eq_expr(LinExpr::from(10)));
        s.assert_formula(&(LinExpr::var(x) - LinExpr::var(y)).eq_expr(LinExpr::from(4)));
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        assert!(s.check_assuming(&[]).is_sat());
        let first = s.last_stats().expect("stats").clone();
        assert!(!first.base_cache_hit);
        assert_eq!(first.retained_clauses, 0);
        assert_eq!(first.warm_pivots_saved, 0);
        assert!(first.pivots > 0, "first check should pivot");
        assert!(s.check_assuming(&[(p, true)]).is_sat());
        let second = s.last_stats().expect("stats").clone();
        assert!(second.base_cache_hit, "core must be reused");
        assert!(
            second.warm_pivots_saved >= first.pivots,
            "warm basis embodies the first check's pivots: {} < {}",
            second.warm_pivots_saved,
            first.pivots
        );
        // The fallback path never reports incremental reuse.
        s.set_incremental(false);
        assert!(s.check_assuming(&[(p, true)]).is_sat());
        let cold = s.last_stats().expect("stats").clone();
        assert_eq!(cold.retained_clauses, 0);
        assert_eq!(cold.deleted_clauses, 0);
        assert_eq!(cold.warm_pivots_saved, 0);
    }

    /// Adversarial retraction: a scoped contradiction must be gone — and
    /// its guarded clauses hard-deleted — after the pop, while base
    /// assertions and the core itself survive. The scoped formula is a
    /// disjunction over fresh atoms so its guard clause is genuinely
    /// stored (a bare complementary atom would root-simplify away).
    #[test]
    fn popped_scope_clauses_are_retired_from_live_core() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(0)));
        assert!(s.check_assuming(&[]).is_sat());
        s.push();
        // x ≤ −1 ∨ x ≤ −2: unsat against x ≥ 0, stored as a guarded
        // three-literal clause.
        s.assert_formula(&Formula::or(vec![
            LinExpr::var(x).le(LinExpr::from(-1)),
            LinExpr::var(x).le(LinExpr::from(-2)),
        ]));
        assert!(!s.check_assuming(&[]).is_sat());
        s.pop().unwrap();
        // The retracted disjunction must not constrain the reused core;
        // the retirement hard-deletes its guarded clauses.
        let m = s.check_assuming(&[]).expect_sat();
        assert!(m.real_value(x) >= &r(0, 1));
        let stats = s.last_stats().expect("stats").clone();
        assert!(stats.base_cache_hit, "core survives the pop");
        assert!(
            stats.deleted_clauses > 0,
            "retirement should hard-delete the scope's guarded clauses"
        );
        // And a scope popped without ever being checked retires nothing.
        s.push();
        s.assert_formula(&LinExpr::var(x).lt(LinExpr::from(0)));
        s.pop().unwrap();
        assert!(s.check_assuming(&[]).is_sat());
    }

    /// Deep push/pop interleaving with re-assertion after pops: answers
    /// must track the stack exactly (the encode cursor rolls back).
    #[test]
    fn live_core_tracks_interleaved_push_pop_and_reassertion() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(0)));
        s.push();
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(10)));
        s.push();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(11)));
        assert!(!s.check_assuming(&[]).is_sat());
        s.pop().unwrap();
        assert!(s.check_assuming(&[]).is_sat());
        s.push();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(7)));
        let m = s.check_assuming(&[]).expect_sat();
        assert_eq!(*m.real_value(x), r(7, 1));
        s.pop().unwrap();
        s.pop().unwrap();
        // Only the base bound remains.
        s.push();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(100)));
        assert!(s.check_assuming(&[]).is_sat());
        s.pop().unwrap();
        assert!(s.check_assuming(&[]).is_sat());
    }

    /// Sticky scopes: assertions bind exactly like a plain scope's while
    /// open (and the core is reused across checks), but popping one drops
    /// the live core — the next check is a cache miss and the retracted
    /// constraints are gone. A sticky scope whose assertions were never
    /// encoded pops for free.
    #[test]
    fn sticky_scope_binds_while_open_and_drops_core_on_pop() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(0)));
        s.push_sticky();
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(10)));
        assert!(s.check_assuming(&[]).is_sat());
        assert!(s.check_assuming(&[]).is_sat());
        assert!(s.last_stats().expect("stats").base_cache_hit);
        // The sticky bound binds: x ≥ 11 contradicts it. A plain scope
        // nested inside still retires surgically, keeping the core.
        s.push();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(11)));
        assert!(!s.check_assuming(&[]).is_sat());
        s.pop().unwrap();
        assert!(s.check_assuming(&[]).is_sat());
        assert!(s.last_stats().expect("stats").base_cache_hit);
        // Popping the sticky scope drops the core...
        s.pop().unwrap();
        let m = s.check_assuming(&[]).expect_sat();
        assert!(
            !s.last_stats().expect("stats").base_cache_hit,
            "popping an encoded sticky scope must rebuild the core"
        );
        assert!(m.real_value(x) >= &r(0, 1));
        // ...and the retracted bound really is gone.
        s.push();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(100)));
        assert!(s.check_assuming(&[]).is_sat());
        s.pop().unwrap();
        // A sticky scope popped before any check encodes it costs nothing.
        s.push_sticky();
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(-1)));
        s.pop().unwrap();
        assert!(s.check_assuming(&[]).is_sat());
        assert!(s.last_stats().expect("stats").base_cache_hit);
    }

    /// Full certification through the persistent core: a genuine unsat
    /// (empty failed set) replays a root refutation, an assumption-driven
    /// unsat replays a failed-assumption core, and sat models re-evaluate.
    #[test]
    fn certified_check_assuming_sat_and_unsat() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(5))));
        // Assumption-driven unsat: p with a scoped x = 2.
        s.push();
        s.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(2)));
        assert!(!s.check_assuming(&[(p, true)]).is_sat());
        let stats = s.last_stats().expect("stats").clone();
        assert!(stats.certified);
        assert!(stats.proof_steps > 0);
        // Sat under the opposite assumption, model re-evaluated.
        let m = s.check_assuming(&[(p, false)]).expect_sat();
        assert!(!m.bool_value(p));
        assert!(s.last_stats().expect("stats").certified);
        s.pop().unwrap();
        // Genuine unsat (no assumptions involved): scoped 5 ≤ x ≤ 2 with
        // p asserted, so the refutation closes at the root.
        s.assert_formula(&Formula::var(p));
        s.push();
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(2)));
        assert!(!s.check_assuming(&[]).is_sat());
        assert!(s.last_stats().expect("stats").certified);
        s.pop().unwrap();
        let m = s.check_assuming(&[]).expect_sat();
        assert!(m.real_value(x) >= &r(5, 1));
    }

    /// Contradictory assumptions on one variable certify as a
    /// failed-assumption core without touching any clause.
    #[test]
    fn certified_contradictory_assumptions() {
        let mut s = Solver::new();
        s.set_certify(CertifyLevel::Full);
        let p = s.new_bool();
        let x = s.new_real();
        s.assert_formula(&Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(1))));
        assert!(!s.check_assuming(&[(p, true), (p, false)]).is_sat());
        assert!(s.last_stats().expect("stats").certified);
        // The core is still usable and consistent afterwards.
        assert!(s.check_assuming(&[(p, true)]).is_sat());
    }

    /// A zero budget must interrupt the live path at the *encode* poll
    /// site; the half-encoded core is dropped, and an unlimited re-check
    /// rebuilds it — the persistent path is never poisoned.
    #[test]
    fn zero_budget_check_assuming_encode_interrupt_is_not_poisonous() {
        let mut s = Solver::new();
        let ps: Vec<Formula> = (0..200).map(|_| Formula::var(s.new_bool())).collect();
        s.assert_formula(&Formula::at_most(ps, 3));
        s.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        let result = s.check_assuming(&[]);
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        assert_eq!(s.last_stats().expect("stats").decisions, 0);
        s.set_budget(Budget::unlimited());
        assert!(s.check_assuming(&[]).is_sat());
        // The interrupted core was dropped, so this was a cold rebuild.
        assert!(!s.last_stats().expect("stats").base_cache_hit);
    }

    /// An expired deadline in the *search* loop leaves the persistent core
    /// intact: the next check resets it to root and decides the instance.
    #[test]
    fn search_interrupt_keeps_live_core_usable() {
        let n = 9; // pigeonhole: 10 pigeons into 9 holes, exponential
        let mut s = Solver::new();
        let vars: Vec<Vec<BoolVar>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_bool()).collect())
            .collect();
        for pigeon in &vars {
            s.assert_formula(&Formula::or(
                pigeon.iter().map(|&v| Formula::var(v)).collect(),
            ));
        }
        for hole in 0..n {
            for p1 in 0..n + 1 {
                for p2 in p1 + 1..n + 1 {
                    s.assert_formula(&Formula::or(vec![
                        Formula::var(vars[p1][hole]).not(),
                        Formula::var(vars[p2][hole]).not(),
                    ]));
                }
            }
        }
        // Encode fully under no budget pressure first (sat is impossible,
        // but the first call may be interrupted mid-search — that is the
        // point: interrupt strictly inside the search loop).
        s.set_budget(Budget::with_timeout(std::time::Duration::from_millis(30)));
        let result = s.check_assuming(&[(vars[0][0], true)]);
        assert!(matches!(result, SatResult::Unknown(Interrupt::Timeout)), "{result:?}");
        // Same core, budget lifted, easy query: assume pigeon 0 in hole 0
        // and drop the hard part by asking only for consistency of that
        // one assumption — the full instance is still unsat, so instead
        // check that the solver is reusable at all via the fallback-free
        // incremental path on a satisfiable sub-question.
        s.set_budget(Budget::unlimited());
        let result = s.check_assuming(&[(vars[0][0], true), (vars[1][1], true)]);
        // The instance as a whole is unsat; what matters is a decided
        // answer (not Unknown, no panic) from the surviving core.
        assert!(!result.is_unknown(), "{result:?}");
        assert!(s.last_stats().expect("stats").base_cache_hit, "core survived");
    }

    /// A cancellation raised before a live check is observed at the first
    /// poll of every phase, and clearing it restores full function — the
    /// cancel path, like the timeout path, never poisons the core.
    #[test]
    fn cancelled_check_assuming_recovers() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        assert!(s.check_assuming(&[]).is_sat()); // build the core
        let mut budget = Budget::unlimited();
        let token = budget.new_cancel_token();
        s.set_budget(budget);
        token.store(true, std::sync::atomic::Ordering::Relaxed);
        s.push();
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(9)));
        let result = s.check_assuming(&[]);
        assert!(matches!(result, SatResult::Unknown(Interrupt::Cancelled)), "{result:?}");
        token.store(false, std::sync::atomic::Ordering::Relaxed);
        assert!(s.check_assuming(&[]).is_sat());
        s.pop().unwrap();
        assert!(s.check_assuming(&[]).is_sat());
    }

    /// The profiler sees the live path's phase structure: `encode` (with a
    /// `delta` child), `search` (with a `simplex` leaf), and `certify`
    /// spans per check.
    #[test]
    fn profiler_records_live_span_tree() {
        let mut s = Solver::new();
        let prof = Profiler::new();
        s.set_profiler(prof.clone());
        s.set_certify(CertifyLevel::CheckModels);
        let x = s.new_real();
        s.assert_formula(&LinExpr::var(x).ge(LinExpr::from(1)));
        s.assert_formula(&LinExpr::var(x).le(LinExpr::from(4)));
        assert!(s.check_assuming(&[]).is_sat());
        let spans = prof.snapshot();
        let names: Vec<&str> = spans.iter().map(|n| n.name).collect();
        assert_eq!(names, ["encode", "search", "certify"], "{names:?}");
        let kids: Vec<&str> = spans[0].children.iter().map(|n| n.name).collect();
        assert_eq!(kids, ["delta"], "{kids:?}");
        assert!(
            spans[1].children.iter().any(|n| n.name == "simplex"),
            "simplex leaf missing under live search"
        );
    }
}
