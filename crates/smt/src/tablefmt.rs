//! Column-aligned plain-text tables.
//!
//! The CLI renders several tabular views (`--metrics` counters,
//! `--profile` span trees, campaign summaries, `sta bench` diffs); they
//! all share this one alignment helper so the column conventions stay
//! uniform: single-space separation, left-aligned text, right-aligned
//! numbers, widths fitted to content.

/// Horizontal alignment of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (text).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// An in-memory table rendered with fitted column widths.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given `(header, alignment)` columns.
    pub fn new(columns: &[(&str, Align)]) -> Self {
        Table {
            headers: columns.iter().map(|(h, _)| (*h).to_string()).collect(),
            aligns: columns.iter().map(|(_, a)| *a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Missing cells render empty; extra cells are
    /// dropped (callers pass exactly one cell per column in practice).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows.push(
            (0..self.headers.len())
                .map(|i| cells.get(i).map(|c| c.as_ref().to_string()).unwrap_or_default())
                .collect(),
        );
    }

    /// Renders the header plus all rows, one line each, with every
    /// column padded to its widest cell. No trailing spaces.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let mut line = |cells: &[String]| {
            let mut text = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    text.push(' ');
                }
                match self.aligns[i] {
                    Align::Left => text.push_str(&format!("{cell:<width$}", width = widths[i])),
                    Align::Right => text.push_str(&format!("{cell:>width$}", width = widths[i])),
                }
            }
            out.push_str(text.trim_end());
            out.push('\n');
        };
        line(&self.headers);
        for row in &self.rows {
            line(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns_to_widest_cell() {
        let mut t = Table::new(&[("name", Align::Left), ("value", Align::Right)]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "123456"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "name         value");
        assert_eq!(lines[1], "a                1");
        assert_eq!(lines[2], "longer-name 123456");
    }

    #[test]
    fn short_rows_pad_and_no_trailing_spaces() {
        let mut t = Table::new(&[("a", Align::Left), ("b", Align::Left)]);
        t.row(&["x"]);
        let text = t.render();
        for line in text.lines() {
            assert_eq!(line, line.trim_end());
        }
        assert!(text.contains("x"));
    }
}
