//! Exhaustive cross-check of the Sinz sequential-counter cardinality
//! encoding against a popcount oracle.
//!
//! For every `n ≤ 8`, every threshold `k ≤ n`, and every one of the `2^n`
//! Boolean assignments, the assignment is pinned with unit assertions and
//! the solver must report `at_most(xs, k)` satisfiable iff `popcount ≤ k`
//! (dually `at_least` iff `popcount ≥ k`). Checks run under
//! [`CertifyLevel::Full`], so every SAT answer is re-evaluated against the
//! original formulas and every UNSAT answer is replayed through the
//! RUP/Farkas proof checker — a wrong *proof* fails the run even when the
//! verdict happens to agree with the oracle.
//!
//! A companion regression test pins down the linter's view of malformed
//! cardinality constraints (duplicate or constant members).

use sta_smt::{lint, CertifyLevel, Formula, LintKind, SatResult, Severity, Solver};

/// Runs one pinned cardinality query and returns whether it was SAT.
fn pinned_check(n: u32, bits: u32, constraint_of: impl Fn(Vec<Formula>) -> Formula) -> bool {
    let mut solver = Solver::new();
    solver.set_certify(CertifyLevel::Full);
    let vars: Vec<Formula> = (0..n).map(|_| Formula::var(solver.new_bool())).collect();
    for (i, v) in vars.iter().enumerate() {
        let pinned = if bits >> i & 1 == 1 { v.clone() } else { v.clone().not() };
        solver.assert_formula(&pinned);
    }
    solver.assert_formula(&constraint_of(vars));
    match solver.check() {
        SatResult::Sat(_) => true,
        SatResult::Unsat => false,
        SatResult::Unknown(why) => panic!("unlimited budget interrupted: {why}"),
    }
}

#[test]
fn at_most_matches_popcount_oracle() {
    for n in 1..=8u32 {
        for k in 0..=n as usize {
            for bits in 0..1u32 << n {
                let expected = bits.count_ones() as usize <= k;
                let got = pinned_check(n, bits, |vars| Formula::at_most(vars, k));
                assert_eq!(
                    got, expected,
                    "at_most({k}) of n={n} under assignment {bits:#b} \
                     (popcount {})",
                    bits.count_ones()
                );
            }
        }
    }
}

#[test]
fn at_least_matches_popcount_oracle() {
    for n in 1..=8u32 {
        for k in 0..=n as usize {
            for bits in 0..1u32 << n {
                let expected = bits.count_ones() as usize >= k;
                let got = pinned_check(n, bits, |vars| Formula::at_least(vars, k));
                assert_eq!(
                    got, expected,
                    "at_least({k}) of n={n} under assignment {bits:#b} \
                     (popcount {})",
                    bits.count_ones()
                );
            }
        }
    }
}

#[test]
fn exactly_matches_popcount_oracle() {
    // Smaller sweep: `exactly` is just the conjunction of the two
    // directions, so n ≤ 5 suffices to cross the encoding boundary cases
    // (k = 0, k = n, and the Sinz counter in both directions at once).
    for n in 1..=5u32 {
        for k in 0..=n as usize {
            for bits in 0..1u32 << n {
                let expected = bits.count_ones() as usize == k;
                let got = pinned_check(n, bits, |vars| Formula::exactly(vars, k));
                assert_eq!(got, expected, "exactly({k}) of n={n} under {bits:#b}");
            }
        }
    }
}

#[test]
fn linter_flags_malformed_cardinality() {
    let mut solver = Solver::new();
    let p = Formula::var(solver.new_bool());
    let q = Formula::var(solver.new_bool());

    // Duplicate member: `at_most 1 {p, p, q}` cannot mean what it says —
    // the counter counts p twice. The linter must reject it outright.
    let dup = Formula::at_most(vec![p.clone(), p.clone(), q.clone()], 1);
    let report = lint(&[dup], 2, 0);
    assert!(report.has_errors(), "duplicate member must be an error:\n{report}");
    assert!(report
        .findings
        .iter()
        .any(|f| f.kind == LintKind::MalformedCardinality && f.severity == Severity::Error));

    // Constant member: a `true`/`false` inside the member list shifts the
    // effective threshold — suspicious, but meaningful, so a warning.
    let constant = Formula::at_most(vec![p.clone(), Formula::top(), q.clone()], 1);
    let report = lint(&[constant], 2, 0);
    assert!(!report.has_errors(), "constant member is not an error:\n{report}");
    assert!(report
        .findings
        .iter()
        .any(|f| f.kind == LintKind::MalformedCardinality && f.severity == Severity::Warning));

    // A well-formed constraint stays clean.
    let fine = Formula::at_most(vec![p, q], 1);
    assert!(
        !lint(&[fine], 2, 0)
            .findings
            .iter()
            .any(|f| f.kind == LintKind::MalformedCardinality),
        "well-formed cardinality must not be flagged"
    );
}
