//! Cross-validation of the DPLL(T) solver against a Fourier–Motzkin
//! oracle on randomized QF_LRA instances.
//!
//! For every random Boolean combination of linear atoms we enumerate the
//! atom truth assignments that satisfy the Boolean skeleton and decide
//! each induced conjunction of (possibly negated) linear constraints with
//! exact Fourier–Motzkin elimination — a complete, independent decision
//! procedure. The SMT solver must agree on satisfiability, and when it
//! answers sat, its model must actually satisfy every assertion.

use sta_smt::rational::Rational;
use sta_smt::rng::Pcg32;
use sta_smt::{CmpOp, Formula, LinExpr, RealVar, Solver};

/// One linear constraint `Σ coeffs·x ⋈ rhs` with ⋈ ∈ {≤, <}.
#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<Rational>,
    rhs: Rational,
    strict: bool,
}

/// Fourier–Motzkin satisfiability of a conjunction of ≤/< constraints.
fn fm_satisfiable(mut constraints: Vec<Constraint>, num_vars: usize) -> bool {
    for var in (0..num_vars).rev() {
        let mut uppers: Vec<Constraint> = Vec::new(); // c·x ≤ …, c > 0
        let mut lowers: Vec<Constraint> = Vec::new(); // c·x ≤ …, c < 0
        let mut rest: Vec<Constraint> = Vec::new();
        for c in constraints {
            let a = c.coeffs[var].clone();
            if a.is_zero() {
                rest.push(c);
            } else if a.is_positive() {
                uppers.push(c);
            } else {
                lowers.push(c);
            }
        }
        // Combine every (lower, upper) pair, eliminating `var`.
        for lo in &lowers {
            for up in &uppers {
                let a_lo = -&lo.coeffs[var]; // > 0
                let a_up = up.coeffs[var].clone(); // > 0
                let mut coeffs = Vec::with_capacity(num_vars);
                for k in 0..num_vars {
                    // a_lo·up + a_up·lo
                    let v = &(&a_lo * &up.coeffs[k]) + &(&a_up * &lo.coeffs[k]);
                    coeffs.push(v);
                }
                debug_assert!(coeffs[var].is_zero());
                let rhs = &(&a_lo * &up.rhs) + &(&a_up * &lo.rhs);
                rest.push(Constraint {
                    coeffs,
                    rhs,
                    strict: lo.strict || up.strict,
                });
            }
        }
        constraints = rest;
    }
    // All variables eliminated: every constraint is `0 ⋈ rhs`.
    constraints.iter().all(|c| {
        if c.strict {
            c.rhs.is_positive()
        } else {
            !c.rhs.is_negative()
        }
    })
}

/// Converts an atom (with polarity) into the ≤/< normal form.
fn to_constraint(coeffs: &[i64], rhs: i64, op: CmpOp, positive: bool) -> Constraint {
    // Base atom: Σ c·x (op) rhs.
    let (flip, strict) = match (op, positive) {
        (CmpOp::Le, true) => (false, false),
        (CmpOp::Lt, true) => (false, true),
        (CmpOp::Ge, true) => (true, false),
        (CmpOp::Gt, true) => (true, true),
        // Negations: ¬(a ≤ b) ⇔ a > b, etc.
        (CmpOp::Le, false) => (true, true),
        (CmpOp::Lt, false) => (true, false),
        (CmpOp::Ge, false) => (false, true),
        (CmpOp::Gt, false) => (false, false),
        _ => unreachable!("only inequality atoms generated"),
    };
    let sign = if flip { -1i64 } else { 1 };
    Constraint {
        coeffs: coeffs.iter().map(|&c| Rational::from(sign * c)).collect(),
        rhs: Rational::from(sign * rhs),
        strict,
    }
}

#[derive(Debug, Clone)]
struct RandomAtom {
    coeffs: Vec<i64>,
    rhs: i64,
    op: CmpOp,
}

/// Draws a nontrivial random atom with coefficients in `[-3, 3]`.
fn random_atom(rng: &mut Pcg32, num_vars: usize) -> RandomAtom {
    let ops = [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt];
    loop {
        let coeffs: Vec<i64> =
            (0..num_vars).map(|_| rng.range_i64(-3, 3)).collect();
        if coeffs.iter().all(|&x| x == 0) {
            continue;
        }
        return RandomAtom {
            coeffs,
            rhs: rng.range_i64(-6, 6),
            op: ops[rng.below(ops.len())],
        };
    }
}

/// Random Boolean skeleton: a CNF over atom indices with polarities.
fn random_skeleton(rng: &mut Pcg32, num_atoms: usize) -> Vec<Vec<(usize, bool)>> {
    (0..rng.range_usize(1, 5))
        .map(|_| {
            (0..rng.range_usize(1, 4))
                .map(|_| (rng.below(num_atoms), rng.flip()))
                .collect()
        })
        .collect()
}

fn oracle_sat(
    atoms: &[RandomAtom],
    cnf: &[Vec<(usize, bool)>],
    num_vars: usize,
) -> bool {
    // Enumerate atom truth assignments satisfying the CNF; check each
    // induced constraint conjunction with FM.
    let n = atoms.len();
    'assign: for mask in 0..(1u32 << n) {
        for clause in cnf {
            if !clause
                .iter()
                .any(|&(i, pos)| ((mask >> i) & 1 == 1) == pos)
            {
                continue 'assign;
            }
        }
        let constraints: Vec<Constraint> = atoms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                to_constraint(&a.coeffs, a.rhs, a.op, (mask >> i) & 1 == 1)
            })
            .collect();
        if fm_satisfiable(constraints, num_vars) {
            return true;
        }
    }
    false
}

#[test]
fn solver_agrees_with_fourier_motzkin() {
    let mut rng = Pcg32::new(0x06A3);
    for _ in 0..96 {
        let num_vars = 3;
        let atoms: Vec<RandomAtom> = (0..rng.range_usize(2, 6))
            .map(|_| random_atom(&mut rng, num_vars))
            .collect();
        let cnf = random_skeleton(&mut rng, atoms.len());

        let expected = oracle_sat(&atoms, &cnf, num_vars);

        let mut solver = Solver::new();
        let vars: Vec<RealVar> = (0..num_vars).map(|_| solver.new_real()).collect();
        let atom_formulas: Vec<Formula> = atoms
            .iter()
            .map(|a| {
                let mut lhs = LinExpr::zero();
                for (k, &c) in a.coeffs.iter().enumerate() {
                    lhs.add_term(Rational::from(c), vars[k]);
                }
                Formula::cmp(lhs, a.op, LinExpr::from(a.rhs))
            })
            .collect();
        for clause in &cnf {
            solver.assert_formula(&Formula::or(
                clause
                    .iter()
                    .map(|&(i, pos)| {
                        if pos {
                            atom_formulas[i].clone()
                        } else {
                            atom_formulas[i].clone().not()
                        }
                    })
                    .collect(),
            ));
        }
        let result = solver.check();
        assert_eq!(result.is_sat(), expected, "atoms {atoms:?} cnf {cnf:?}");

        // Model soundness: every clause holds under the returned values.
        if let Some(model) = result.model() {
            let value = |k: usize| model.real_value(vars[k]).clone();
            for clause in &cnf {
                let ok = clause.iter().any(|&(i, pos)| {
                    let a = &atoms[i];
                    let mut lhs = Rational::zero();
                    for (k, &c) in a.coeffs.iter().enumerate() {
                        lhs = &lhs + &(&Rational::from(c) * &value(k));
                    }
                    let rhs = Rational::from(a.rhs);
                    let holds = match a.op {
                        CmpOp::Le => lhs <= rhs,
                        CmpOp::Lt => lhs < rhs,
                        CmpOp::Ge => lhs >= rhs,
                        CmpOp::Gt => lhs > rhs,
                        _ => unreachable!(),
                    };
                    holds == pos
                });
                assert!(ok, "model violates clause {clause:?}");
            }
        }
    }
}
