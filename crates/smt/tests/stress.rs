//! Stress and boundary tests for the SMT solver: cardinality encodings
//! against brute force, push/pop stack discipline, and deep formula
//! structure.

use sta_smt::rng::Pcg32;
use sta_smt::{BoolVar, Formula, LinExpr, LinExprCmp, Solver};

/// Brute-force: does any assignment of `n` Booleans with exactly the
/// forced prefix satisfy `count ⋈ k`?
fn brute_card_sat(n: usize, k: usize, forced: &[(usize, bool)], kind: u8) -> bool {
    'outer: for mask in 0..(1u32 << n) {
        for &(i, v) in forced {
            if ((mask >> i) & 1 == 1) != v {
                continue 'outer;
            }
        }
        let count = mask.count_ones() as usize;
        let holds = match kind {
            0 => count <= k,
            1 => count >= k,
            _ => count == k,
        };
        if holds {
            return true;
        }
    }
    false
}

/// at-most/at-least/exactly agree with brute-force counting under
/// arbitrary forced sub-assignments.
#[test]
fn cardinality_matches_brute_force() {
    let mut rng = Pcg32::new(0xCA4D);
    for _ in 0..128 {
        let n = rng.range_usize(2, 8);
        let k = rng.below(9) % (n + 2); // includes out-of-range k on purpose
        let kind = rng.below(3) as u8;
        let mut forced: Vec<(usize, bool)> = (0..rng.below(5))
            .map(|_| (rng.below(n), rng.flip()))
            .collect();
        forced.sort_unstable();
        forced.dedup_by_key(|p| p.0);

        let mut solver = Solver::new();
        let vars: Vec<BoolVar> = (0..n).map(|_| solver.new_bool()).collect();
        let fs: Vec<Formula> = vars.iter().map(|&v| Formula::var(v)).collect();
        let card = match kind {
            0 => Formula::at_most(fs.clone(), k),
            1 => Formula::at_least(fs.clone(), k),
            _ => Formula::exactly(fs.clone(), k),
        };
        solver.assert_formula(&card);
        for &(i, v) in &forced {
            solver.assert_formula(&Formula::lit(vars[i], v));
        }
        let got = solver.check();
        let expected = brute_card_sat(n, k, &forced, kind);
        assert_eq!(got.is_sat(), expected, "n={} k={} kind={}", n, k, kind);
        if let Some(model) = got.model() {
            let count = vars.iter().filter(|&&v| model.bool_value(v)).count();
            let holds = match kind {
                0 => count <= k,
                1 => count >= k,
                _ => count == k,
            };
            assert!(holds, "model count {count} violates kind {kind} k {k}");
        }
    }
}

/// Negated cardinality is the complementary constraint.
#[test]
fn negated_cardinality() {
    for n in 2usize..7 {
        for k in 0..n {
            let mut solver = Solver::new();
            let vars: Vec<BoolVar> = (0..n).map(|_| solver.new_bool()).collect();
            let fs: Vec<Formula> = vars.iter().map(|&v| Formula::var(v)).collect();
            solver.assert_formula(&Formula::at_most(fs, k).not());
            let model = solver.check().expect_sat();
            let count = vars.iter().filter(|&&v| model.bool_value(v)).count();
            assert!(count > k);
        }
    }
}

#[test]
fn push_pop_stack_discipline() {
    // Interleave pushes/pops with arithmetic assertions and make sure
    // each level sees exactly its own constraints.
    let mut solver = Solver::new();
    let x = solver.new_real();
    solver.assert_formula(&LinExpr::var(x).ge(LinExpr::from(0)));
    assert!(solver.check().is_sat());

    solver.push();
    solver.assert_formula(&LinExpr::var(x).le(LinExpr::from(10)));
    assert!(solver.check().is_sat());

    solver.push();
    solver.assert_formula(&LinExpr::var(x).gt(LinExpr::from(10)));
    assert!(!solver.check().is_sat());

    solver.pop().unwrap();
    assert!(solver.check().is_sat());

    solver.push();
    solver.assert_formula(&LinExpr::var(x).eq_expr(LinExpr::from(7)));
    let m = solver.check().expect_sat();
    assert_eq!(m.real_value(x).to_f64(), 7.0);
    solver.pop().unwrap();

    solver.pop().unwrap();
    // Back to just x ≥ 0; x > 10 is allowed again.
    solver.assert_formula(&LinExpr::var(x).gt(LinExpr::from(10)));
    assert!(solver.check().is_sat());
    assert_eq!(solver.num_assertions(), 2);
}

#[test]
fn repeated_checks_are_consistent() {
    // Checking twice without changes returns the same answer (the solver
    // re-encodes from scratch; determinism is part of the contract).
    let mut solver = Solver::new();
    let p = solver.new_bool();
    let x = solver.new_real();
    solver.assert_formula(
        &Formula::var(p).implies(LinExpr::var(x).ge(LinExpr::from(3))),
    );
    solver.assert_formula(&LinExpr::var(x).lt(LinExpr::from(2)));
    for _ in 0..3 {
        let m = solver.check().expect_sat();
        assert!(!m.bool_value(p));
    }
}

#[test]
fn deeply_nested_formula() {
    // alternating implications 64 deep: p0 → (p1 → (… → x ≥ 1)); assert
    // all p_i and ¬(x ≥ 1) ⇒ unsat.
    let mut solver = Solver::new();
    let x = solver.new_real();
    let ps: Vec<BoolVar> = (0..64).map(|_| solver.new_bool()).collect();
    let mut f = LinExpr::var(x).ge(LinExpr::from(1));
    for &p in ps.iter().rev() {
        f = Formula::var(p).implies(f);
    }
    solver.assert_formula(&f);
    for &p in &ps {
        solver.assert_formula(&Formula::var(p));
    }
    solver.push();
    solver.assert_formula(&LinExpr::var(x).lt(LinExpr::from(1)));
    assert!(!solver.check().is_sat());
    solver.pop().unwrap();
    let m = solver.check().expect_sat();
    assert!(m.real_value(x).to_f64() >= 1.0);
}

#[test]
fn wide_disjunction_forces_one_branch() {
    // x pinned to 41; exactly one disjunct (x = 41) is true.
    let mut solver = Solver::new();
    let x = solver.new_real();
    solver.assert_formula(&Formula::or(
        (0..100)
            .map(|k| LinExpr::var(x).eq_expr(LinExpr::from(k)))
            .collect(),
    ));
    solver.assert_formula(&LinExpr::var(x).ge(LinExpr::from(41)));
    solver.assert_formula(&LinExpr::var(x).lt(LinExpr::from(42)));
    let m = solver.check().expect_sat();
    assert_eq!(m.real_value(x).to_f64(), 41.0);
}

#[test]
fn big_coefficient_arithmetic_is_exact() {
    // (10^15)·x = 10^15 + 1 has the exact solution x = 1 + 10^-15; float
    // arithmetic would round it to 1, violating x > 1.
    let mut solver = Solver::new();
    let x = solver.new_real();
    let big = 1_000_000_000_000_000i64;
    solver.assert_formula(
        &(LinExpr::var(x) * sta_smt::Rational::from(big))
            .eq_expr(LinExpr::from(big + 1)),
    );
    solver.assert_formula(&LinExpr::var(x).gt(LinExpr::from(1)));
    let m = solver.check().expect_sat();
    assert_eq!(
        *m.real_value(x),
        sta_smt::Rational::new(big + 1, big)
    );
}

#[test]
fn chained_equalities_propagate_exactly() {
    // x0 = 3; x_{i+1} = x_i / 3 + 1; check x_20's exact rational value.
    let mut solver = Solver::new();
    let n = 21;
    let xs: Vec<_> = (0..n).map(|_| solver.new_real()).collect();
    solver.assert_formula(&LinExpr::var(xs[0]).eq_expr(LinExpr::from(3)));
    for i in 0..n - 1 {
        solver.assert_formula(
            &LinExpr::var(xs[i + 1]).eq_expr(
                LinExpr::var(xs[i]) * sta_smt::Rational::new(1, 3) + LinExpr::from(1),
            ),
        );
    }
    let m = solver.check().expect_sat();
    // Fixed point of f(v)=v/3+1 is 3/2; x_i = 3/2 + (3 − 3/2)/3^i.
    let expected = |i: u32| {
        let three_halves = sta_smt::Rational::new(3, 2);
        let pow = sta_smt::Rational::new(3i64.pow(i.min(19)), 1);
        if i <= 19 {
            &three_halves + &(&sta_smt::Rational::new(3, 2) / &pow)
        } else {
            unreachable!()
        }
    };
    assert_eq!(*m.real_value(xs[19]), expected(19));
}
