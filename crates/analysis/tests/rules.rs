//! Fixture tests: every rule gets a paired clean/violating source under
//! `tests/fixtures/`, analyzed under a small test configuration whose
//! virtual paths place each fixture in the right rule scope. The last
//! tests run the *real* workspace configuration against the real hot
//! files and delete budget-poll sites one at a time — the acceptance
//! criterion that losing any single poll fails rule 3.

use std::path::{Path, PathBuf};

use sta_analysis::rules::{self, Allow, Config};
use sta_analysis::{analyze_sources, default_config, Finding};

/// Scope-placing virtual paths for the fixtures.
const REPORT_PATH: &str = "crates/campaign/src/fixture.rs";
const HOT_PATH: &str = "crates/smt/src/hot.rs";
const PLAIN_PATH: &str = "crates/core/src/fixture.rs";
const JSON_LAYER_PATH: &str = "crates/smt/src/json.rs";

const FIXTURE_CONFIG: Config = Config {
    roots: &[],
    determinism_paths: &["crates/campaign/src/"],
    hot_files: &[HOT_PATH],
    json_exempt: &[JSON_LAYER_PATH],
    allow_determinism: &[],
    allow_clock: &[],
    allow_panic: &[],
    allow_json: &[],
    poll_inventory: &[],
};

/// The fixture config plus the budget fixture's pinned poll site.
const POLL_CONFIG: Config = Config {
    poll_inventory: &[(HOT_PATH, "self.budget.exhausted()")],
    ..FIXTURE_CONFIG
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

fn run(virtual_path: &str, fixture_name: &str) -> Vec<Finding> {
    run_with(&FIXTURE_CONFIG, virtual_path, fixture_name)
}

fn run_with(cfg: &Config, virtual_path: &str, fixture_name: &str) -> Vec<Finding> {
    analyze_sources(cfg, &[(virtual_path.to_string(), fixture(fixture_name))])
}

#[test]
fn determinism_pair() {
    assert_eq!(run(REPORT_PATH, "determinism_clean.rs"), []);
    let hits = run(REPORT_PATH, "determinism_violation.rs");
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|f| f.rule == rules::RULE_DETERMINISM), "{hits:?}");
    // The same violating source outside the report scope is clean.
    assert_eq!(run(PLAIN_PATH, "determinism_violation.rs"), []);
}

#[test]
fn clock_pair() {
    assert_eq!(run(PLAIN_PATH, "clock_clean.rs"), []);
    let hits = run(PLAIN_PATH, "clock_violation.rs");
    // One library-code read and one test-module read: the clock rule
    // does not exempt test regions.
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().all(|f| f.rule == rules::RULE_CLOCK), "{hits:?}");
}

#[test]
fn budget_poll_pair() {
    assert_eq!(run_with(&POLL_CONFIG, HOT_PATH, "budget_poll_clean.rs"), []);
    let hits = run_with(&POLL_CONFIG, HOT_PATH, "budget_poll_violation.rs");
    // The unpolled loop, plus the inventory entry its poll would satisfy.
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().all(|f| f.rule == rules::RULE_BUDGET_POLL), "{hits:?}");
    assert!(hits.iter().any(|f| f.message.contains("neither polls")), "{hits:?}");
    // The same sources outside the hot-file scope are clean.
    assert_eq!(run(PLAIN_PATH, "budget_poll_violation.rs"), []);
}

#[test]
fn panic_pair() {
    assert_eq!(run(PLAIN_PATH, "panic_clean.rs"), []);
    let hits = run(PLAIN_PATH, "panic_violation.rs");
    // unwrap, expect, panic!, unreachable! — one finding each.
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert!(hits.iter().all(|f| f.rule == rules::RULE_PANIC), "{hits:?}");
}

#[test]
fn json_pair() {
    assert_eq!(run(PLAIN_PATH, "json_clean.rs"), []);
    let hits = run(PLAIN_PATH, "json_violation.rs");
    // The quote-escape and the \u-escape lines.
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().all(|f| f.rule == rules::RULE_JSON), "{hits:?}");
    // The shared JSON layer itself is exempt.
    assert_eq!(run(JSON_LAYER_PATH, "json_violation.rs"), []);
}

#[test]
fn allowlist_entries_are_exact_once() {
    static ALLOW_ONE: &[Allow] = &[Allow {
        file: PLAIN_PATH,
        needle: "xs.first().copied().unwrap()",
        why: "fixture",
    }];
    let cfg = Config { allow_panic: ALLOW_ONE, ..FIXTURE_CONFIG };
    // The entry absorbs the unwrap; the other three sites still fire.
    let hits = run_with(&cfg, PLAIN_PATH, "panic_violation.rs");
    assert_eq!(hits.len(), 3, "{hits:?}");
    // Against the clean fixture the same entry is stale — a finding.
    let hits = run_with(&cfg, PLAIN_PATH, "panic_clean.rs");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, rules::RULE_ALLOWLIST);
    // A duplicate entry is one consumed + one stale.
    static ALLOW_DUP: &[Allow] = &[
        Allow { file: PLAIN_PATH, needle: "xs.first().copied().unwrap()", why: "fixture" },
        Allow { file: PLAIN_PATH, needle: "xs.first().copied().unwrap()", why: "dup" },
    ];
    let cfg = Config { allow_panic: ALLOW_DUP, ..FIXTURE_CONFIG };
    let hits = run_with(&cfg, PLAIN_PATH, "panic_violation.rs");
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert!(hits.iter().any(|f| f.rule == rules::RULE_ALLOWLIST), "{hits:?}");
}

/// Repo root, two levels above this crate.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Loads the real hot files of the workspace configuration.
fn real_hot_files(cfg: &Config) -> Vec<(String, String)> {
    cfg.hot_files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(repo_root().join(f))
                .unwrap_or_else(|e| panic!("read {f}: {e}"));
            (f.to_string(), text)
        })
        .collect()
}

fn budget_findings(cfg: &Config, files: &[(String, String)]) -> Vec<Finding> {
    analyze_sources(cfg, files)
        .into_iter()
        .filter(|f| f.rule == rules::RULE_BUDGET_POLL)
        .collect()
}

#[test]
fn real_hot_files_satisfy_the_poll_rule() {
    let cfg = default_config();
    let files = real_hot_files(&cfg);
    assert_eq!(budget_findings(&cfg, &files), []);
}

#[test]
fn removing_any_single_poll_site_fails_rule_3() {
    let cfg = default_config();
    let files = real_hot_files(&cfg);
    assert!(!cfg.poll_inventory.is_empty());
    for (i, (file, needle)) in cfg.poll_inventory.iter().enumerate() {
        // Blank exactly one matching line: the n-th occurrence, where n
        // counts the earlier inventory entries with the same needle, so
        // duplicate entries each delete a distinct site.
        let nth = cfg.poll_inventory[..i]
            .iter()
            .filter(|(f, n)| f == file && n == needle)
            .count();
        let mutated: Vec<(String, String)> = files
            .iter()
            .map(|(f, text)| {
                if !f.ends_with(file) {
                    return (f.clone(), text.clone());
                }
                let mut seen = 0usize;
                let patched: Vec<&str> = text
                    .split('\n')
                    .map(|l| {
                        if l.contains(needle) {
                            seen += 1;
                            if seen == nth + 1 {
                                return "";
                            }
                        }
                        l
                    })
                    .collect();
                (f.clone(), patched.join("\n"))
            })
            .collect();
        let hits = budget_findings(&cfg, &mutated);
        assert!(
            !hits.is_empty(),
            "deleting poll site {i} ({file}: {needle}) went undetected"
        );
    }
}
