// Fixture: report-path code using ordered collections — no findings.
use std::collections::BTreeMap;

pub fn rollup(pairs: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &(k, v) in pairs {
        *counts.entry(k).or_insert(0) += v;
    }
    counts.into_iter().collect()
}
