// Fixture: timing routed through the injected Clock — no findings. The
// clock rule covers test regions too, so the test module also injects.
pub fn timed<F: FnOnce()>(clock: &Clock, f: F) -> Duration {
    let start = clock.now();
    f();
    clock.now() - start
}

#[cfg(test)]
mod tests {
    #[test]
    fn fake_clock_makes_timing_exact() {
        let clock = Clock::fake();
        assert_eq!(super::timed(&clock, || {}), Duration::ZERO);
    }
}
