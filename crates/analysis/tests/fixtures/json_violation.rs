// Fixture: hand-rolled JSON string escaping outside the shared JSON
// layer — both the quote-escape and the \u escape forms are findings.
pub fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{{{:04x}}}", c as u32)),
            c => out.push(c),
        }
    }
}
