// Fixture: bare clock reads — one in library code, one in a test module.
// The clock rule flags both (test regions are NOT exempt: timing tests
// must inject FakeClock to stay exact).
pub fn timed<F: FnOnce()>(f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_a_test() {
        let _ = SystemTime::now();
    }
}
