// Fixture: HashMap on a report-feeding path — the determinism rule fires
// on the import and the two uses.
use std::collections::HashMap;

pub fn rollup(pairs: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &(k, v) in pairs {
        *counts.entry(k).or_insert(0) += v;
    }
    counts.into_iter().collect()
}
