// Fixture: hot-path loops that poll the budget or carry a justified
// no-poll annotation — no findings.
pub fn search(&mut self) -> Outcome {
    loop {
        if let Some(why) = self.budget.exhausted() {
            return Outcome::Unknown(why);
        }
        if self.step() {
            return Outcome::Done;
        }
    }
}

fn normalize(&mut self, lits: &mut Vec<u32>) {
    let mut i = 0;
    // analysis: no-poll(duplicate scan, bounded by clause length)
    while i + 1 < lits.len() {
        i += 1;
    }
}
