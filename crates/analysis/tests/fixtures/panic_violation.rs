// Fixture: four panic paths in library code — unwrap, expect, panic!,
// unreachable! — each a finding.
pub fn head(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}

pub fn checked(xs: &[u32]) -> u32 {
    let v = xs.first().expect("non-empty");
    if *v > 100 {
        panic!("out of range");
    }
    match v {
        0..=100 => *v,
        _ => unreachable!("guarded above"),
    }
}
