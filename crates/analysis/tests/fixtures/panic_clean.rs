// Fixture: library code that propagates errors instead of panicking —
// no findings. Test modules may unwrap freely.
pub fn head(xs: &[u32]) -> Result<u32, String> {
    xs.first().copied().ok_or_else(|| "empty input".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::head(&[7]).unwrap(), 7);
    }
}
