// Fixture: JSON emission through the shared escaper — no findings.
// Pushing structural quotes is fine; only hand-rolled escape sequences
// (backslash-escaping content inline) are banned.
pub fn field(name: &str, value: &str, out: &mut String) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":");
    json::escape_into(value, out);
}
