// Fixture: a hot-path loop with neither a budget poll nor a no-poll
// annotation — the PR 3 bug class the rule exists to prevent.
pub fn search(&mut self) -> Outcome {
    loop {
        if self.step() {
            return Outcome::Done;
        }
    }
}
