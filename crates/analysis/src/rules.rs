//! The rule engine: scopes, allowlists, annotations, and the five rules.
//!
//! Every rule works the same way: a *scope* (which files it looks at), a
//! *detector* (substring tokens over the lexer's code/string views), an
//! *exact-match allowlist* (in the style the old `tests/lint.rs` pinned:
//! every entry must match exactly one current occurrence, so stale and
//! duplicate entries are themselves findings), and for the budget-poll
//! rule additionally a comment *annotation* grammar and a pinned
//! *poll-site inventory*. See `DESIGN.md` §13 for the catalog and policy.
//!
//! Rules never read raw lines for detection — only the masked code view
//! (strings and comments cannot trigger a rule) or, for the JSON rule,
//! the string-content view. Allowlist needles, by contrast, match against
//! the raw source line, so entries can quote message strings verbatim
//! (`expect("entering in row")`) and stay human-readable.

use crate::lexer::{self, MaskedFile};

/// Rule identifiers, used for sorting and reporting. Order here is the
/// order findings sort and render in.
pub const RULE_DETERMINISM: &str = "determinism";
/// Clock-discipline rule id.
pub const RULE_CLOCK: &str = "clock";
/// Budget-poll-coverage rule id.
pub const RULE_BUDGET_POLL: &str = "budget-poll";
/// Panic-freedom rule id.
pub const RULE_PANIC: &str = "panic";
/// JSON-emission-discipline rule id.
pub const RULE_JSON: &str = "json";
/// Meta-rule id for allowlist/inventory bookkeeping violations.
pub const RULE_ALLOWLIST: &str = "allowlist";

/// One allowlisted occurrence: `file` is a path suffix, `needle` a
/// substring of the raw source line, `why` the one-line justification
/// (rendered by `--fix-allowlist` and kept for reviewers; the engine
/// only requires it to be non-empty).
#[derive(Debug, Clone, Copy)]
pub struct Allow {
    /// Path suffix the entry applies to (forward slashes).
    pub file: &'static str,
    /// Raw-line substring that identifies the occurrence.
    pub needle: &'static str,
    /// Justification for the exemption.
    pub why: &'static str,
}

/// A required budget-poll site: `(path suffix, raw-line substring)`.
/// Duplicate entries are how multiple identical sites are pinned.
pub type PollSite = (&'static str, &'static str);

/// The analyzer configuration: scopes, allowlists and the poll
/// inventory. [`crate::config::default_config`] pins the workspace's
/// instance; tests build small custom ones.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Directories (relative to the workspace root) scanned for `.rs`
    /// sources.
    pub roots: &'static [&'static str],
    /// Path substrings of report-feeding files: the determinism rule
    /// fires only inside these.
    pub determinism_paths: &'static [&'static str],
    /// Path substrings of solver hot-path files: the budget-poll rule
    /// fires only inside these.
    pub hot_files: &'static [&'static str],
    /// Path substrings exempt from the JSON-emission rule (the shared
    /// JSON layer itself).
    pub json_exempt: &'static [&'static str],
    /// Determinism-rule allowlist.
    pub allow_determinism: &'static [Allow],
    /// Clock-rule allowlist.
    pub allow_clock: &'static [Allow],
    /// Panic-rule allowlist.
    pub allow_panic: &'static [Allow],
    /// JSON-rule allowlist.
    pub allow_json: &'static [Allow],
    /// Exact inventory of budget-poll sites in the hot files.
    pub poll_inventory: &'static [PollSite],
}

/// One analyzer finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number (0 for whole-file/bookkeeping findings).
    pub line: usize,
    /// The offending source line, trimmed (empty for bookkeeping).
    pub snippet: String,
    /// What is wrong and what to do about it.
    pub message: String,
}

/// Sort key pinning the deterministic output order.
fn rule_order(rule: &str) -> usize {
    [
        RULE_DETERMINISM,
        RULE_CLOCK,
        RULE_BUDGET_POLL,
        RULE_PANIC,
        RULE_JSON,
        RULE_ALLOWLIST,
    ]
    .iter()
    .position(|r| *r == rule)
    .unwrap_or(usize::MAX)
}

/// Does `file` fall under any of the path substrings in `scopes`?
fn in_scope(file: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| file.contains(s))
}

/// Tracks allowlist consumption: exact-once semantics. Each occurrence
/// consumes the first unconsumed entry whose `(file, needle)` matches;
/// entries left unconsumed at the end are stale.
#[derive(Debug)]
struct AllowLedger {
    rule: &'static str,
    entries: &'static [Allow],
    hits: Vec<u32>,
}

impl AllowLedger {
    fn new(rule: &'static str, entries: &'static [Allow]) -> Self {
        AllowLedger { rule, entries, hits: vec![0; entries.len()] }
    }

    /// Consumes a matching entry if one remains; `true` means allowed.
    fn consume(&mut self, file: &str, raw_line: &str) -> bool {
        for (i, a) in self.entries.iter().enumerate() {
            if self.hits[i] == 0 && file.ends_with(a.file) && raw_line.contains(a.needle) {
                self.hits[i] = 1;
                return true;
            }
        }
        false
    }

    /// Findings for entries that never matched (stale allowlist).
    fn stale(&self, out: &mut Vec<Finding>) {
        for (i, a) in self.entries.iter().enumerate() {
            if self.hits[i] == 0 {
                out.push(Finding {
                    rule: RULE_ALLOWLIST,
                    file: a.file.to_string(),
                    line: 0,
                    snippet: a.needle.to_string(),
                    message: format!(
                        "stale {} allowlist entry: the occurrence it covered is \
                         gone — remove the entry",
                        self.rule
                    ),
                });
            }
        }
    }
}

/// The detector tokens of the clock rule.
const CLOCK_TOKENS: &[&str] = &["Instant::now()", "SystemTime::now()"];

/// The detector tokens of the panic rule.
const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// The detector tokens of the determinism rule.
const DETERMINISM_TOKENS: &[&str] = &["HashMap", "HashSet"];

/// Substrings that mark a budget poll inside a loop body (broad on
/// purpose: `self.budget.exhausted()`, `budget.is_limited()` caching and
/// `self.poll()?` all count as evidence the loop is budget-aware).
const POLL_BODY_TOKENS: &[&str] = &["budget", "poll("];

/// Substrings that identify a *poll site* for the exact inventory
/// (narrower than [`POLL_BODY_TOKENS`]: only real clock checks).
const POLL_SITE_TOKENS: &[&str] = &["budget.exhausted(", ".poll()"];

/// The annotation marker the budget-poll rule reads from comments.
const NO_POLL_MARKER: &str = "analysis: no-poll(";

/// Hand-rolled JSON escape markers, built at runtime so the analyzer's
/// own source never contains the literal byte sequences it scans for.
fn json_markers() -> [String; 2] {
    let b = '\\';
    // In source text a hand-escaped quote is  \ \ \ "  and a hand-rolled
    // \uXXXX escape starts with  \ \ u {  (the format-string form).
    [format!("{b}{b}{b}\""), format!("{b}{b}u{{")]
}

/// Scans one file and appends findings. Poll sites are collected into
/// `poll_sites` for the cross-file inventory check run by the caller.
#[allow(clippy::too_many_arguments)]
fn scan_file(
    config: &Config,
    file: &str,
    text: &str,
    ledgers: &mut Ledgers,
    findings: &mut Vec<Finding>,
    poll_sites: &mut Vec<(String, usize, String)>,
) {
    let masked = lexer::mask(text);
    let raw: Vec<&str> = text.split('\n').collect();
    let json_marks = json_markers();
    let determinism = in_scope(file, config.determinism_paths);
    let hot = in_scope(file, config.hot_files);
    let json_checked = !in_scope(file, config.json_exempt);

    for li in 0..masked.len() {
        let code = &masked.code[li];
        let raw_line = raw.get(li).copied().unwrap_or("");
        let in_test = masked.in_test(li);

        // Clock discipline applies to test regions too: timing tests
        // inject Clock::fake() instead of reading the real clock, which
        // is what keeps them exact rather than flaky.
        if CLOCK_TOKENS.iter().any(|t| code.contains(t))
            && !ledgers.clock.consume(file, raw_line)
        {
            findings.push(Finding {
                rule: RULE_CLOCK,
                file: file.to_string(),
                line: li + 1,
                snippet: raw_line.trim().to_string(),
                message: "bare clock read — route timing through sta_smt::Clock \
                          (FakeClock-testable) or extend the clock allowlist"
                    .into(),
            });
        }

        if in_test {
            continue;
        }

        if determinism
            && DETERMINISM_TOKENS.iter().any(|t| code.contains(t))
            && !ledgers.determinism.consume(file, raw_line)
        {
            findings.push(Finding {
                rule: RULE_DETERMINISM,
                file: file.to_string(),
                line: li + 1,
                snippet: raw_line.trim().to_string(),
                message: "hash collection on a report-feeding path — iteration \
                          order is nondeterministic; use BTreeMap/BTreeSet or \
                          sort before iterating, or allowlist with a \
                          justification"
                    .into(),
            });
        }

        if PANIC_TOKENS.iter().any(|t| code.contains(t))
            && !ledgers.panics.consume(file, raw_line)
        {
            findings.push(Finding {
                rule: RULE_PANIC,
                file: file.to_string(),
                line: li + 1,
                snippet: raw_line.trim().to_string(),
                message: "potential panic in library code — handle the error, \
                          or document the invariant and extend the panic \
                          allowlist"
                    .into(),
            });
        }

        if json_checked
            && json_marks.iter().any(|m| masked.strings[li].contains(m.as_str()))
            && !ledgers.json.consume(file, raw_line)
        {
            findings.push(Finding {
                rule: RULE_JSON,
                file: file.to_string(),
                line: li + 1,
                snippet: raw_line.trim().to_string(),
                message: "hand-rolled JSON escaping — emit through \
                          sta_smt::json (escape_into/f64_into) instead"
                    .into(),
            });
        }

        if hot && POLL_SITE_TOKENS.iter().any(|t| code.contains(t)) {
            poll_sites.push((file.to_string(), li + 1, raw_line.trim().to_string()));
        }
    }

    if hot {
        scan_hot_loops(file, &masked, &raw, findings);
    }
}

/// The loop-coverage half of the budget-poll rule: every `while`/`loop`
/// in non-test code of a hot file must either contain a poll token in
/// its body or carry a `// analysis: no-poll(reason)` annotation on the
/// loop-head line or the line directly above. `for` loops are exempt —
/// they iterate finite collections, and the unbounded encode recursion
/// they appear in is pinned by the poll-site inventory instead.
fn scan_hot_loops(
    file: &str,
    masked: &MaskedFile,
    raw: &[&str],
    findings: &mut Vec<Finding>,
) {
    let n = masked.test_start.unwrap_or(masked.len());
    let mut consumed_annotations: Vec<usize> = Vec::new();
    let mut li = 0;
    while li < n {
        let Some(col) = loop_keyword_at(&masked.code[li]) else {
            li += 1;
            continue;
        };
        let head = li;
        let end = loop_end(masked, head, col, n);
        let polled = (head..=end.min(n.saturating_sub(1)))
            .any(|l| POLL_BODY_TOKENS.iter().any(|t| masked.code[l].contains(t)));
        let annotation = annotation_at(masked, head);
        match (polled, annotation) {
            (false, None) => findings.push(Finding {
                rule: RULE_BUDGET_POLL,
                file: file.to_string(),
                line: head + 1,
                snippet: raw.get(head).map(|l| l.trim()).unwrap_or("").to_string(),
                message: "loop in a solver hot path neither polls the budget \
                          nor carries an `// analysis: no-poll(reason)` \
                          annotation"
                    .into(),
            }),
            (false, Some((at, reason))) => {
                consumed_annotations.push(at);
                if reason.trim().is_empty() {
                    findings.push(Finding {
                        rule: RULE_BUDGET_POLL,
                        file: file.to_string(),
                        line: at + 1,
                        snippet: raw.get(at).map(|l| l.trim()).unwrap_or("").to_string(),
                        message: "no-poll annotation needs a non-empty reason"
                            .into(),
                    });
                }
            }
            (true, Some((at, _))) => {
                consumed_annotations.push(at);
                findings.push(Finding {
                    rule: RULE_BUDGET_POLL,
                    file: file.to_string(),
                    line: at + 1,
                    snippet: raw.get(at).map(|l| l.trim()).unwrap_or("").to_string(),
                    message: "stale no-poll annotation: the loop polls the \
                              budget — remove the annotation"
                        .into(),
                });
            }
            (true, None) => {}
        }
        li += 1;
    }
    // Orphaned annotations: a no-poll marker nobody's loop consumed is
    // either left over from a deleted loop or attached to the wrong line.
    for li in 0..n {
        if masked.comments[li].contains(NO_POLL_MARKER)
            && !consumed_annotations.contains(&li)
        {
            findings.push(Finding {
                rule: RULE_BUDGET_POLL,
                file: file.to_string(),
                line: li + 1,
                snippet: raw.get(li).map(|l| l.trim()).unwrap_or("").to_string(),
                message: "orphaned no-poll annotation: not attached to a \
                          `while`/`loop` head (put it on the loop-head line \
                          or the line directly above)"
                    .into(),
            });
        }
    }
}

/// Returns the byte column of a `while` or `loop` keyword on the masked
/// code line, if the line opens a loop.
fn loop_keyword_at(code: &str) -> Option<usize> {
    for kw in ["while", "loop"] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(kw) {
            let at = from + rel;
            let before_ok = at == 0
                || !code.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && code.as_bytes()[at - 1] != b'_';
            let after = at + kw.len();
            let after_ok = after >= code.len()
                || !code.as_bytes()[after].is_ascii_alphanumeric()
                    && code.as_bytes()[after] != b'_';
            if before_ok && after_ok {
                return Some(at);
            }
            from = after;
        }
    }
    None
}

/// Finds the 0-based line on which the loop opened at `(head, col)`
/// closes, by brace matching over the masked code view. Falls back to
/// the head line when no opening brace is found before `limit` (a
/// malformed or macro-heavy construct; the rule then sees an empty
/// body).
fn loop_end(masked: &MaskedFile, head: usize, col: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut seen_open = false;
    let mut li = head;
    let mut start_col = col;
    while li < limit {
        for b in masked.code[li].bytes().skip(start_col) {
            match b {
                b'{' => {
                    depth += 1;
                    seen_open = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if seen_open && depth == 0 {
                        return li;
                    }
                }
                _ => {}
            }
        }
        li += 1;
        start_col = 0;
        // Give up on pathological heads: a loop whose `{` is more than a
        // few lines below the keyword is not a shape this codebase uses.
        if !seen_open && li > head + 4 {
            return head;
        }
    }
    limit.saturating_sub(1)
}

/// Looks for a no-poll annotation on the head line or the line above;
/// returns `(line, reason)`.
fn annotation_at(masked: &MaskedFile, head: usize) -> Option<(usize, String)> {
    for li in [Some(head), head.checked_sub(1)].into_iter().flatten() {
        let comment = &masked.comments[li];
        if let Some(at) = comment.find(NO_POLL_MARKER) {
            let rest = &comment[at + NO_POLL_MARKER.len()..];
            let reason = rest.split(')').next().unwrap_or("").to_string();
            return Some((li, reason));
        }
    }
    None
}

/// The per-rule allowlist ledgers of one analysis run.
#[derive(Debug)]
struct Ledgers {
    determinism: AllowLedger,
    clock: AllowLedger,
    panics: AllowLedger,
    json: AllowLedger,
}

/// Runs the full analysis over in-memory `(path, text)` sources. Paths
/// are workspace-relative with forward slashes. Sources are scanned in
/// sorted path order, findings come back sorted, and the allowlist and
/// poll-inventory exactness checks run at the end — so equal inputs
/// always produce byte-equal reports.
pub fn analyze_sources(config: &Config, files: &[(String, String)]) -> Vec<Finding> {
    let mut order: Vec<usize> = (0..files.len()).collect();
    order.sort_by(|&a, &b| files[a].0.cmp(&files[b].0));

    let mut findings = Vec::new();
    let mut poll_sites = Vec::new();
    let mut ledgers = Ledgers {
        determinism: AllowLedger::new(RULE_DETERMINISM, config.allow_determinism),
        clock: AllowLedger::new(RULE_CLOCK, config.allow_clock),
        panics: AllowLedger::new(RULE_PANIC, config.allow_panic),
        json: AllowLedger::new(RULE_JSON, config.allow_json),
    };
    for &i in &order {
        let (path, text) = &files[i];
        scan_file(config, path, text, &mut ledgers, &mut findings, &mut poll_sites);
    }

    // Poll-site inventory: exact-once in both directions. Removing a
    // poll orphans its inventory entry; adding one demands a new entry.
    let mut entry_hits = vec![0u32; config.poll_inventory.len()];
    for (file, line, raw_line) in &poll_sites {
        let matched = config.poll_inventory.iter().enumerate().find(|(i, (f, needle))| {
            entry_hits[*i] == 0 && file.ends_with(f) && raw_line.contains(needle)
        });
        match matched {
            Some((i, _)) => entry_hits[i] = 1,
            None => findings.push(Finding {
                rule: RULE_BUDGET_POLL,
                file: file.clone(),
                line: *line,
                snippet: raw_line.clone(),
                message: "budget-poll site not in the pinned inventory — add \
                          an entry to POLL_INVENTORY in \
                          crates/analysis/src/config.rs"
                    .into(),
            }),
        }
    }
    for (i, (file, needle)) in config.poll_inventory.iter().enumerate() {
        if entry_hits[i] == 0 {
            findings.push(Finding {
                rule: RULE_BUDGET_POLL,
                file: (*file).to_string(),
                line: 0,
                snippet: (*needle).to_string(),
                message: "required budget-poll site is gone — a hot loop lost \
                          its poll (restore it, or update POLL_INVENTORY if \
                          the site moved)"
                    .into(),
            });
        }
    }

    ledgers.determinism.stale(&mut findings);
    ledgers.clock.stale(&mut findings);
    ledgers.panics.stale(&mut findings);
    ledgers.json.stale(&mut findings);

    findings.sort_by(|a, b| {
        (rule_order(a.rule), &a.file, a.line, &a.message)
            .cmp(&(rule_order(b.rule), &b.file, b.line, &b.message))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMPTY: Config = Config {
        roots: &[],
        determinism_paths: &["crates/campaign/src/"],
        hot_files: &["crates/smt/src/hot.rs"],
        json_exempt: &["crates/smt/src/json.rs"],
        allow_determinism: &[],
        allow_clock: &[],
        allow_panic: &[],
        allow_json: &[],
        poll_inventory: &[],
    };

    fn run(path: &str, text: &str) -> Vec<Finding> {
        analyze_sources(&EMPTY, &[(path.to_string(), text.to_string())])
    }

    #[test]
    fn determinism_fires_only_in_scope() {
        let src = "use std::collections::HashMap;\n";
        let hits = run("crates/campaign/src/pool.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_DETERMINISM);
        assert_eq!(hits[0].line, 1);
        assert!(run("crates/linalg/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// HashMap Instant::now() .unwrap() panic!\nlet s = \"HashMap .unwrap()\";\n";
        assert!(run("crates/campaign/src/pool.rs", src).is_empty());
    }

    #[test]
    fn clock_rule_covers_test_regions() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod t {\n  fn f() { let _ = Instant::now(); }\n}\n";
        let hits = run("crates/core/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_CLOCK);
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn panic_rule_exempts_test_regions() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod t {\n  fn f() { None::<u8>.unwrap(); panic!(); }\n}\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn loop_without_poll_or_annotation_fires() {
        let src = "fn f() {\n    while x() {\n        step();\n    }\n}\n";
        let hits = run("crates/smt/src/hot.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_BUDGET_POLL);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn annotated_loop_is_clean_and_stale_annotation_fires() {
        let ok = "fn f() {\n    // analysis: no-poll(bounded by n)\n    while x() {\n        step();\n    }\n}\n";
        assert!(run("crates/smt/src/hot.rs", ok).is_empty());
        let stale = "fn f() {\n    // analysis: no-poll(bounded)\n    while x() {\n        if budget.exhausted().is_some() { return; }\n    }\n}\n";
        let hits = analyze_sources(
            &Config {
                poll_inventory: &[("crates/smt/src/hot.rs", "budget.exhausted()")],
                ..EMPTY
            },
            &[("crates/smt/src/hot.rs".into(), stale.into())],
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("stale no-poll"));
    }

    #[test]
    fn orphaned_annotation_fires() {
        let src = "fn f() {\n    // analysis: no-poll(nothing here)\n    step();\n}\n";
        let hits = run("crates/smt/src/hot.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("orphaned"));
    }

    #[test]
    fn poll_inventory_is_exact_both_ways() {
        let src = "fn f() {\n    loop {\n        if budget.exhausted().is_some() { break; }\n    }\n}\n";
        // Unlisted site.
        let hits = run("crates/smt/src/hot.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("not in the pinned inventory"));
        // Listed site: clean.
        let cfg = Config {
            poll_inventory: &[("crates/smt/src/hot.rs", "budget.exhausted()")],
            ..EMPTY
        };
        assert!(analyze_sources(&cfg, &[("crates/smt/src/hot.rs".into(), src.into())])
            .is_empty());
        // Missing site: the entry outlives the code.
        let gone = "fn f() {}\n";
        let hits =
            analyze_sources(&cfg, &[("crates/smt/src/hot.rs".into(), gone.into())]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("required budget-poll site is gone"));
    }

    #[test]
    fn allowlist_is_exact_once() {
        static ALLOW: &[Allow] = &[Allow {
            file: "crates/core/src/x.rs",
            needle: ".unwrap()",
            why: "test entry",
        }];
        let cfg = Config { allow_panic: ALLOW, ..EMPTY };
        // One occurrence: consumed, clean.
        let one = "fn f() { q().unwrap(); }\n";
        assert!(analyze_sources(&cfg, &[("crates/core/src/x.rs".into(), one.into())])
            .is_empty());
        // Two occurrences: the second is a finding.
        let two = "fn f() { q().unwrap(); }\nfn g() { q().unwrap(); }\n";
        let hits =
            analyze_sources(&cfg, &[("crates/core/src/x.rs".into(), two.into())]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
        // Zero occurrences: the entry is stale.
        let zero = "fn f() {}\n";
        let hits =
            analyze_sources(&cfg, &[("crates/core/src/x.rs".into(), zero.into())]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_ALLOWLIST);
        assert!(hits[0].message.contains("stale"));
    }

    #[test]
    fn json_rule_spots_hand_escaping() {
        let b = '\\';
        let src = format!("fn f(out: &mut String) {{ out.push_str(\"{b}{b}{b}\"\"); }}\n");
        let hits = analyze_sources(&EMPTY, &[("crates/core/src/x.rs".into(), src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_JSON);
        // The shared JSON layer is exempt.
        let src = format!("fn f(out: &mut String) {{ out.push_str(\"{b}{b}{b}\"\"); }}\n");
        assert!(analyze_sources(&EMPTY, &[("crates/smt/src/json.rs".into(), src)])
            .is_empty());
    }

    #[test]
    fn findings_sort_deterministically() {
        let src = "use std::collections::HashMap;\nfn f() { let _ = Instant::now(); }\nfn g() { q().unwrap(); }\n";
        let a = analyze_sources(&EMPTY, &[("crates/campaign/src/pool.rs".into(), src.into())]);
        let b = analyze_sources(&EMPTY, &[("crates/campaign/src/pool.rs".into(), src.into())]);
        assert_eq!(a, b);
        let rules: Vec<&str> = a.iter().map(|f| f.rule).collect();
        assert_eq!(rules, [RULE_DETERMINISM, RULE_CLOCK, RULE_PANIC]);
    }
}
