//! A line-aware lexical scanner for Rust sources.
//!
//! The rule engine ([`crate::rules`]) works on *views* of a source file
//! rather than a token stream: for every line it needs to know what is
//! code, what is comment text, and what sits inside string literals, so
//! that a rule banning `HashMap` cannot fire on a doc comment that merely
//! mentions one and an annotation grammar can live in comments without a
//! full parser. One pass over the file produces three aligned per-line
//! views plus the test-region boundary:
//!
//! * `code` — the line with comments removed and the *contents* of
//!   string, raw-string, byte-string and char literals blanked (the
//!   delimiting quotes survive, so `x.expect("msg")` still reads as
//!   `x.expect("")` and token-level checks keep working).
//! * `comments` — the concatenated text of every `//` and `/* */`
//!   comment on the line (block comments contribute to each line they
//!   span). This is where `// analysis: no-poll(reason)` annotations are
//!   read from.
//! * `strings` — the concatenated *raw source slices* of string-literal
//!   contents on the line (escapes are not decoded). The JSON-emission
//!   rule looks for hand-rolled escape sequences here.
//!
//! The scanner handles nested block comments, all string forms (`"…"`,
//! `r"…"`, `r#"…"#` with any hash depth, `b"…"`, `br#"…"#`), char and
//! byte-char literals, and tells lifetimes (`'a`) apart from char
//! literals by lookahead. It is deliberately *not* a full lexer: it
//! never tokenizes numbers or identifiers, because no rule needs them.
//!
//! The test-region convention follows `tests/lint.rs` (and the whole
//! workspace): everything from the first `#[cfg(test)]` line to the end
//! of the file is test code — the repo keeps test modules at the bottom
//! of each source file.

/// The aligned per-line views of one masked source file.
#[derive(Debug, Clone)]
pub struct MaskedFile {
    /// Per line: code with comments removed and literal contents blanked.
    pub code: Vec<String>,
    /// Per line: concatenated comment text.
    pub comments: Vec<String>,
    /// Per line: concatenated raw source slices of string contents.
    pub strings: Vec<String>,
    /// 0-based index of the first `#[cfg(test)]` code line, if any;
    /// every line from there to EOF is test code.
    pub test_start: Option<usize>,
}

impl MaskedFile {
    /// Number of lines (always ≥ 1; an empty file has one empty line).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file has no lines with content.
    pub fn is_empty(&self) -> bool {
        self.code.iter().all(|l| l.trim().is_empty())
    }

    /// Whether 0-based line `li` falls in the trailing test region.
    pub fn in_test(&self, li: usize) -> bool {
        self.test_start.is_some_and(|t| li >= t)
    }
}

/// Is `c` an identifier character (decides whether `r"` starts a raw
/// string or ends an identifier like `var"`, which cannot occur anyway)?
fn is_ident(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// The current (last) line buffer. The buffers are created non-empty and
/// only ever grow, so the fallback push never runs; it exists to keep
/// this helper total without a panic path.
fn last(v: &mut Vec<String>) -> &mut String {
    if v.is_empty() {
        v.push(String::new());
    }
    let i = v.len() - 1;
    &mut v[i]
}

/// Scans `text` into aligned per-line code/comment/string views.
pub fn mask(text: &str) -> MaskedFile {
    let bytes = text.as_bytes();
    let n = bytes.len();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut strings = vec![String::new()];
    let mut i = 0usize;
    // Last *code* byte emitted, for raw-string prefix disambiguation.
    let mut prev_code: u8 = b' ';

    macro_rules! newline {
        () => {{
            code.push(String::new());
            comments.push(String::new());
            strings.push(String::new());
        }};
    }

    while i < n {
        let c = bytes[i];
        match c {
            b'\n' => {
                newline!();
                i += 1;
                prev_code = b' ';
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                // Line comment (also doc comments): text up to EOL.
                i += 2;
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                last(&mut comments).push_str(&text[start..i]);
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                // Nested block comment; content recorded per spanned line.
                i += 2;
                let mut depth = 1u32;
                while i < n && depth > 0 {
                    if bytes[i] == b'\n' {
                        newline!();
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        let start = i;
                        while i < n
                            && bytes[i] != b'\n'
                            && !(bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*')
                            && !(bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/')
                        {
                            i += 1;
                        }
                        last(&mut comments).push_str(&text[start..i]);
                    }
                }
            }
            b'r' | b'b' if !is_ident(prev_code) => {
                // Possible raw / byte / byte-raw string prefix.
                if let Some(adv) = raw_string(text, i, &mut code, &mut strings, &mut comments)
                {
                    i = adv;
                    prev_code = b'"';
                } else if c == b'b' && i + 1 < n && bytes[i + 1] == b'\'' {
                    // Byte-char literal b'…'.
                    last(&mut code).push(' ');
                    i = char_literal(bytes, i + 1);
                    prev_code = b' ';
                } else {
                    last(&mut code).push(c as char);
                    prev_code = c;
                    i += 1;
                }
            }
            b'"' => {
                i = plain_string(text, i, &mut code, &mut strings, &mut comments);
                prev_code = b'"';
            }
            b'\'' => {
                // Char literal or lifetime, decided by lookahead.
                if let Some(end) = try_char_literal(bytes, i) {
                    last(&mut code).push(' ');
                    i = end;
                    prev_code = b' ';
                } else {
                    last(&mut code).push('\'');
                    prev_code = b'\'';
                    i += 1;
                }
            }
            _ => {
                last(&mut code).push(c as char);
                prev_code = c;
                i += 1;
            }
        }
    }

    let test_start = code
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"));
    MaskedFile { code, comments, strings, test_start }
}

/// Consumes a plain (possibly multi-line) `"…"` string starting at the
/// opening quote; records contents into `strings`, quotes into `code`.
/// Returns the index just past the closing quote (or EOF).
fn plain_string(
    text: &str,
    open: usize,
    code: &mut Vec<String>,
    strings: &mut Vec<String>,
    comments: &mut Vec<String>,
) -> usize {
    let bytes = text.as_bytes();
    let n = bytes.len();
    last(code).push('"');
    let mut i = open + 1;
    let mut start = i;
    loop {
        if i >= n {
            last(strings).push_str(&text[start..n]);
            return n;
        }
        match bytes[i] {
            b'"' => {
                last(strings).push_str(&text[start..i]);
                last(code).push('"');
                return i + 1;
            }
            b'\\' => {
                // Skip the escaped byte (enough to not mistake \" for a
                // terminator; multi-byte escapes are plain content). An
                // escaped newline — a string continuation — still ends a
                // source line, so the line buffers must advance with it.
                if i + 1 < n && bytes[i + 1] == b'\n' {
                    last(strings).push_str(&text[start..=i]);
                    code.push(String::new());
                    comments.push(String::new());
                    strings.push(String::new());
                    i += 2;
                    start = i;
                } else {
                    i = (i + 2).min(n);
                }
            }
            b'\n' => {
                last(strings).push_str(&text[start..i]);
                code.push(String::new());
                comments.push(String::new());
                strings.push(String::new());
                i += 1;
                start = i;
            }
            _ => i += 1,
        }
    }
}

/// Tries to consume a raw-string literal (`r"…"`, `r#"…"#`, `br#"…"#`)
/// whose prefix starts at `at`. Returns the index past the closing
/// delimiter, or `None` if the text at `at` is not a raw-string prefix.
fn raw_string(
    text: &str,
    at: usize,
    code: &mut Vec<String>,
    strings: &mut Vec<String>,
    comments: &mut Vec<String>,
) -> Option<usize> {
    let bytes = text.as_bytes();
    let n = bytes.len();
    let mut i = at;
    if bytes[i] == b'b' {
        i += 1;
    }
    if i >= n || bytes[i] != b'r' {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while i < n && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || bytes[i] != b'"' {
        return None;
    }
    i += 1;
    last(code).push('"');
    let mut start = i;
    loop {
        if i >= n {
            last(strings).push_str(&text[start..n]);
            return Some(n);
        }
        if bytes[i] == b'"' {
            let tail = &bytes[i + 1..];
            if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                last(strings).push_str(&text[start..i]);
                last(code).push('"');
                return Some(i + 1 + hashes);
            }
            i += 1;
        } else if bytes[i] == b'\n' {
            last(strings).push_str(&text[start..i]);
            code.push(String::new());
            strings.push(String::new());
            comments.push(String::new());
            i += 1;
            start = i;
        } else {
            i += 1;
        }
    }
}

/// Lookahead check for a char literal at the `'` at `at`; returns the
/// index past the closing quote when it is one, `None` for a lifetime.
fn try_char_literal(bytes: &[u8], at: usize) -> Option<usize> {
    let n = bytes.len();
    if at + 1 >= n {
        return None;
    }
    if bytes[at + 1] == b'\\' {
        return Some(char_literal(bytes, at));
    }
    // A one-scalar literal: skip the UTF-8 sequence after the quote and
    // require a closing quote right behind it.
    let mut j = at + 1;
    j += utf8_len(bytes[j]);
    if j < n && bytes[j] == b'\'' {
        Some(j + 1)
    } else {
        None // `'ident` — a lifetime
    }
}

/// Consumes a (possibly escaped) char literal starting at the `'` at
/// `at`; returns the index past the closing quote. Tolerant of malformed
/// input: gives up at EOL rather than scanning the whole file.
fn char_literal(bytes: &[u8], at: usize) -> usize {
    let n = bytes.len();
    let mut i = at + 1;
    while i < n && bytes[i] != b'\n' {
        if bytes[i] == b'\\' {
            i = (i + 2).min(n);
        } else if bytes[i] == b'\'' {
            return i + 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_separated_from_code() {
        let m = mask("let x = 1; // HashMap in a comment\ncode();\n");
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap"));
        assert_eq!(m.code[1], "code();");
    }

    #[test]
    fn string_contents_are_blanked_in_code() {
        let m = mask("x.expect(\"HashMap broke\");\n");
        assert!(m.code[0].contains(".expect(\"\")"), "{:?}", m.code[0]);
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.strings[0].contains("HashMap broke"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("a /* one /* two */ still */ b\n");
        assert_eq!(m.code[0].split_whitespace().collect::<Vec<_>>(), ["a", "b"]);
        assert!(m.comments[0].contains("two"));
    }

    #[test]
    fn block_comment_spans_lines() {
        let m = mask("before /* HashMap\nstill HashMap */ after\n");
        assert!(!m.code[0].contains("HashMap"));
        assert!(!m.code[1].contains("HashMap"));
        assert!(m.comments[1].contains("still"));
        assert!(m.code[1].contains("after"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let m = mask("let s = r#\"quote \" inside\"#; tail();\n");
        assert!(m.code[0].contains("tail();"));
        assert!(!m.code[0].contains("inside"));
        assert!(m.strings[0].contains("quote \" inside"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let m = mask("let a = b\"bytes\"; let b2 = br#\"raw\"#; done();\n");
        assert!(m.code[0].contains("done();"));
        assert!(m.strings[0].contains("bytes"));
        assert!(m.strings[0].contains("raw"));
    }

    #[test]
    fn lifetimes_survive_char_literals_blank() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }\n");
        assert!(m.code[0].contains("<'a>"), "{:?}", m.code[0]);
        assert!(m.code[0].contains("&'a str"));
        assert!(!m.code[0].contains("'x'"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let m = mask("let s = \"a \\\" b\"; after();\n");
        assert!(m.code[0].contains("after();"));
        assert!(m.strings[0].contains("a \\\" b"));
    }

    #[test]
    fn multi_line_string_contents_split_per_line() {
        let m = mask("let s = \"first\nsecond\"; after();\n");
        assert!(m.strings[0].contains("first"));
        assert!(m.strings[1].contains("second"));
        assert!(m.code[1].contains("after();"));
    }

    #[test]
    fn test_region_starts_at_cfg_test() {
        let m = mask("fn lib() {}\n#[cfg(test)]\nmod tests {}\n");
        assert_eq!(m.test_start, Some(1));
        assert!(!m.in_test(0));
        assert!(m.in_test(1));
        assert!(m.in_test(2));
    }

    #[test]
    fn cfg_test_inside_string_is_not_a_region_start() {
        let m = mask("let s = \"#[cfg(test)]\";\nfn lib() {}\n");
        assert_eq!(m.test_start, None);
    }

    #[test]
    fn division_is_not_a_comment() {
        let m = mask("let x = a / b; let y = c / d;\n");
        assert!(m.code[0].contains("a / b"));
        assert!(m.comments[0].is_empty());
    }

    #[test]
    fn escaped_newline_continuation_keeps_lines_aligned() {
        // A backslash-newline string continuation spans two source lines;
        // line numbers after it must not shift.
        let src = "let s = \"first \\\n    second\";\nafter();\n";
        let m = mask(src);
        assert_eq!(m.len(), src.split('\n').count());
        assert!(m.code[2].contains("after()"), "{:?}", m.code);
        assert!(m.strings[0].contains("first"));
        assert!(m.strings[1].contains("second"));
    }
}
