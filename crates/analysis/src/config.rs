//! The workspace's pinned analyzer configuration: scan roots, rule
//! scopes, allowlists, and the budget-poll inventory.
//!
//! Everything here is data, reviewed like code: adding an allowlist
//! entry or inventory line is a diff with a justification, exactly as
//! the old `tests/lint.rs` allowlist worked. Entries are exact-once —
//! stale or duplicate entries are findings themselves.

use crate::rules::{Allow, Config, PollSite};

/// Library roots scanned for `.rs` sources, relative to the workspace
/// root. `crates/bench` is excluded (off-workspace, criterion-based)
/// and `tests/` directories are never walked — the rules govern shipped
/// library and binary code.
const ROOTS: &[&str] = &[
    "crates/analysis/src",
    "crates/campaign/src",
    "crates/core/src",
    "crates/estimator/src",
    "crates/grid/src",
    "crates/linalg/src",
    "crates/serve/src",
    "crates/smt/src",
    "src",
];

/// Report-feeding paths: anything here ends up in `CampaignReport`,
/// trace JSONL, bench JSON or rendered tables, where iteration order is
/// observable byte-for-byte. The CDCL core is included because its DRAT
/// proof log feeds certification artifacts.
const DETERMINISM_PATHS: &[&str] = &[
    "crates/campaign/src/",
    "crates/core/src/",
    "crates/grid/src/synthetic.rs",
    "crates/serve/src/",
    "crates/smt/src/json.rs",
    "crates/smt/src/profile.rs",
    "crates/smt/src/sat/cdcl.rs",
    "crates/smt/src/stats.rs",
    "crates/smt/src/tablefmt.rs",
    "crates/smt/src/trace.rs",
];

/// Solver hot paths where an unpolled loop turns a budget into a
/// suggestion (the PR 3 bug class).
const HOT_FILES: &[&str] = &[
    "crates/smt/src/cnf.rs",
    "crates/smt/src/sat/cdcl.rs",
    "crates/smt/src/simplex/dense.rs",
    "crates/smt/src/simplex/mod.rs",
    "crates/smt/src/simplex/revised.rs",
];

/// The shared JSON layer — the only place allowed to hand-escape.
const JSON_EXEMPT: &[&str] = &["crates/smt/src/json.rs"];

/// Solver-internal hash collections on determinism-scoped files. These
/// never reach a report in iteration order: the 1-vs-4-worker
/// byte-compare gate in `verify.sh` pins that empirically, and each
/// entry documents why order cannot leak.
const ALLOW_DETERMINISM: &[Allow] = &[
    Allow {
        file: "smt/src/sat/cdcl.rs",
        needle: "let remove: std::collections::HashSet<usize> =",
        why: "membership set for clause compaction; deletions are logged from \
              the sorted keep-order Vec, never by iterating this set",
    },
    Allow {
        file: "smt/src/sat/cdcl.rs",
        needle: "remove: &std::collections::HashSet<usize>",
        why: "compact_clauses only probes membership (contains); it iterates \
              the clause arena in index order",
    },
];

/// The only sanctioned raw clock reads: the two `Budget` deadline sites
/// and the `Clock::Monotonic` epoch. Everything else injects `Clock`.
const ALLOW_CLOCK: &[Allow] = &[
    Allow {
        file: "smt/src/budget.rs",
        needle: "Budget { deadline: Instant::now().checked_add(timeout), cancel: None }",
        why: "deadline anchor at budget construction; the one place wall \
              timeouts enter the system (checked_add: overflow = no deadline)",
    },
    Allow {
        file: "smt/src/budget.rs",
        needle: "if Instant::now() >= deadline {",
        why: "the deadline comparison itself; Budget is the clock boundary",
    },
    Allow {
        file: "smt/src/profile.rs",
        needle: "Clock::Monotonic { epoch: Instant::now() }",
        why: "Clock::monotonic()'s epoch; FakeClock substitutes in tests",
    },
];

/// Panic-freedom allowlist: the `tests/lint.rs` unwrap/expect entries
/// migrated verbatim, plus the `panic!`/`unreachable!` sites the wider
/// token set surfaces. Every entry documents the invariant that rules
/// the panic out (or marks a deliberate can't-happen abort).
const ALLOW_PANIC: &[Allow] = &[
    // -- migrated from tests/lint.rs ------------------------------------
    Allow {
        file: "smt/src/simplex/dense.rs",
        needle: "expect(\"entering in row\")",
        why: "pivot coefficients exist by the tableau invariant (audited \
              under certify-debug)",
    },
    Allow {
        file: "smt/src/simplex/dense.rs",
        needle: "expect(\"entering coefficient\")",
        why: "pivot coefficients exist by the tableau invariant (audited \
              under certify-debug)",
    },
    Allow {
        file: "smt/src/simplex/mod.rs",
        needle: "expect(\"backtrack within pushed levels\")",
        why: "the undo trail matches the CDCL push/pop discipline",
    },
    Allow {
        file: "smt/src/simplex/revised.rs",
        needle: "LuError::Singular => panic!(\"revised simplex: singular basis",
        why: "a singular basis means the factored columns stopped matching \
              the tableau invariant — a solver bug, aborted like a failed \
              certification (audited under certify-debug)",
    },
    Allow {
        file: "smt/src/sat/cdcl.rs",
        needle: "let last = self.order.pop().unwrap();",
        why: "heap pop follows a non-emptiness check",
    },
    Allow {
        file: "smt/src/sat/cdcl.rs",
        needle: "let lit = self.trail.pop().unwrap();",
        why: "trail pop follows a non-emptiness check",
    },
    Allow {
        file: "smt/src/sat/cdcl.rs",
        needle: "expect(\"non-decision literal has a reason\")",
        why: "1-UIP invariant: every non-decision trail literal has a reason \
              clause",
    },
    Allow {
        file: "smt/src/sat/cdcl.rs",
        needle: ".unwrap()",
        why: "partial_cmp over clause activities, which are finite f64s",
    },
    Allow {
        file: "smt/src/bigint.rs",
        needle: "b.last().unwrap().leading_zeros()",
        why: "normalized big integers have a nonzero top limb",
    },
    Allow {
        file: "smt/src/bigint.rs",
        needle: "digits.pop().unwrap()",
        why: "the digit buffer always receives at least one digit",
    },
    Allow {
        file: "smt/src/formula.rs",
        needle: "1 => fs.pop().unwrap(),",
        why: "pop inside a len() == 1 match arm",
    },
    Allow {
        file: "smt/src/formula.rs",
        needle: "1 => fs.pop().unwrap(),",
        why: "pop inside a len() == 1 match arm (second constructor)",
    },
    Allow {
        file: "smt/src/cnf.rs",
        needle: "expect(\"non-constant atom\")",
        why: "constant atoms are folded away by the Formula constructors \
              before the encoder can see them",
    },
    Allow {
        file: "core/src/validation.rs",
        needle: "expect(\"connected test system\")",
        why: "built-in test systems have connected topologies (documented \
              panic)",
    },
    Allow {
        file: "core/src/scenario.rs",
        needle: "parts.next().unwrap()",
        why: "split_whitespace on a line already checked to be non-empty \
              yields a first token",
    },
    Allow {
        file: "core/src/attack/verifier.rs",
        needle: "expect(\"test systems have connected topologies\")",
        why: "built-in test systems have connected topologies (documented \
              panic)",
    },
    Allow {
        file: "core/src/analytics.rs",
        needle: "(s.min_measurements.unwrap(), s.min_buses.unwrap_or(0))",
        why: "summaries are only constructed for buses whose minimum was \
              found feasible",
    },
    Allow {
        file: "core/src/analytics.rs",
        needle: "s.min_measurements.unwrap(),",
        why: "summaries are only constructed for buses whose minimum was \
              found feasible",
    },
    Allow {
        file: "core/src/analytics.rs",
        needle: "expect(\"minimum feasible\")",
        why: "summaries are only constructed for buses whose minimum was \
              found feasible",
    },
    // -- new with the wider token set (panic!/unreachable!/todo!) --------
    Allow {
        file: "core/src/attack/batch.rs",
        needle: ".unwrap_or_else(|e| panic!(\"end_scenario without begin_scenario: {e}\"));",
        why: "API-misuse abort: the batch driver owns the begin/end pairing",
    },
    Allow {
        file: "core/src/attack/vector.rs",
        needle: "AttackOutcome::Infeasible => panic!(\"expected a feasible attack\"),",
        why: "documented precondition of the accessor: callers check \
              feasibility first",
    },
    Allow {
        file: "core/src/attack/vector.rs",
        needle: "panic!(\"expected a feasible attack, got unknown ({why})\")",
        why: "documented precondition of the accessor: callers check \
              feasibility first",
    },
    Allow {
        file: "grid/src/synthetic.rs",
        needle: ".unwrap_or_else(|| panic!(\"unsupported IEEE case size {num_buses}\"));",
        why: "documented panic: the case table lists the supported sizes",
    },
    Allow {
        file: "grid/src/synthetic.rs",
        needle: "expect(\"case-table dimensions are valid\")",
        why: "every (buses, lines) pair in IEEE_DIMENSIONS satisfies the \
              generate() preconditions by construction",
    },
    Allow {
        file: "grid/src/caseformat.rs",
        needle: "let keyword = parts.next().unwrap();",
        why: "split_whitespace on a line already checked to be non-empty \
              yields a first token (same invariant as scenario.rs)",
    },
    Allow {
        file: "smt/src/solver.rs",
        needle: "SatResult::Unsat => panic!(\"expected sat, got unsat\"),",
        why: "model accessor with a documented sat precondition",
    },
    Allow {
        file: "smt/src/solver.rs",
        needle: "SatResult::Unknown(why) => panic!(\"expected sat, got unknown ({why})\"),",
        why: "model accessor with a documented sat precondition",
    },
    Allow {
        file: "smt/src/solver.rs",
        needle: "Err(e) => panic!(\"{e}\\nassertions:\\n{}\", self.dump_assertions()),",
        why: "certification failure is a soundness bug: aborting with the \
              assertion dump is the designed response",
    },
    Allow {
        file: "smt/src/solver.rs",
        needle: "Err(e) => panic!(\"{e}\\nassertions:\\n{}\", self.dump_assertions()),",
        why: "certification failure is a soundness bug (unsat-side twin of \
              the entry above)",
    },
    Allow {
        file: "smt/src/solver.rs",
        needle: "ScopeGuard::Lazy => unreachable!(\"lazy guards are resolved above\"),",
        why: "the match arm above the loop resolves all lazy guards",
    },
];

/// JSON-emission allowlist: empty — all emitters go through
/// `sta_smt::json` today, and the rule keeps it that way.
const ALLOW_JSON: &[Allow] = &[];

/// Exact inventory of budget-poll sites in the hot files. Exact-once in
/// both directions: deleting any single poll orphans its entry here and
/// fails the build; adding a poll demands a new reviewed entry.
const POLL_INVENTORY: &[PollSite] = &[
    // cdcl.rs: the main search loop polls per-conflict, the restart path
    // re-checks before a long propagation burst, and clause-DB reduction
    // polls before the sort.
    ("smt/src/sat/cdcl.rs", "if let Some(why) = self.budget.exhausted() {"),
    ("smt/src/sat/cdcl.rs", "self.budget.exhausted().unwrap_or(Interrupt::Timeout);"),
    ("smt/src/sat/cdcl.rs", "if let Some(why) = self.budget.exhausted() {"),
    // simplex: each engine's pivot loop polls every 16 iterations, and the
    // revised engine additionally threads a poll closure into the sparse
    // factor/solve kernels (which stride their own polling internally).
    ("smt/src/simplex/dense.rs", "if limited && iters & 15 == 0 && sh.budget.exhausted().is_some() {"),
    ("smt/src/simplex/revised.rs", "let mut poll = move || kernel_limited && kernel_budget.exhausted().is_some();"),
    ("smt/src/simplex/revised.rs", "if limited && iters & 15 == 0 && sh.budget.exhausted().is_some() {"),
    // cnf.rs: the encoder's own poll helper plus its five recursion-depth
    // call sites (the PR 3 fix).
    ("smt/src/cnf.rs", "if let Some(why) = self.budget.exhausted() {"),
    ("smt/src/cnf.rs", "self.poll()?;"),
    ("smt/src/cnf.rs", "self.poll()?;"),
    ("smt/src/cnf.rs", "self.poll()?;"),
    ("smt/src/cnf.rs", "self.poll()?;"),
    ("smt/src/cnf.rs", "self.poll()?;"),
];

/// The workspace configuration `sta lint` and `tests/lint.rs` run with.
pub fn default_config() -> Config {
    Config {
        roots: ROOTS,
        determinism_paths: DETERMINISM_PATHS,
        hot_files: HOT_FILES,
        json_exempt: JSON_EXEMPT,
        allow_determinism: ALLOW_DETERMINISM,
        allow_clock: ALLOW_CLOCK,
        allow_panic: ALLOW_PANIC,
        allow_json: ALLOW_JSON,
        poll_inventory: POLL_INVENTORY,
    }
}
