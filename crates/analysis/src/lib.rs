//! In-tree invariant analyzer for the `sta` workspace.
//!
//! The paper's guarantees rest on source-level disciplines that earlier
//! PRs established one at a time: byte-identical timing-stripped reports
//! across worker counts (determinism), all report timing routed through
//! `Clock` (testable time), every solver hot loop polling `Budget`
//! (interruptibility), and no panics on the trusted path. Each was
//! enforced only by spot tests or convention — and the encoder bug PR 3
//! fixed is exactly what happens when a convention has no checker. This
//! crate checks them mechanically over the whole workspace.
//!
//! The design is two layers:
//!
//! * [`lexer`] — a dependency-free, line-aware Rust lexer producing
//!   aligned per-line *views* of a source file: code with comments
//!   stripped and string contents blanked, comment text, raw string
//!   contents, and the `#[cfg(test)]` boundary. Rules never see tokens
//!   inside strings or comments.
//! * [`rules`] — the rule engine: five rules with per-rule scopes and
//!   exact-match allowlists (every entry must match exactly one current
//!   occurrence, so stale entries fail too — the `tests/lint.rs`
//!   convention), plus a pinned inventory of budget-poll sites.
//!
//! [`config`] pins the workspace's configuration. The whole thing runs
//! three ways: `sta lint` (CLI, table or `--json`), `tests/lint.rs`
//! (tier-1, plain `cargo test`), and `verify.sh`/CI (findings gate and
//! artifact). Findings are fully sorted and the JSON emitter goes
//! through `sta_smt::json`, so equal trees produce byte-equal reports.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use sta_smt::json;
use sta_smt::tablefmt::{Align, Table};

pub use config::default_config;
pub use rules::{analyze_sources, Allow, Config, Finding};

/// The JSON schema tag `sta lint --json` emits.
pub const JSON_SCHEMA: &str = "sta-lint/v1";

/// The result of one analyzer run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings, sorted by (rule, file, line, message).
    pub findings: Vec<Finding>,
    /// How many `.rs` sources were scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the findings as an aligned table (empty string when
    /// clean; callers print their own summary line).
    pub fn table(&self) -> String {
        if self.findings.is_empty() {
            return String::new();
        }
        let mut t = Table::new(&[
            ("rule", Align::Left),
            ("location", Align::Left),
            ("finding", Align::Left),
        ]);
        for f in &self.findings {
            let loc = if f.line == 0 {
                f.file.clone()
            } else {
                format!("{}:{}", f.file, f.line)
            };
            t.row(&[f.rule, &loc, &f.message]);
        }
        t.render()
    }

    /// Renders the findings as deterministic single-line-per-finding
    /// JSON. Equal analyses produce byte-equal output.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"");
        out.push_str(JSON_SCHEMA);
        out.push_str("\",\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"rule\":");
            json::escape_into(f.rule, &mut out);
            out.push_str(",\"file\":");
            json::escape_into(&f.file, &mut out);
            out.push_str(",\"line\":");
            out.push_str(&f.line.to_string());
            out.push_str(",\"snippet\":");
            json::escape_into(&f.snippet, &mut out);
            out.push_str(",\"message\":");
            json::escape_into(&f.message, &mut out);
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Renders ready-to-paste `Allow { .. }` skeletons for every
    /// rule-violation finding (the `--fix-allowlist` output). Stale
    /// allowlist and inventory findings get removal hints instead.
    pub fn fix_suggestions(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.rule == rules::RULE_ALLOWLIST || f.line == 0 {
                out.push_str(&format!("// {}: {} — {}\n", f.file, f.snippet, f.message));
                continue;
            }
            out.push_str(&format!(
                "// {}:{}\nAllow {{\n    file: ",
                f.file, f.line
            ));
            json::escape_into(last_suffix(&f.file), &mut out);
            out.push_str(",\n    needle: ");
            json::escape_into(&f.snippet, &mut out);
            out.push_str(",\n    why: \"TODO: document the invariant\",\n},\n");
        }
        out
    }
}

/// Shortens `crates/smt/src/simplex.rs` to the `smt/src/simplex.rs`
/// suffix form the allowlists use.
fn last_suffix(file: &str) -> &str {
    file.strip_prefix("crates/").unwrap_or(file)
}

/// Runs the workspace's pinned configuration over the tree at `root`.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    analyze_with(&config::default_config(), root)
}

/// Runs `config` over the tree at `root`: walks the configured roots,
/// reads every `.rs` file, and analyzes in sorted path order.
pub fn analyze_with(cfg: &Config, root: &Path) -> Result<Analysis, String> {
    let mut files: Vec<(String, String)> = Vec::new();
    for r in cfg.roots {
        let dir = root.join(r);
        if !dir.is_dir() {
            return Err(format!("missing analysis root {} under {}", r, root.display()));
        }
        let mut paths = Vec::new();
        rust_files(&dir, &mut paths)?;
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            // Roots can nest (`src` vs `src/bin`): keep first occurrence.
            if files.iter().any(|(f, _)| *f == rel) {
                continue;
            }
            let text = fs::read_to_string(&p)
                .map_err(|e| format!("read {}: {e}", p.display()))?;
            files.push((rel, text));
        }
    }
    if files.is_empty() {
        return Err(format!("no sources found under {}", root.display()));
    }
    let files_scanned = files.len();
    let findings = rules::analyze_sources(cfg, &files);
    Ok(Analysis { findings, files_scanned })
}

/// Collects `.rs` files under `dir` recursively, sorted for
/// deterministic scan order. Directories named `tests` are skipped —
/// the rules govern shipped library and binary code.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "tests") {
                continue;
            }
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_schema_tagged_and_parses() {
        let a = Analysis {
            findings: vec![Finding {
                rule: rules::RULE_PANIC,
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                snippet: "q().unwrap();".into(),
                message: "potential panic".into(),
            }],
            files_scanned: 1,
        };
        let text = a.to_json();
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some(JSON_SCHEMA));
        assert_eq!(doc.get("files_scanned").and_then(|n| n.as_u64()), Some(1));
        let arr = doc.get("findings").and_then(|f| f.as_arr()).expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("line").and_then(|n| n.as_u64()), Some(3));
        // Byte-determinism of the emitter itself.
        assert_eq!(text, a.to_json());
    }

    #[test]
    fn table_lists_each_finding() {
        let a = Analysis {
            findings: vec![Finding {
                rule: rules::RULE_CLOCK,
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                snippet: "Instant::now()".into(),
                message: "bare clock read".into(),
            }],
            files_scanned: 1,
        };
        let t = a.table();
        assert!(t.contains("clock"), "{t}");
        assert!(t.contains("crates/x/src/lib.rs:9"), "{t}");
    }

    #[test]
    fn fix_suggestions_render_allow_skeletons() {
        let a = Analysis {
            findings: vec![Finding {
                rule: rules::RULE_PANIC,
                file: "crates/smt/src/simplex.rs".into(),
                line: 3,
                snippet: "q().unwrap();".into(),
                message: "potential panic".into(),
            }],
            files_scanned: 1,
        };
        let s = a.fix_suggestions();
        assert!(s.contains("Allow {"), "{s}");
        assert!(s.contains("\"smt/src/simplex.rs\""), "{s}");
        assert!(s.contains("q().unwrap();"), "{s}");
    }
}
