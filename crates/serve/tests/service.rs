//! End-to-end service tests: protocol robustness, LRU cache behaviour,
//! response determinism, deadline recovery, and graceful drain — each
//! against a real server on its own unix socket (TCP loopback off-unix).

use sta_core::attack::{AttackModel, StateTarget};
use sta_core::scenario;
use sta_grid::BusId;
use sta_serve::bench::unique_listen_addr;
use sta_serve::net;
use sta_serve::server::{spawn, ServeConfig, ServerHandle};
use sta_serve::client;
use sta_smt::json::{escape_into, parse, Json};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn boot(tag: &str, jobs: usize, max_sessions: usize) -> ServerHandle {
    let mut config = ServeConfig::new(unique_listen_addr(tag));
    config.jobs = jobs;
    config.max_sessions = max_sessions;
    spawn(config).expect("server boots")
}

fn str_at<'j>(json: &'j Json, path: &[&str]) -> Option<&'j str> {
    let mut cur = json;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_str()
}

fn u64_at(json: &Json, path: &[&str]) -> Option<u64> {
    let mut cur = json;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_u64()
}

/// Builds a verify request line with an inline scenario built from a
/// model (round-tripped through the scenario grammar).
fn verify_line(id: &str, case: &str, model: Option<&AttackModel>, extra: &str) -> String {
    let mut line = String::from("{\"id\":");
    escape_into(id, &mut line);
    line.push_str(",\"op\":\"verify\",\"case\":");
    escape_into(case, &mut line);
    if let Some(model) = model {
        line.push_str(",\"scenario\":");
        escape_into(&scenario::write(model), &mut line);
    }
    line.push_str(extra);
    line.push('}');
    line
}

fn final_json(lines: &[String]) -> Json {
    let last = lines.last().expect("non-empty reply");
    parse(last).expect("final line parses")
}

#[test]
fn malformed_lines_get_errors_not_disconnects() {
    let handle = boot("proto", 2, 2);
    let stream = net::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let mut ask = |line: &str| -> Json {
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
        stream.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        parse(reply.trim()).expect("reply parses")
    };

    // Malformed JSON: structured parse error with a null id.
    let err = ask("this is not json");
    assert_eq!(str_at(&err, &["type"]), Some("error"));
    assert_eq!(str_at(&err, &["error"]), Some("parse"));
    assert!(matches!(err.get("id"), Some(Json::Null)));

    // Unknown op: error echoes the id.
    let err = ask("{\"id\":\"u1\",\"op\":\"fly\"}");
    assert_eq!(str_at(&err, &["error"]), Some("unknown-op"));
    assert_eq!(str_at(&err, &["id"]), Some("u1"));

    // Missing id: bad-request.
    let err = ask("{\"op\":\"ping\"}");
    assert_eq!(str_at(&err, &["error"]), Some("bad-request"));

    // Unknown case: bad-request from the job path, id preserved.
    let err = ask("{\"id\":\"u2\",\"op\":\"verify\",\"case\":\"ieee9000\"}");
    assert_eq!(str_at(&err, &["error"]), Some("bad-request"));
    assert_eq!(str_at(&err, &["id"]), Some("u2"));

    // The connection survived all of it.
    let pong = ask("{\"id\":\"p\",\"op\":\"ping\"}");
    assert_eq!(str_at(&pong, &["type"]), Some("response"));
    assert_eq!(str_at(&pong, &["op"]), Some("ping"));

    handle.stop().expect("clean shutdown");
}

#[test]
fn session_cache_thrashes_at_capacity_one_and_warms_on_repeat() {
    let handle = boot("lru", 1, 1);
    let session_of = |lines: &[String]| -> String {
        str_at(&final_json(lines), &["timing", "session"]).expect("session tag").to_string()
    };

    let a1 = client::request(handle.addr(), &verify_line("a1", "ieee14", None, ""))
        .expect("first ieee14");
    assert_eq!(session_of(&a1), "miss", "cold start");
    let a2 = client::request(handle.addr(), &verify_line("a2", "ieee14", None, ""))
        .expect("second ieee14");
    assert_eq!(session_of(&a2), "hit", "repeat is warm");
    let b1 = client::request(handle.addr(), &verify_line("b1", "ieee14-unsecured", None, ""))
        .expect("unsecured");
    assert_eq!(session_of(&b1), "miss", "different case is cold and evicts");
    let a3 = client::request(handle.addr(), &verify_line("a3", "ieee14", None, ""))
        .expect("third ieee14");
    assert_eq!(session_of(&a3), "miss", "capacity 1 thrashes on alternation");

    let stats = final_json(
        &client::request(handle.addr(), "{\"id\":\"s\",\"op\":\"stats\"}").expect("stats"),
    );
    assert_eq!(u64_at(&stats, &["sessions", "capacity"]), Some(1));
    assert_eq!(u64_at(&stats, &["sessions", "live"]), Some(1));
    assert_eq!(u64_at(&stats, &["sessions", "hits"]), Some(1));
    assert_eq!(u64_at(&stats, &["sessions", "misses"]), Some(3));
    assert_eq!(u64_at(&stats, &["sessions", "evictions"]), Some(2));

    handle.stop().expect("clean shutdown");
}

/// The determinism contract: with `"timing":false`, responses depend only
/// on the request — not on worker count, scheduling, or whether the
/// session cache was warm. Three concurrent clients each repeat their
/// request; bytes must match within a server (cold vs warm) and across
/// servers with different `--jobs`.
#[test]
fn timing_stripped_responses_are_byte_identical_across_jobs_and_warmth() {
    let requests: Vec<(String, String)> = vec![
        (
            "open".to_string(),
            verify_line(
                "open",
                "ieee14",
                Some(&AttackModel::new(14).target(BusId(11), StateTarget::MustChange)),
                ",\"timing\":false",
            ),
        ),
        (
            "blocked".to_string(),
            verify_line(
                "blocked",
                "ieee14",
                Some(&AttackModel::new(14).max_altered_measurements(0)),
                ",\"timing\":false",
            ),
        ),
        (
            "capped".to_string(),
            verify_line(
                "capped",
                "ieee14",
                Some(
                    &AttackModel::new(14)
                        .target(BusId(7), StateTarget::MustChange)
                        .max_altered_measurements(10),
                ),
                ",\"timing\":false",
            ),
        ),
    ];

    let mut per_jobs: Vec<BTreeMap<String, String>> = Vec::new();
    for jobs in [1usize, 4] {
        let handle = boot(&format!("det{jobs}"), jobs, 4);
        let results: Arc<Mutex<BTreeMap<String, String>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        std::thread::scope(|scope| {
            for (name, line) in &requests {
                let addr = handle.addr().to_string();
                let results = Arc::clone(&results);
                scope.spawn(move || {
                    let first = client::request(&addr, line).expect("first send");
                    let second = client::request(&addr, line).expect("second send");
                    let first = first.last().expect("reply").clone();
                    let second = second.last().expect("reply").clone();
                    assert_eq!(first, second, "{name}: warm repeat must match cold bytes");
                    results.lock().expect("results").insert(name.clone(), first);
                });
            }
        });
        per_jobs.push(Arc::try_unwrap(results).expect("threads done").into_inner().expect("lock"));
        handle.stop().expect("clean shutdown");
    }
    assert_eq!(per_jobs[0], per_jobs[1], "responses must not depend on worker count");
    assert!(per_jobs[0]["open"].contains("\"verdict\":\"sat\""));
    assert!(per_jobs[0]["open"].contains("\"witness\""));
    assert!(per_jobs[0]["blocked"].contains("\"verdict\":\"unsat\""));
    for line in per_jobs[0].values() {
        assert!(!line.contains("\"timing\""), "timing must be stripped: {line}");
    }
}

#[test]
fn expired_deadline_reports_unknown_and_leaves_the_session_usable() {
    let handle = boot("deadline", 2, 2);
    let doomed = client::request(
        handle.addr(),
        &verify_line("doomed", "ieee14", None, ",\"timeout_ms\":0"),
    )
    .expect("doomed request completes");
    let doomed = final_json(&doomed);
    assert_eq!(str_at(&doomed, &["verdict"]), Some("unknown(timeout)"));

    // The same key must still verify — warm, and conclusively.
    let retry = client::request(handle.addr(), &verify_line("retry", "ieee14", None, ""))
        .expect("retry completes");
    let retry = final_json(&retry);
    assert_eq!(str_at(&retry, &["verdict"]), Some("sat"));
    assert_eq!(
        str_at(&retry, &["timing", "session"]),
        Some("hit"),
        "the timed-out session must be reused, not discarded"
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn huge_timeout_ms_is_no_deadline_not_a_worker_panic() {
    // Regression: "timeout_ms": u64::MAX used to overflow Instant
    // arithmetic in Budget::with_timeout and panic the worker thread,
    // killing the request. It must behave as "no deadline".
    let handle = boot("hugetimeout", 2, 2);
    let reply = client::request(
        handle.addr(),
        &verify_line("huge", "ieee14", None, ",\"timeout_ms\":18446744073709551615"),
    )
    .expect("request with overflowing timeout completes");
    let reply = final_json(&reply);
    assert_eq!(str_at(&reply, &["type"]), Some("response"));
    assert_eq!(str_at(&reply, &["verdict"]), Some("sat"));
    handle.stop().expect("clean shutdown");
}

#[test]
fn trace_lines_interleave_before_the_response() {
    let handle = boot("trace", 2, 2);
    let lines = client::request(
        handle.addr(),
        &verify_line("tr", "ieee14", None, ",\"trace\":true"),
    )
    .expect("traced request");
    assert!(lines.len() > 1, "expected trace lines before the response");
    for line in &lines[..lines.len() - 1] {
        let json = parse(line).expect("trace line parses");
        assert_eq!(str_at(&json, &["type"]), Some("trace"));
        assert_eq!(str_at(&json, &["id"]), Some("tr"));
        assert!(json.get("event").is_some());
    }
    assert_eq!(str_at(&final_json(&lines), &["type"]), Some("response"));
    handle.stop().expect("clean shutdown");
}

/// Acceptance: a `trace:true` campaign streams per-job progress live —
/// request-tagged trace lines (job brackets, phase counters, heartbeats)
/// arrive before the final response, and each job's event batch stays
/// contiguous even with four workers racing to emit.
#[test]
fn traced_campaign_streams_per_job_progress_before_the_response() {
    let handle = boot("campstream", 4, 2);
    let lines = client::request(
        handle.addr(),
        "{\"id\":\"camp\",\"op\":\"campaign\",\"case\":\"ieee14\",\"workers\":4,\"trace\":true,\"timing\":false}",
    )
    .expect("traced campaign");
    assert!(lines.len() > 10, "expected a stream of trace lines, got {}", lines.len());

    let final_line = final_json(&lines);
    assert_eq!(str_at(&final_line, &["type"]), Some("response"));
    assert_eq!(str_at(&final_line, &["op"]), Some("campaign"));

    let mut heartbeats = 0u32;
    let mut job_starts = 0u32;
    let mut job_ends = 0u32;
    // Per-job contiguity: batches are emitted under one sink critical
    // section, so once a job's lines begin, no other job's lines may
    // interleave until its job-end.
    let mut open_job: Option<u64> = None;
    let mut seen_jobs = Vec::new();
    for line in &lines[..lines.len() - 1] {
        let json = parse(line).expect("trace line parses");
        assert_eq!(str_at(&json, &["type"]), Some("trace"), "non-trace line {line}");
        assert_eq!(str_at(&json, &["id"]), Some("camp"), "line not request-tagged: {line}");
        let event = str_at(&json, &["event", "event"]).expect("event kind");
        match event {
            "heartbeat" => {
                heartbeats += 1;
                assert_eq!(u64_at(&json, &["event", "total"]), Some(32));
            }
            "job-start" => {
                let job = u64_at(&json, &["event", "job"]).expect("job id");
                assert_eq!(open_job, None, "job {job} started inside another batch");
                assert!(!seen_jobs.contains(&job), "job {job} started twice");
                seen_jobs.push(job);
                open_job = Some(job);
                job_starts += 1;
            }
            "phase" => {
                let job = u64_at(&json, &["event", "job"]).expect("job id");
                assert_eq!(open_job, Some(job), "phase of job {job} outside its batch");
            }
            "job-end" => {
                let job = u64_at(&json, &["event", "job"]).expect("job id");
                assert_eq!(open_job, Some(job), "end of job {job} outside its batch");
                open_job = None;
                job_ends += 1;
            }
            "run-start" | "run-end" => {
                assert_eq!(open_job, None, "{event} inside a job batch");
            }
            other => panic!("unexpected event {other:?} in {line}"),
        }
    }
    assert_eq!(job_starts, 32, "every sweep job must announce itself");
    assert_eq!(job_ends, 32);
    assert!(heartbeats >= 1, "at least the immediate heartbeat must stream");
    handle.stop().expect("clean shutdown");
}

/// Acceptance: with telemetry enabled (the default), a `"timing":false`
/// campaign response is byte-identical across worker counts — the
/// measurement plane observes and never perturbs.
#[test]
fn timing_stripped_campaign_bytes_match_across_worker_counts() {
    let line = "{\"id\":\"det\",\"op\":\"campaign\",\"case\":\"ieee14\",\"workers\":4,\"timing\":false}";
    let mut finals = Vec::new();
    for jobs in [1usize, 4] {
        let handle = boot(&format!("campdet{jobs}"), jobs, 2);
        let lines = client::request(handle.addr(), line).expect("campaign");
        finals.push(lines.last().expect("reply").clone());
        handle.stop().expect("clean shutdown");
    }
    assert_eq!(finals[0], finals[1], "campaign bytes must not depend on worker count");
    assert!(!finals[0].contains("\"timing\""));
}

/// Satellite: the registry counts exactly — concurrent clients hammering
/// different ops lose no increments, and the `metrics` op reports the
/// precise totals.
#[test]
fn concurrent_clients_are_counted_exactly() {
    let handle = boot("exact", 2, 2);
    const CLIENTS: usize = 8;
    const PINGS: usize = 25;
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let addr = handle.addr().to_string();
            scope.spawn(move || {
                for i in 0..PINGS {
                    let reply = client::request(&addr, &format!("{{\"id\":\"p{i}\",\"op\":\"ping\"}}"))
                        .expect("ping");
                    assert!(reply.last().expect("line").contains("\"ok\":true"));
                }
            });
        }
    });
    let metrics = final_json(
        &client::request(handle.addr(), "{\"id\":\"m\",\"op\":\"metrics\"}").expect("metrics"),
    );
    assert_eq!(str_at(&metrics, &["metrics", "schema"]), Some("sta-metrics/v1"));
    assert_eq!(
        u64_at(&metrics, &["metrics", "ops", "ping", "requests"]),
        Some((CLIENTS * PINGS) as u64),
        "ping count must be exact under concurrency"
    );
    assert_eq!(u64_at(&metrics, &["metrics", "ops", "metrics", "requests"]), Some(1));
    handle.stop().expect("clean shutdown");
}

/// Satellite: a `watch` subscription streams tagged snapshots at its
/// cadence, and a drain terminates it honestly — one final `response`
/// line carrying the last snapshot, not a dropped connection.
#[test]
fn watch_streams_snapshots_and_drain_sends_a_final_one() {
    let handle = boot("watch", 2, 2);
    let addr = handle.addr().to_string();
    let collector = std::thread::spawn(move || {
        let mut seen = Vec::new();
        let final_line = client::stream(
            &addr,
            "{\"id\":\"w\",\"op\":\"watch\",\"interval_ms\":50}",
            |line| {
                seen.push(line.to_string());
                true
            },
        );
        (seen, final_line)
    });
    // Let a few snapshots stream, then drain.
    std::thread::sleep(Duration::from_millis(180));
    handle.stop().expect("clean shutdown");
    let (seen, final_line) = collector.join().expect("collector thread");

    assert!(seen.len() >= 2, "expected streamed snapshots, got {}", seen.len());
    for (i, line) in seen.iter().enumerate() {
        let json = parse(line).expect("watch line parses");
        assert_eq!(str_at(&json, &["type"]), Some("watch"));
        assert_eq!(str_at(&json, &["id"]), Some("w"));
        assert_eq!(u64_at(&json, &["seq"]), Some(i as u64), "gapless sequence");
        assert_eq!(str_at(&json, &["metrics", "schema"]), Some("sta-metrics/v1"));
    }
    let final_line = final_line.expect("stream ends cleanly").expect("final response");
    let json = parse(&final_line).expect("final line parses");
    assert_eq!(str_at(&json, &["type"]), Some("response"));
    assert_eq!(str_at(&json, &["op"]), Some("watch"));
    assert!(matches!(json.get("draining"), Some(Json::Bool(true))));
    assert_eq!(
        str_at(&json, &["final_snapshot", "schema"]),
        Some("sta-metrics/v1"),
        "drain must carry a last snapshot"
    );
}

/// Satellite: the Prometheus rendering travels inside the JSONL envelope
/// and unwraps to a well-formed text exposition.
#[test]
fn prometheus_format_unwraps_to_text_exposition() {
    let handle = boot("prom", 2, 2);
    client::request(handle.addr(), &verify_line("v", "ieee14", None, ""))
        .expect("verify to move counters");
    let reply = final_json(
        &client::request(
            handle.addr(),
            "{\"id\":\"m\",\"op\":\"metrics\",\"format\":\"prometheus\"}",
        )
        .expect("metrics"),
    );
    assert_eq!(str_at(&reply, &["format"]), Some("prometheus"));
    let body = str_at(&reply, &["body"]).expect("exposition body");
    assert!(body.starts_with("# HELP "), "{body}");
    assert!(body.contains("sta_requests_total{op=\"verify\"} 1"), "{body}");
    assert!(body.contains("# TYPE sta_uptime_seconds gauge"), "{body}");

    // Unknown format is a bad request, not a disconnect.
    let err = final_json(
        &client::request(
            handle.addr(),
            "{\"id\":\"m2\",\"op\":\"metrics\",\"format\":\"xml\"}",
        )
        .expect("error reply"),
    );
    assert_eq!(str_at(&err, &["error"]), Some("bad-request"));
    handle.stop().expect("clean shutdown");
}

#[test]
fn graceful_drain_finishes_or_cancels_inflight_and_refuses_new_work() {
    let handle = boot("drain", 2, 2);

    // Park a long request in flight on its own connection.
    let stream = net::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let long = verify_line("long", "ieee57", None, "");
    stream.write_all(long.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(150));

    // Drain with a tight window: the in-flight job either finishes
    // naturally or is cancelled past the deadline — never orphaned.
    let reply = client::request(
        handle.addr(),
        "{\"id\":\"sd\",\"op\":\"shutdown\",\"drain_ms\":50}",
    )
    .expect("shutdown answered");
    let reply = final_json(&reply);
    assert_eq!(str_at(&reply, &["op"]), Some("shutdown"));
    assert!(matches!(reply.get("ok"), Some(Json::Bool(true))));

    // The parked client still got its final line.
    let mut line = String::new();
    reader.read_line(&mut line).expect("in-flight response arrives");
    let json = parse(line.trim()).expect("response parses");
    let verdict = str_at(&json, &["verdict"]).expect("has verdict").to_string();
    assert!(
        verdict == "sat" || verdict == "unsat" || verdict == "unknown(cancelled)",
        "unexpected drain verdict {verdict:?}"
    );

    // The listener is gone: new connections fail outright or are closed
    // without an answer.
    match client::request(handle.addr(), "{\"id\":\"p\",\"op\":\"ping\"}") {
        Err(_) => {}
        Ok(lines) => panic!("post-drain request must not be served, got {lines:?}"),
    }
}
