//! The `serve` bench suite: warm-vs-cold request latency.
//!
//! Each repetition boots a fresh in-process server on a unique unix
//! socket (TCP loopback off-unix), sends the same verify request twice
//! through the real client path, and records both round trips: the first
//! request pays the cold path (case load, operating point, base
//! encoding), the second hits the warm session cache and pays only the
//! scenario delta. The suite emits the standard `sta-bench/v1` artifact
//! (two jobs, `cold-verify` and `warm-verify`) so the perf-trajectory
//! diff machinery — `sta bench --baseline/--against` — covers the
//! service layer too. Warm beating cold by a wide margin is the whole
//! point of the session cache; `verify.sh` asserts it on medians.
//!
//! A third job, `warm-verify-notelemetry`, repeats the warm measurement
//! against a server booted with `telemetry: false` — the same load with
//! histogram recording off. The telemetry-on/off medians price the
//! measurement plane itself, and `verify.sh` gates that the overhead
//! stays within a small bound.

use crate::client;
use crate::server::{spawn, ServeConfig};
use sta_campaign::bench::{BenchEnv, BenchResult, JobMeasurement, SCHEMA};
use sta_smt::json::{parse, Json};
use sta_smt::Clock;
use std::sync::atomic::{AtomicU64, Ordering};

/// A collision-free listen address for throwaway servers: a unix socket
/// path under the temp dir, unique per process and call (PID plus an
/// in-process counter — no wall-clock entropy, so reruns are stable).
/// On platforms without unix sockets, a kernel-assigned TCP port.
pub fn unique_listen_addr(tag: &str) -> String {
    if !cfg!(unix) {
        return "127.0.0.1:0".to_string();
    }
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir()
        .join(format!("sta-serve-{}-{tag}-{n}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Median of `samples` (even lengths average the middle pair), matching
/// the campaign bench's convention.
fn median(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

/// One measured round trip: client-side wall plus the server-reported
/// phase split and verdict.
struct Sample {
    wall_us: u64,
    encode_us: u64,
    search_us: u64,
    verdict: String,
}

fn round_trip(clock: &Clock, addr: &str, line: &str) -> Result<Sample, String> {
    let t0 = clock.now();
    let lines = client::request(addr, line)?;
    let wall_us = clock.now().saturating_sub(t0).as_micros() as u64;
    let last = lines.last().ok_or("empty reply")?;
    let json = parse(last).map_err(|e| format!("unparsable response: {e}"))?;
    let verdict = json
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("response has no verdict: {last}"))?
        .to_string();
    let timing = json.get("timing").ok_or_else(|| format!("response has no timing: {last}"))?;
    let us = |key: &str| timing.get(key).and_then(Json::as_u64).unwrap_or(0);
    Ok(Sample { wall_us, encode_us: us("encode_us"), search_us: us("search_us"), verdict })
}

/// Runs the suite: `reps` boot/cold/warm/shutdown cycles on a server with
/// `jobs` workers, medians per temperature.
pub fn run_serve_suite(reps: usize, jobs: usize) -> Result<BenchResult, String> {
    let reps = reps.max(1);
    let clock = Clock::monotonic();
    let request_line = |rid: &str| {
        format!("{{\"id\":{rid:?},\"op\":\"verify\",\"case\":\"ieee14\",\"timing\":true}}")
    };
    let mut cold = Vec::with_capacity(reps);
    let mut warm = Vec::with_capacity(reps);
    let mut warm_off = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut config = ServeConfig::new(unique_listen_addr(&format!("bench{rep}")));
        config.jobs = jobs.max(1);
        let handle = spawn(config)?;
        let cold_sample = round_trip(&clock, handle.addr(), &request_line("cold"));
        let warm_sample = round_trip(&clock, handle.addr(), &request_line("warm"));
        handle.stop()?;
        cold.push(cold_sample?);
        warm.push(warm_sample?);
        // The overhead pair: the identical warm request against a server
        // with histogram recording disabled.
        let mut config = ServeConfig::new(unique_listen_addr(&format!("benchoff{rep}")));
        config.jobs = jobs.max(1);
        config.telemetry = false;
        let handle = spawn(config)?;
        let prime = round_trip(&clock, handle.addr(), &request_line("cold"));
        let off_sample = round_trip(&clock, handle.addr(), &request_line("warm"));
        handle.stop()?;
        prime?;
        warm_off.push(off_sample?);
    }
    let job = |id: u64, label: &str, samples: &[Sample]| JobMeasurement {
        id,
        label: label.to_string(),
        case: "ieee14".to_string(),
        verdict: samples.first().map(|s| s.verdict.clone()).unwrap_or_default(),
        wall_us: median(&mut samples.iter().map(|s| s.wall_us).collect::<Vec<_>>()),
        encode_us: median(&mut samples.iter().map(|s| s.encode_us).collect::<Vec<_>>()),
        search_us: median(&mut samples.iter().map(|s| s.search_us).collect::<Vec<_>>()),
    };
    Ok(BenchResult {
        schema: SCHEMA.to_string(),
        suite: "serve".to_string(),
        reps: reps as u64,
        workers: jobs.max(1) as u64,
        env: BenchEnv::capture(),
        jobs: vec![
            job(0, "cold-verify", &cold),
            job(1, "warm-verify", &warm),
            job(2, "warm-verify-notelemetry", &warm_off),
        ],
        latency: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_matches_campaign_convention() {
        assert_eq!(median(&mut []), 0);
        assert_eq!(median(&mut [9]), 9);
        assert_eq!(median(&mut [4, 2]), 3);
        assert_eq!(median(&mut [5, 1, 9]), 5);
    }

    #[test]
    fn unique_addrs_do_not_collide() {
        let a = unique_listen_addr("t");
        let b = unique_listen_addr("t");
        if cfg!(unix) {
            assert_ne!(a, b);
        }
    }
}
