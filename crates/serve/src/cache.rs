//! The warm session cache: live solver cores in an LRU checkout cache.
//!
//! A [`VerifySession`] owns everything expensive about a case: the DC
//! operating point, the asserted base encoding, the retained learned
//! clauses and the warmed simplex basis. The service keeps up to
//! `capacity` of them alive, keyed by `(case, topology, certify)` — the
//! three inputs that change the base encoding itself. Scenario deltas do
//! not key the cache; they are exactly what a session absorbs cheaply.
//!
//! The cache hands out *ownership* ([`SessionCache::take`] removes the
//! entry) rather than borrows: the worker that checked a session out is
//! its only user until [`SessionCache::put`] returns it. Two concurrent
//! requests for the same key therefore both make progress — the second
//! simply builds a fresh session and the put-back past capacity evicts
//! the least-recently-used entry. That trades a rebuild under contention
//! for never blocking a worker on another request's solve, and keeps
//! results independent of scheduling (a session always produces the same
//! verdict, warm or cold).

use sta_core::attack::VerifySession;
use sta_smt::CertifyLevel;

/// What a cached session is keyed by: case name (or case-file path),
/// topology-attack encoding, certification level.
pub type SessionKey = (String, bool, CertifyLevel);

/// An LRU checkout cache of live [`VerifySession`]s.
#[derive(Debug)]
pub struct SessionCache {
    /// LRU order: index 0 is the least recently used entry, the back is
    /// the most recent. Linear scans are fine — capacity is single-digit
    /// to low-double-digit (one entry per distinct case configuration).
    entries: Vec<(SessionKey, VerifySession)>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SessionCache {
    /// An empty cache holding at most `capacity` sessions (at least one).
    pub fn new(capacity: usize) -> Self {
        SessionCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Checks the session for `key` out of the cache, transferring
    /// ownership to the caller. Counts a hit or a miss; a miss means the
    /// caller builds a cold session and [`SessionCache::put`]s it back
    /// after use.
    pub fn take(&mut self, key: &SessionKey) -> Option<VerifySession> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                Some(self.entries.remove(i).1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Returns a session to the cache as the most recently used entry,
    /// evicting from the LRU end once past capacity. A session already
    /// cached under the same key (a concurrent rebuild raced this one) is
    /// replaced rather than duplicated.
    pub fn put(&mut self, key: SessionKey, session: VerifySession) {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key, session));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
    }

    /// Sessions currently resident (checked-out sessions are not counted).
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Checkouts that found a warm session.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checkouts that found nothing and forced a cold build.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Sessions dropped by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The resident keys in LRU→MRU order (test observability).
    pub fn keys(&self) -> Vec<SessionKey> {
        self.entries.iter().map(|(k, _)| k.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_grid::ieee14;

    fn key(name: &str) -> SessionKey {
        (name.to_string(), false, CertifyLevel::Off)
    }

    fn session() -> VerifySession {
        let sys = ieee14::system();
        VerifySession::new(&sys, false)
    }

    #[test]
    fn take_put_counts_and_recovers_the_same_session() {
        let mut cache = SessionCache::new(2);
        assert!(cache.take(&key("a")).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.put(key("a"), session());
        assert_eq!(cache.live(), 1);
        assert!(cache.take(&key("a")).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // The session is checked out, not resident.
        assert_eq!(cache.live(), 0);
    }

    #[test]
    fn put_evicts_in_lru_order() {
        let mut cache = SessionCache::new(2);
        cache.put(key("a"), session());
        cache.put(key("b"), session());
        // Touch "a": it becomes most recent, so "b" is now the LRU.
        let s = cache.take(&key("a")).expect("warm");
        cache.put(key("a"), s);
        cache.put(key("c"), session());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(
            cache.keys(),
            vec![key("a"), key("c")],
            "the untouched \"b\" must be the evicted entry"
        );
    }

    #[test]
    fn capacity_one_thrashes_but_never_grows() {
        let mut cache = SessionCache::new(1);
        for name in ["a", "b", "a", "b"] {
            assert!(cache.take(&key(name)).is_none(), "capacity 1 alternation never hits");
            cache.put(key(name), session());
            assert_eq!(cache.live(), 1);
        }
        assert_eq!(cache.evictions(), 3);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn same_key_put_replaces_not_duplicates() {
        let mut cache = SessionCache::new(4);
        cache.put(key("a"), session());
        cache.put(key("a"), session());
        assert_eq!(cache.live(), 1);
        assert_eq!(cache.evictions(), 0);
    }
}
