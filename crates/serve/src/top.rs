//! Terminal rendering for `sta top` and the table modes of `sta client
//! stats`/`metrics`.
//!
//! Everything here is a pure function from a parsed reply JSON to a
//! string: the CLI owns the I/O loop (one `metrics` request for
//! `--once`, a `watch` stream for live mode) and this module turns each
//! snapshot into a dashboard frame via [`sta_smt::tablefmt`]. Keeping
//! the renderer client-side means the wire format stays pure JSON — a
//! scripted consumer and the human dashboard read the same lines.

use sta_smt::json::Json;
use sta_smt::tablefmt::{Align, Table};
use std::fmt::Write as _;

/// ANSI clear-screen-and-home sequence prefixed to live frames.
pub const CLEAR: &str = "\x1b[2J\x1b[H";

/// The fixed op order frames list (mirrors the registry's).
const OPS: [&str; 8] = [
    "ping", "stats", "metrics", "watch", "shutdown", "verify", "synthesize", "campaign",
];

/// `path`-walks a JSON object, returning 0 for anything missing — frames
/// degrade field-by-field rather than failing whole.
fn u64_at(json: &Json, path: &[&str]) -> u64 {
    let mut node = json;
    for key in path {
        match node.get(key) {
            Some(next) => node = next,
            None => return 0,
        }
    }
    node.as_u64().unwrap_or(0)
}

fn bool_at(json: &Json, path: &[&str]) -> bool {
    let mut node = json;
    for key in path {
        match node.get(key) {
            Some(next) => node = next,
            None => return false,
        }
    }
    matches!(node, Json::Bool(true))
}

/// Seconds with one decimal from a microsecond count.
fn secs(us: u64) -> String {
    format!("{:.1}s", us as f64 / 1e6)
}

/// Renders one dashboard frame from a `sta-metrics/v1` object: service
/// header lines (uptime, occupancy, queue, cache temperature, admission
/// totals) followed by the per-op table with latency and queue-wait
/// percentiles.
pub fn render_frame(metrics: &Json) -> String {
    let mut out = String::with_capacity(1024);
    let errors_total: u64 = metrics
        .get("errors")
        .map(|e| {
            [
                "parse",
                "bad-request",
                "unknown-op",
                "overloaded",
                "draining",
                "internal",
            ]
            .iter()
            .map(|k| u64_at(e, &[k]))
            .sum()
        })
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "uptime {} · workers {} busy {} · queue {}/{} · draining {}",
        secs(u64_at(metrics, &["uptime_us"])),
        u64_at(metrics, &["workers"]),
        u64_at(metrics, &["busy"]),
        u64_at(metrics, &["queue_depth"]),
        u64_at(metrics, &["queue_capacity"]),
        if bool_at(metrics, &["draining"]) { "yes" } else { "no" },
    );
    let _ = writeln!(
        out,
        "sessions {}/{} live · hits {} misses {} evictions {}",
        u64_at(metrics, &["sessions", "live"]),
        u64_at(metrics, &["sessions", "capacity"]),
        u64_at(metrics, &["sessions", "hits"]),
        u64_at(metrics, &["sessions", "misses"]),
        u64_at(metrics, &["sessions", "evictions"]),
    );
    let _ = writeln!(
        out,
        "requests {} · rejected {} · cancelled {} · errors {}",
        u64_at(metrics, &["requests"]),
        u64_at(metrics, &["rejected"]),
        u64_at(metrics, &["cancelled"]),
        errors_total,
    );
    let mut table = Table::new(&[
        ("op", Align::Left),
        ("req", Align::Right),
        ("err", Align::Right),
        ("qwait_p90_us", Align::Right),
        ("p50_us", Align::Right),
        ("p90_us", Align::Right),
        ("p99_us", Align::Right),
    ]);
    for op in OPS {
        table.row(&[
            op,
            &u64_at(metrics, &["ops", op, "requests"]).to_string(),
            &u64_at(metrics, &["ops", op, "errors"]).to_string(),
            &u64_at(metrics, &["ops", op, "queue_wait", "p90_us"]).to_string(),
            &u64_at(metrics, &["ops", op, "latency", "p50_us"]).to_string(),
            &u64_at(metrics, &["ops", op, "latency", "p90_us"]).to_string(),
            &u64_at(metrics, &["ops", op, "latency", "p99_us"]).to_string(),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Renders a `stats` response line as the human-readable summary +
/// per-op table `sta client stats` prints by default (`--json` keeps the
/// raw line).
pub fn render_stats(stats: &Json) -> String {
    let mut out = String::with_capacity(768);
    let mut summary = Table::new(&[("stat", Align::Left), ("value", Align::Right)]);
    summary.row(&["uptime", &secs(u64_at(stats, &["uptime_us"]))]);
    summary.row(&["workers", &u64_at(stats, &["workers"]).to_string()]);
    summary.row(&["busy", &u64_at(stats, &["busy"]).to_string()]);
    summary.row(&["pending", &u64_at(stats, &["pending"]).to_string()]);
    summary.row(&["draining", if bool_at(stats, &["draining"]) { "yes" } else { "no" }]);
    summary.row(&["requests", &u64_at(stats, &["requests"]).to_string()]);
    summary.row(&["rejected", &u64_at(stats, &["rejected"]).to_string()]);
    summary.row(&["sessions live", &u64_at(stats, &["sessions", "live"]).to_string()]);
    summary.row(&[
        "sessions capacity",
        &u64_at(stats, &["sessions", "capacity"]).to_string(),
    ]);
    summary.row(&["session hits", &u64_at(stats, &["sessions", "hits"]).to_string()]);
    summary.row(&["session misses", &u64_at(stats, &["sessions", "misses"]).to_string()]);
    summary.row(&[
        "session evictions",
        &u64_at(stats, &["sessions", "evictions"]).to_string(),
    ]);
    out.push_str(&summary.render());
    let mut ops = Table::new(&[
        ("op", Align::Left),
        ("req", Align::Right),
        ("err", Align::Right),
        ("p50_us", Align::Right),
        ("p90_us", Align::Right),
        ("p99_us", Align::Right),
    ]);
    for op in OPS {
        ops.row(&[
            op,
            &u64_at(stats, &["ops", op, "requests"]).to_string(),
            &u64_at(stats, &["ops", op, "errors"]).to_string(),
            &u64_at(stats, &["ops", op, "p50_us"]).to_string(),
            &u64_at(stats, &["ops", op, "p90_us"]).to_string(),
            &u64_at(stats, &["ops", op, "p99_us"]).to_string(),
        ]);
    }
    out.push_str(&ops.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricOp, MetricsRegistry, ServiceGauges};
    use sta_smt::json::parse;
    use std::time::Duration;

    #[test]
    fn frame_renders_all_ops_and_header_gauges() {
        let reg = MetricsRegistry::new(true, Duration::ZERO);
        reg.record_request(MetricOp::Verify);
        reg.record_latency(MetricOp::Verify, Duration::from_micros(300));
        let snap = reg.snapshot(
            Duration::from_secs(2),
            ServiceGauges {
                workers: 4,
                queue_depth: 1,
                queue_capacity: 32,
                requests: 5,
                sessions_live: 2,
                sessions_capacity: 8,
                session_hits: 1,
                session_misses: 2,
                ..ServiceGauges::default()
            },
        );
        let doc = parse(&snap.to_json()).expect("snapshot JSON");
        let frame = render_frame(&doc);
        assert!(frame.contains("uptime 2.0s"), "{frame}");
        assert!(frame.contains("workers 4"), "{frame}");
        assert!(frame.contains("queue 1/32"), "{frame}");
        assert!(frame.contains("sessions 2/8 live"), "{frame}");
        for op in OPS {
            assert!(frame.contains(op), "missing op row {op}: {frame}");
        }
        // The verify row shows its one sample's exact latency.
        let verify_row = frame.lines().find(|l| l.starts_with("verify")).expect("row");
        assert!(verify_row.contains("300"), "{verify_row}");
    }

    #[test]
    fn malformed_input_degrades_to_zeros() {
        let doc = parse("{\"schema\":\"sta-metrics/v1\"}").expect("parses");
        let frame = render_frame(&doc);
        assert!(frame.contains("uptime 0.0s"));
        assert!(frame.contains("requests 0"));
        let stats = render_stats(&doc);
        assert!(stats.contains("workers"));
    }
}
