//! The JSONL request/response grammar.
//!
//! One JSON object per line in both directions. Requests carry a caller
//! `id` echoed on every line the service emits for them, so responses and
//! trace events from concurrent requests can interleave on one
//! connection without ambiguity:
//!
//! ```text
//! → {"id":"r1","op":"verify","case":"ieee14","scenario":"target-state 12\n"}
//! ← {"id":"r1","type":"response","op":"verify","verdict":"sat","witness":{...},"timing":{...}}
//! ```
//!
//! Response lines come in four `type`s: `response` (the final answer),
//! `error` (the final answer when the request failed), `trace`
//! (observational events preceding the response when the request set
//! `"trace":true`), and `watch` (periodic telemetry snapshots of a
//! `watch` subscription, which still ends with a final `response`
//! line). Deterministic payload keys always precede the
//! `timing` object, which is omitted entirely under `"timing":false` —
//! the byte-determinism contract the service tests pin down.
//!
//! Parsing is strict about shape (`id` and `op` are required strings)
//! but lenient about extras: unknown keys are ignored so clients can
//! annotate requests freely.

use sta_smt::json::{escape_into, parse, Json};
use sta_smt::{CertifyLevel, TraceEvent};

/// Stable error tokens of the `error` response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not valid JSON. The connection stays open.
    Parse,
    /// The request was structurally valid JSON but semantically broken
    /// (missing fields, unknown case, unparsable scenario).
    BadRequest,
    /// The `op` is not one the service speaks.
    UnknownOp,
    /// Admission control rejected the request: the bounded queue is full.
    Overloaded,
    /// The service is draining toward shutdown and accepts no new work.
    Draining,
    /// The service failed internally (e.g. the connection broke mid-write).
    Internal,
}

impl ErrorKind {
    /// The stable lowercase token used on the wire.
    pub fn token(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::UnknownOp => "unknown-op",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Draining => "draining",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A request the service could not serve, with the error-line ingredients.
#[derive(Debug, Clone)]
pub struct ProtocolError {
    /// The request id when one was recoverable (echoed as `"id":null`
    /// otherwise, e.g. on a parse error).
    pub id: Option<String>,
    /// The error class token.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

/// The parameters shared by the solver-backed operations.
#[derive(Debug, Clone)]
pub struct Query {
    /// Case name (`ieee14`, `ieee300`, ...) or a case-file path readable
    /// by the server process.
    pub case: String,
    /// Scenario text in the `sta` scenario grammar; empty means the
    /// unconstrained scenario (the CLI's `-`).
    pub scenario: String,
    /// Certification level; part of the session cache key.
    pub certify: CertifyLevel,
    /// Per-request deadline in milliseconds, overriding the scenario
    /// file's own `timeout-ms`.
    pub timeout_ms: Option<u64>,
    /// Synthesis resource budget (number of securable buses).
    pub budget: Option<usize>,
    /// Synthesis: reuse one incremental core across CEGIS checks.
    pub incremental: bool,
    /// Campaign: worker threads for the nested sweep.
    pub workers: usize,
    /// Emit the trailing `timing` object (default true; set false for
    /// byte-deterministic responses).
    pub timing: bool,
    /// Interleave `trace` lines (phase counters) before the response.
    pub trace: bool,
}

/// The exposition format of a `metrics` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The schema-versioned `sta-metrics/v1` JSON object (the default).
    Json,
    /// Prometheus text exposition, carried as an escaped `body` string.
    Prometheus,
}

/// The operation a request asks for.
#[derive(Debug, Clone)]
pub enum Op {
    /// Liveness probe, answered inline.
    Ping,
    /// Service counters (sessions, admissions), answered inline.
    Stats,
    /// A full telemetry snapshot, answered inline.
    Metrics {
        /// Requested exposition format.
        format: MetricsFormat,
    },
    /// A subscription: the connection receives a telemetry snapshot every
    /// `interval_ms` until the client disconnects or the server drains.
    Watch {
        /// Snapshot cadence in milliseconds (strictly positive).
        interval_ms: u64,
    },
    /// Graceful drain: stop admitting, finish or cancel in-flight work,
    /// then stop the listener. `drain_ms` overrides the server default.
    Shutdown {
        /// Drain deadline override in milliseconds.
        drain_ms: Option<u64>,
    },
    /// One attack-feasibility check (§IV of the paper).
    Verify(Query),
    /// One countermeasure synthesis (CEGIS loop, §V).
    Synthesize(Query),
    /// The standard verification sweep over one case.
    Campaign(Query),
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id echoed on every line emitted for this request.
    pub id: String,
    /// What to do.
    pub op: Op,
}

fn field_error(id: &str, message: String) -> ProtocolError {
    ProtocolError {
        id: Some(id.to_string()),
        kind: ErrorKind::BadRequest,
        message,
    }
}

fn bool_field(json: &Json, id: &str, key: &str, default: bool) -> Result<bool, ProtocolError> {
    match json.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(field_error(id, format!("{key:?} must be a boolean"))),
    }
}

fn u64_field(json: &Json, id: &str, key: &str) -> Result<Option<u64>, ProtocolError> {
    match json.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| field_error(id, format!("{key:?} must be a non-negative integer"))),
    }
}

fn certify_field(json: &Json, id: &str) -> Result<CertifyLevel, ProtocolError> {
    match json.get("certify").map(Json::as_str) {
        None => Ok(CertifyLevel::Off),
        Some(Some("off")) => Ok(CertifyLevel::Off),
        Some(Some("models")) => Ok(CertifyLevel::CheckModels),
        Some(Some("full")) => Ok(CertifyLevel::Full),
        Some(other) => Err(field_error(
            id,
            format!("\"certify\" must be \"off\"|\"models\"|\"full\", got {other:?}"),
        )),
    }
}

fn query(json: &Json, id: &str) -> Result<Query, ProtocolError> {
    let case = json
        .get("case")
        .and_then(Json::as_str)
        .ok_or_else(|| field_error(id, "request needs a string \"case\"".into()))?
        .to_string();
    let scenario = match json.get("scenario") {
        None => String::new(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(field_error(id, "\"scenario\" must be a string".into())),
    };
    Ok(Query {
        case,
        scenario,
        certify: certify_field(json, id)?,
        timeout_ms: u64_field(json, id, "timeout_ms")?,
        budget: u64_field(json, id, "budget")?.map(|n| n as usize),
        incremental: bool_field(json, id, "incremental", true)?,
        workers: u64_field(json, id, "workers")?.unwrap_or(2) as usize,
        timing: bool_field(json, id, "timing", true)?,
        trace: bool_field(json, id, "trace", false)?,
    })
}

/// Parses one request line. Errors carry the request id whenever it was
/// recoverable so the error response still correlates with the request.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let json = parse(line).map_err(|e| ProtocolError {
        id: None,
        kind: ErrorKind::Parse,
        message: e.to_string(),
    })?;
    let id = match json.get("id").map(Json::as_str) {
        Some(Some(id)) => id.to_string(),
        _ => {
            return Err(ProtocolError {
                id: None,
                kind: ErrorKind::BadRequest,
                message: "request needs a string \"id\"".into(),
            })
        }
    };
    let op = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| field_error(&id, "request needs a string \"op\"".into()))?;
    let op = match op {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "metrics" => Op::Metrics {
            format: match json.get("format").map(Json::as_str) {
                None | Some(Some("json")) => MetricsFormat::Json,
                Some(Some("prometheus")) => MetricsFormat::Prometheus,
                Some(other) => {
                    return Err(field_error(
                        &id,
                        format!(
                            "\"format\" must be \"json\"|\"prometheus\", got {other:?}"
                        ),
                    ))
                }
            },
        },
        "watch" => {
            let interval_ms = u64_field(&json, &id, "interval_ms")?.unwrap_or(1000);
            if interval_ms == 0 {
                return Err(field_error(
                    &id,
                    "\"interval_ms\" must be a positive integer".into(),
                ));
            }
            Op::Watch { interval_ms }
        }
        "shutdown" => Op::Shutdown { drain_ms: u64_field(&json, &id, "drain_ms")? },
        "verify" => Op::Verify(query(&json, &id)?),
        "synthesize" => Op::Synthesize(query(&json, &id)?),
        "campaign" => Op::Campaign(query(&json, &id)?),
        other => {
            return Err(ProtocolError {
                id: Some(id),
                kind: ErrorKind::UnknownOp,
                message: format!("unknown op {other:?}"),
            })
        }
    };
    Ok(Request { id, op })
}

/// Opens a response line: `{"id":<id>,"type":"response","op":<op>` — the
/// caller appends payload keys and the closing brace.
pub fn response_head(id: &str, op: &str) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"id\":");
    escape_into(id, &mut out);
    out.push_str(",\"type\":\"response\",\"op\":");
    escape_into(op, &mut out);
    out
}

/// Renders a complete `error` line. `id` is `null` when the request was
/// too broken to recover one (the parse-error case).
pub fn error_line(id: Option<&str>, kind: ErrorKind, message: &str) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"id\":");
    match id {
        Some(id) => escape_into(id, &mut out),
        None => out.push_str("null"),
    }
    out.push_str(",\"type\":\"error\",\"error\":");
    escape_into(kind.token(), &mut out);
    out.push_str(",\"message\":");
    escape_into(message, &mut out);
    out.push('}');
    out
}

/// Wraps one telemetry-snapshot JSON object as an intermediate `watch`
/// line. Like `trace` lines, `watch` lines never terminate a request —
/// the subscription ends with a regular `response` line carrying the
/// final snapshot.
pub fn watch_line(id: &str, seq: u64, snapshot_json: &str) -> String {
    let mut out = String::with_capacity(256 + snapshot_json.len());
    out.push_str("{\"id\":");
    escape_into(id, &mut out);
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(",\"type\":\"watch\",\"seq\":{seq},\"metrics\":"),
    );
    out.push_str(snapshot_json);
    out.push('}');
    out
}

/// Wraps one [`TraceEvent`] as a request-tagged `trace` line.
pub fn trace_line(id: &str, event: &TraceEvent) -> String {
    let mut out = String::with_capacity(192);
    out.push_str("{\"id\":");
    escape_into(id, &mut out);
    out.push_str(",\"type\":\"trace\",\"event\":");
    out.push_str(&event.to_json());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_verify_request() {
        let line = "{\"id\":\"r1\",\"op\":\"verify\",\"case\":\"ieee14\",\
             \"scenario\":\"target-state 12\\n\",\"certify\":\"models\",\
             \"timeout_ms\":250,\"timing\":false,\"trace\":true}";
        let req = parse_request(line).expect("parses");
        assert_eq!(req.id, "r1");
        let Op::Verify(q) = req.op else { panic!("expected verify") };
        assert_eq!(q.case, "ieee14");
        assert_eq!(q.scenario, "target-state 12\n");
        assert_eq!(q.certify, CertifyLevel::CheckModels);
        assert_eq!(q.timeout_ms, Some(250));
        assert!(!q.timing);
        assert!(q.trace);
        assert!(q.incremental);
    }

    #[test]
    fn defaults_are_lenient() {
        let req = parse_request("{\"id\":\"a\",\"op\":\"verify\",\"case\":\"ieee14\",\"extra\":1}")
            .expect("unknown keys are ignored");
        let Op::Verify(q) = req.op else { panic!("expected verify") };
        assert!(q.scenario.is_empty());
        assert_eq!(q.certify, CertifyLevel::Off);
        assert_eq!(q.timeout_ms, None);
        assert!(q.timing);
        assert!(!q.trace);
    }

    #[test]
    fn u64_max_timeout_parses_unclamped() {
        // The protocol performs no range validation on timeout_ms — the
        // budget layer is what must survive the extreme value (regression
        // for the Instant-overflow panic in Budget::with_timeout).
        let req = parse_request(
            "{\"id\":\"t\",\"op\":\"verify\",\"case\":\"ieee14\",\
             \"timeout_ms\":18446744073709551615}",
        )
        .expect("parses");
        let Op::Verify(q) = req.op else { panic!("expected verify") };
        assert_eq!(q.timeout_ms, Some(u64::MAX));
    }

    #[test]
    fn metrics_and_watch_ops_parse_and_validate() {
        let req = parse_request("{\"id\":\"m\",\"op\":\"metrics\"}").expect("parses");
        let Op::Metrics { format } = req.op else { panic!("expected metrics") };
        assert_eq!(format, MetricsFormat::Json);
        let req = parse_request("{\"id\":\"m\",\"op\":\"metrics\",\"format\":\"prometheus\"}")
            .expect("parses");
        let Op::Metrics { format } = req.op else { panic!("expected metrics") };
        assert_eq!(format, MetricsFormat::Prometheus);
        let err = parse_request("{\"id\":\"m\",\"op\":\"metrics\",\"format\":\"xml\"}")
            .expect_err("unknown format");
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("prometheus"));

        let req = parse_request("{\"id\":\"w\",\"op\":\"watch\"}").expect("parses");
        let Op::Watch { interval_ms } = req.op else { panic!("expected watch") };
        assert_eq!(interval_ms, 1000);
        let req = parse_request("{\"id\":\"w\",\"op\":\"watch\",\"interval_ms\":50}")
            .expect("parses");
        let Op::Watch { interval_ms } = req.op else { panic!("expected watch") };
        assert_eq!(interval_ms, 50);
        let err = parse_request("{\"id\":\"w\",\"op\":\"watch\",\"interval_ms\":0}")
            .expect_err("zero interval");
        assert_eq!(err.kind, ErrorKind::BadRequest);
        let err = parse_request("{\"id\":\"w\",\"op\":\"watch\",\"interval_ms\":\"fast\"}")
            .expect_err("non-numeric interval");
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn watch_lines_are_tagged_and_never_final() {
        let line = watch_line("w1", 3, "{\"schema\":\"sta-metrics/v1\"}");
        assert_eq!(
            line,
            "{\"id\":\"w1\",\"type\":\"watch\",\"seq\":3,\
             \"metrics\":{\"schema\":\"sta-metrics/v1\"}}"
        );
        assert!(!crate::client::is_final(&line));
    }

    #[test]
    fn parse_error_has_no_id() {
        let err = parse_request("not json").expect_err("must fail");
        assert_eq!(err.kind, ErrorKind::Parse);
        assert!(err.id.is_none());
    }

    #[test]
    fn unknown_op_keeps_the_id() {
        let err = parse_request("{\"id\":\"x\",\"op\":\"fly\"}").expect_err("must fail");
        assert_eq!(err.kind, ErrorKind::UnknownOp);
        assert_eq!(err.id.as_deref(), Some("x"));
    }

    #[test]
    fn missing_id_or_case_is_bad_request() {
        let err = parse_request("{\"op\":\"ping\"}").expect_err("id required");
        assert_eq!(err.kind, ErrorKind::BadRequest);
        let err =
            parse_request("{\"id\":\"x\",\"op\":\"verify\"}").expect_err("case required");
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert_eq!(err.id.as_deref(), Some("x"));
    }

    #[test]
    fn wire_lines_escape_and_tag() {
        let err = error_line(None, ErrorKind::Parse, "bad \"line\"");
        assert_eq!(
            err,
            "{\"id\":null,\"type\":\"error\",\"error\":\"parse\",\
             \"message\":\"bad \\\"line\\\"\"}"
        );
        let head = response_head("r\"1", "verify");
        assert!(head.starts_with("{\"id\":\"r\\\"1\",\"type\":\"response\""));
        let trace = trace_line(
            "r1",
            &TraceEvent::JobEnd { job: 0, verdict: "sat".into(), wall_us: 7 },
        );
        assert!(trace.starts_with("{\"id\":\"r1\",\"type\":\"trace\",\"event\":{"));
        assert!(trace.ends_with("}}"));
    }
}
