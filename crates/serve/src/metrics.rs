//! Service telemetry: per-op counters, gauges and latency histograms.
//!
//! The registry is the service's always-on measurement plane: every
//! request increments lock-free atomic counters, and (unless telemetry is
//! disabled) records its end-to-end latency and its queue wait —
//! admission to worker pickup — into per-op
//! [`LatencyHistogram`]s. Snapshots fold in the point-in-time gauges the
//! server owns (queue depth, worker occupancy, session-cache
//! temperature) and render in two exposition formats:
//!
//! * **`sta-metrics/v1` JSON** — one schema-versioned object, embedded in
//!   `metrics`/`watch` response lines and consumed by `sta top`;
//! * **Prometheus text exposition** — `# HELP`/`# TYPE`-disciplined
//!   families with static label tokens, for scrape-based collection.
//!
//! Everything here is strictly observational: counters and clocks never
//! feed back into solver results, so the service's byte-determinism
//! contract (`"timing":false` responses identical across worker counts)
//! is unaffected by telemetry being on or off. All timing flows through
//! the injected [`sta_smt::Clock`] readings the server already takes —
//! this module never reads a wall clock itself.

use crate::protocol::ErrorKind;
use sta_campaign::LatencyHistogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The metrics-snapshot schema version tag.
pub const SCHEMA: &str = "sta-metrics/v1";

/// Locks a histogram mutex, shrugging off poisoning: histograms are
/// update-complete at every release (one `record` call), so a panicking
/// sibling cannot leave one half-written.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The operations the registry keys its counters by — every protocol op,
/// in the fixed serialization order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricOp {
    /// Liveness probe.
    Ping,
    /// The enriched `stats` line.
    Stats,
    /// A metrics-snapshot request.
    Metrics,
    /// A `watch` subscription.
    Watch,
    /// Graceful drain.
    Shutdown,
    /// One attack-feasibility check.
    Verify,
    /// One countermeasure synthesis.
    Synthesize,
    /// The standard verification sweep.
    Campaign,
}

impl MetricOp {
    /// Every op, in serialization order.
    pub const ALL: [MetricOp; 8] = [
        MetricOp::Ping,
        MetricOp::Stats,
        MetricOp::Metrics,
        MetricOp::Watch,
        MetricOp::Shutdown,
        MetricOp::Verify,
        MetricOp::Synthesize,
        MetricOp::Campaign,
    ];

    /// Stable lowercase token used in both exposition formats.
    pub fn token(self) -> &'static str {
        match self {
            MetricOp::Ping => "ping",
            MetricOp::Stats => "stats",
            MetricOp::Metrics => "metrics",
            MetricOp::Watch => "watch",
            MetricOp::Shutdown => "shutdown",
            MetricOp::Verify => "verify",
            MetricOp::Synthesize => "synthesize",
            MetricOp::Campaign => "campaign",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The error-kind tokens counted by the taxonomy counters, in
/// serialization order (mirrors [`ErrorKind::token`]).
const ERROR_KINDS: [ErrorKind; 6] = [
    ErrorKind::Parse,
    ErrorKind::BadRequest,
    ErrorKind::UnknownOp,
    ErrorKind::Overloaded,
    ErrorKind::Draining,
    ErrorKind::Internal,
];

fn error_index(kind: ErrorKind) -> usize {
    match kind {
        ErrorKind::Parse => 0,
        ErrorKind::BadRequest => 1,
        ErrorKind::UnknownOp => 2,
        ErrorKind::Overloaded => 3,
        ErrorKind::Draining => 4,
        ErrorKind::Internal => 5,
    }
}

/// Per-op counters and histograms.
#[derive(Debug, Default)]
struct OpMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Mutex<LatencyHistogram>,
    queue_wait: Mutex<LatencyHistogram>,
}

/// The live measurement plane: atomic counters incremented on every
/// request plus per-op latency/queue-wait histograms. One instance lives
/// in the server state for the whole service lifetime.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Clock reading at service start (for uptime).
    started: Duration,
    /// Whether histograms record (counters always do). The bench suite's
    /// overhead pair boots a server with this off.
    telemetry: bool,
    ops: [OpMetrics; 8],
    errors: [AtomicU64; 6],
    rejected: AtomicU64,
    cancelled: AtomicU64,
    /// Workers currently executing a solver-backed job (gauge).
    busy: AtomicU64,
}

impl MetricsRegistry {
    /// A fresh registry; `now` is the injected clock's reading at service
    /// start and anchors uptime.
    pub fn new(telemetry: bool, now: Duration) -> Self {
        MetricsRegistry {
            started: now,
            telemetry,
            ops: Default::default(),
            errors: Default::default(),
            rejected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            busy: AtomicU64::new(0),
        }
    }

    /// Whether histogram recording is enabled.
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    /// Counts one request for `op`.
    pub fn record_request(&self, op: MetricOp) {
        self.ops[op.index()].requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one error of `kind` attributed to `op`.
    pub fn record_error(&self, op: MetricOp, kind: ErrorKind) {
        self.ops[op.index()].errors.fetch_add(1, Ordering::Relaxed);
        self.record_protocol_error(kind);
    }

    /// Counts one error of `kind` with no attributable op (parse errors,
    /// unknown ops).
    pub fn record_protocol_error(&self, kind: ErrorKind) {
        self.errors[error_index(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one admission rejection (overloaded or draining).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one job cancelled by drain (verdict `unknown(cancelled)`).
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the end-to-end latency of one `op` request.
    pub fn record_latency(&self, op: MetricOp, wall: Duration) {
        if self.telemetry {
            lock(&self.ops[op.index()].latency).record(wall);
        }
    }

    /// Records one admission→worker-pickup wait for `op`.
    pub fn record_queue_wait(&self, op: MetricOp, wait: Duration) {
        if self.telemetry {
            lock(&self.ops[op.index()].queue_wait).record(wait);
        }
    }

    /// Marks a worker busy (a solver-backed job started).
    pub fn job_begin(&self) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a worker idle again (the job finished).
    pub fn job_end(&self) {
        self.busy.fetch_sub(1, Ordering::Relaxed);
    }

    /// Freezes the registry together with the server-owned gauges into a
    /// renderable snapshot; `now` is the clock reading of the snapshot.
    pub fn snapshot(&self, now: Duration, service: ServiceGauges) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_us: now.saturating_sub(self.started).as_micros() as u64,
            telemetry: self.telemetry,
            service,
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            errors: ERROR_KINDS
                .iter()
                .enumerate()
                .map(|(i, k)| (k.token(), self.errors[i].load(Ordering::Relaxed)))
                .collect(),
            ops: MetricOp::ALL
                .iter()
                .map(|op| OpSnapshot {
                    op: op.token(),
                    requests: self.ops[op.index()].requests.load(Ordering::Relaxed),
                    errors: self.ops[op.index()].errors.load(Ordering::Relaxed),
                    latency: lock(&self.ops[op.index()].latency).clone(),
                    queue_wait: lock(&self.ops[op.index()].queue_wait).clone(),
                })
                .collect(),
        }
    }
}

/// The point-in-time gauges the server owns (pool, cache, admission
/// totals), read at snapshot time rather than tracked by the registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceGauges {
    /// Solver worker threads.
    pub workers: u64,
    /// Jobs queued but not yet picked up.
    pub queue_depth: u64,
    /// Admission bound.
    pub queue_capacity: u64,
    /// Whether the service is draining toward shutdown.
    pub draining: bool,
    /// Request lines received (including malformed ones).
    pub requests: u64,
    /// Live warm sessions.
    pub sessions_live: u64,
    /// Session-cache capacity.
    pub sessions_capacity: u64,
    /// Session-cache hits.
    pub session_hits: u64,
    /// Session-cache misses.
    pub session_misses: u64,
    /// Session-cache evictions.
    pub session_evictions: u64,
}

/// One op's frozen counters and histograms.
#[derive(Debug, Clone)]
pub struct OpSnapshot {
    /// The op token.
    pub op: &'static str,
    /// Requests received.
    pub requests: u64,
    /// Errors answered.
    pub errors: u64,
    /// End-to-end latency histogram.
    pub latency: LatencyHistogram,
    /// Admission→pickup wait histogram (solver-backed ops only).
    pub queue_wait: LatencyHistogram,
}

/// A frozen, renderable view of the whole telemetry plane.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Microseconds since service start.
    pub uptime_us: u64,
    /// Whether histogram recording was enabled.
    pub telemetry: bool,
    /// The server-owned gauges.
    pub service: ServiceGauges,
    /// Admission rejections (overloaded + draining).
    pub rejected: u64,
    /// Jobs cancelled by drain.
    pub cancelled: u64,
    /// Workers executing a solver-backed job right now.
    pub busy: u64,
    /// Error counts by taxonomy token, in serialization order.
    pub errors: Vec<(&'static str, u64)>,
    /// Per-op counters and histograms, in serialization order.
    pub ops: Vec<OpSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as one `sta-metrics/v1` JSON object. Key
    /// order is fixed; every token is a static identifier, so no string
    /// escaping is needed.
    pub fn to_json_into(&self, out: &mut String) {
        let s = &self.service;
        let _ = write!(
            out,
            "{{\"schema\":\"{SCHEMA}\",\"uptime_us\":{},\"telemetry\":{},\
             \"workers\":{},\"busy\":{},\"queue_depth\":{},\"queue_capacity\":{},\
             \"draining\":{},\"requests\":{},\"rejected\":{},\"cancelled\":{}",
            self.uptime_us,
            self.telemetry,
            s.workers,
            self.busy,
            s.queue_depth,
            s.queue_capacity,
            s.draining,
            s.requests,
            self.rejected,
            self.cancelled,
        );
        let _ = write!(
            out,
            ",\"sessions\":{{\"live\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\
             \"evictions\":{}}}",
            s.sessions_live,
            s.sessions_capacity,
            s.session_hits,
            s.session_misses,
            s.session_evictions,
        );
        out.push_str(",\"errors\":{");
        for (i, (token, n)) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{token}\":{n}");
        }
        out.push_str("},\"ops\":{");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"requests\":{},\"errors\":{},\"latency\":",
                op.op, op.requests, op.errors,
            );
            op.latency.to_json_into(out);
            out.push_str(",\"queue_wait\":");
            op.queue_wait.to_json_into(out);
            out.push('}');
        }
        out.push_str("}}");
    }

    /// The JSON form as a fresh string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.to_json_into(&mut out);
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// each family announced by `# HELP` and `# TYPE` lines, percentile
    /// series as gauges (the bucket-derived values are point estimates,
    /// not summable summary quantiles). Labels are static tokens, so the
    /// output needs no label-value escaping.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let s = &self.service;
        gauge(&mut out, "sta_uptime_seconds", "Seconds since service start.", &[(
            String::new(),
            format!("{:.6}", self.uptime_us as f64 / 1e6),
        )]);
        gauge(&mut out, "sta_workers", "Solver worker threads.", &[(
            String::new(),
            s.workers.to_string(),
        )]);
        gauge(&mut out, "sta_busy_workers", "Workers executing a job right now.", &[(
            String::new(),
            self.busy.to_string(),
        )]);
        gauge(&mut out, "sta_queue_depth", "Jobs admitted but not yet started.", &[(
            String::new(),
            s.queue_depth.to_string(),
        )]);
        gauge(&mut out, "sta_queue_capacity", "Admission bound of the queue.", &[(
            String::new(),
            s.queue_capacity.to_string(),
        )]);
        gauge(&mut out, "sta_draining", "1 while the service drains toward shutdown.", &[(
            String::new(),
            if s.draining { "1" } else { "0" }.to_string(),
        )]);
        gauge(&mut out, "sta_sessions_live", "Warm sessions held live.", &[(
            String::new(),
            s.sessions_live.to_string(),
        )]);
        gauge(&mut out, "sta_sessions_capacity", "Session-cache capacity.", &[(
            String::new(),
            s.sessions_capacity.to_string(),
        )]);
        counter(&mut out, "sta_session_hits_total", "Session-cache hits.", &[(
            String::new(),
            s.session_hits.to_string(),
        )]);
        counter(&mut out, "sta_session_misses_total", "Session-cache misses.", &[(
            String::new(),
            s.session_misses.to_string(),
        )]);
        counter(&mut out, "sta_session_evictions_total", "Session-cache evictions.", &[(
            String::new(),
            s.session_evictions.to_string(),
        )]);
        counter(&mut out, "sta_rejected_total", "Requests rejected by admission control.", &[(
            String::new(),
            self.rejected.to_string(),
        )]);
        counter(&mut out, "sta_cancelled_total", "Jobs cancelled by drain.", &[(
            String::new(),
            self.cancelled.to_string(),
        )]);
        counter(
            &mut out,
            "sta_requests_total",
            "Requests received, by op.",
            &self
                .ops
                .iter()
                .map(|op| (format!("{{op=\"{}\"}}", op.op), op.requests.to_string()))
                .collect::<Vec<_>>(),
        );
        counter(
            &mut out,
            "sta_op_errors_total",
            "Errors answered, by op.",
            &self
                .ops
                .iter()
                .map(|op| (format!("{{op=\"{}\"}}", op.op), op.errors.to_string()))
                .collect::<Vec<_>>(),
        );
        counter(
            &mut out,
            "sta_errors_total",
            "Errors answered, by taxonomy kind.",
            &self
                .errors
                .iter()
                .map(|(token, n)| (format!("{{kind=\"{token}\"}}"), n.to_string()))
                .collect::<Vec<_>>(),
        );
        let mut latency_series = Vec::new();
        let mut wait_series = Vec::new();
        let mut latency_counts = Vec::new();
        for op in &self.ops {
            for (p, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                latency_series.push((
                    format!("{{op=\"{}\",quantile=\"{label}\"}}", op.op),
                    op.latency.percentile(p).to_string(),
                ));
                wait_series.push((
                    format!("{{op=\"{}\",quantile=\"{label}\"}}", op.op),
                    op.queue_wait.percentile(p).to_string(),
                ));
            }
            latency_counts.push((
                format!("{{op=\"{}\"}}", op.op),
                op.latency.count().to_string(),
            ));
        }
        gauge(
            &mut out,
            "sta_latency_us",
            "End-to-end request latency percentiles, microseconds.",
            &latency_series,
        );
        counter(
            &mut out,
            "sta_latency_samples_total",
            "Samples in the latency histograms.",
            &latency_counts,
        );
        gauge(
            &mut out,
            "sta_queue_wait_us",
            "Admission-to-pickup wait percentiles, microseconds.",
            &wait_series,
        );
        out
    }
}

/// Emits one metric family: `# HELP`, `# TYPE`, then every series.
fn family(out: &mut String, name: &str, kind: &str, help: &str, series: &[(String, String)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (labels, value) in series {
        let _ = writeln!(out, "{name}{labels} {value}");
    }
}

fn gauge(out: &mut String, name: &str, help: &str, series: &[(String, String)]) {
    family(out, name, "gauge", help, series);
}

fn counter(out: &mut String, name: &str, help: &str, series: &[(String, String)]) {
    family(out, name, "counter", help, series);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sta_smt::json::parse;

    fn snapshot(reg: &MetricsRegistry) -> MetricsSnapshot {
        reg.snapshot(Duration::from_micros(500), ServiceGauges::default())
    }

    #[test]
    fn counters_are_exact_across_threads() {
        let reg = MetricsRegistry::new(true, Duration::ZERO);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        reg.record_request(MetricOp::Verify);
                        reg.record_latency(MetricOp::Verify, Duration::from_micros(100));
                    }
                });
            }
        });
        let snap = snapshot(&reg);
        let verify = snap.ops.iter().find(|o| o.op == "verify").expect("verify op");
        assert_eq!(verify.requests, 8000);
        assert_eq!(verify.latency.count(), 8000);
    }

    #[test]
    fn telemetry_off_keeps_counters_but_not_histograms() {
        let reg = MetricsRegistry::new(false, Duration::ZERO);
        reg.record_request(MetricOp::Ping);
        reg.record_latency(MetricOp::Ping, Duration::from_micros(5));
        reg.record_queue_wait(MetricOp::Ping, Duration::from_micros(5));
        let snap = snapshot(&reg);
        let ping = snap.ops.iter().find(|o| o.op == "ping").expect("ping op");
        assert_eq!(ping.requests, 1);
        assert!(ping.latency.is_empty());
        assert!(ping.queue_wait.is_empty());
        assert!(!snap.telemetry);
    }

    #[test]
    fn json_snapshot_is_schema_tagged_and_parses() {
        let reg = MetricsRegistry::new(true, Duration::from_micros(100));
        reg.record_request(MetricOp::Verify);
        reg.record_error(MetricOp::Verify, ErrorKind::BadRequest);
        reg.record_rejected();
        reg.record_cancelled();
        reg.job_begin();
        let snap = reg.snapshot(
            Duration::from_micros(700),
            ServiceGauges {
                workers: 4,
                queue_depth: 2,
                queue_capacity: 32,
                draining: false,
                requests: 9,
                sessions_live: 1,
                sessions_capacity: 8,
                session_hits: 3,
                session_misses: 2,
                session_evictions: 0,
            },
        );
        let json = snap.to_json();
        let doc = parse(&json).expect("snapshot is valid JSON");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        assert_eq!(doc.get("uptime_us").and_then(|v| v.as_u64()), Some(600));
        assert_eq!(doc.get("workers").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(doc.get("busy").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("rejected").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("cancelled").and_then(|v| v.as_u64()), Some(1));
        let errors = doc.get("errors").expect("errors object");
        assert_eq!(errors.get("bad-request").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(errors.get("parse").and_then(|v| v.as_u64()), Some(0));
        let ops = doc.get("ops").expect("ops object");
        let verify = ops.get("verify").expect("verify op");
        assert_eq!(verify.get("requests").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(verify.get("errors").and_then(|v| v.as_u64()), Some(1));
        assert!(verify.get("latency").is_some());
        assert!(verify.get("queue_wait").is_some());
        let sessions = doc.get("sessions").expect("sessions object");
        assert_eq!(sessions.get("hits").and_then(|v| v.as_u64()), Some(3));
    }

    #[test]
    fn prometheus_exposition_keeps_line_discipline() {
        let reg = MetricsRegistry::new(true, Duration::ZERO);
        reg.record_request(MetricOp::Verify);
        reg.record_latency(MetricOp::Verify, Duration::from_micros(123));
        let text = snapshot(&reg).to_prometheus();
        let mut announced: Vec<&str> = Vec::new();
        let mut last_help: Option<&str> = None;
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in the exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().expect("family name");
                assert!(rest.len() > name.len() + 1, "HELP has text: {line}");
                last_help = Some(name);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("family name");
                let kind = parts.next().expect("family kind");
                // TYPE directly follows its family's HELP.
                assert_eq!(last_help, Some(name), "TYPE without preceding HELP: {line}");
                assert!(kind == "counter" || kind == "gauge", "{line}");
                assert!(!announced.contains(&name), "family announced twice: {name}");
                announced.push(name);
            } else {
                // A series line: `name{labels} value` or `name value`,
                // under the most recently announced family.
                let name_end = line.find(['{', ' ']).expect("series has a name");
                let name = &line[..name_end];
                assert_eq!(announced.last(), Some(&name), "series out of family: {line}");
                let value = line.rsplit(' ').next().expect("series has a value");
                assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
            }
        }
        for required in [
            "sta_uptime_seconds",
            "sta_requests_total",
            "sta_errors_total",
            "sta_latency_us",
            "sta_queue_wait_us",
            "sta_queue_depth",
        ] {
            assert!(announced.contains(&required), "missing family {required}");
        }
        assert!(text.contains("sta_requests_total{op=\"verify\"} 1"));
    }

    #[test]
    fn busy_gauge_tracks_begin_end() {
        let reg = MetricsRegistry::new(true, Duration::ZERO);
        reg.job_begin();
        reg.job_begin();
        reg.job_end();
        assert_eq!(snapshot(&reg).busy, 1);
    }
}
