//! The one-shot client: send one request line, collect the reply.
//!
//! `sta client` is a thin shell over [`request`]: dial, write the line,
//! read until the line whose `type` is `response` or `error` (trace lines
//! stream in before it), and map the final line onto the CLI's exit-code
//! contract with [`exit_code`].

use crate::net;
use sta_smt::json::{parse, Json};
use std::io::{BufRead, BufReader, Write as _};

/// Sends one request line to `addr` and returns every line the service
/// emitted for it, the final `response`/`error` line last.
pub fn request(addr: &str, line: &str) -> Result<Vec<String>, String> {
    let mut stream =
        net::connect(addr).map_err(|e| format!("cannot connect to {addr:?}: {e}"))?;
    stream
        .write_all(line.as_bytes())
        .and_then(|_| stream.write_all(b"\n"))
        .and_then(|_| stream.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("connection failed mid-reply: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let done = is_final(&line);
        lines.push(line);
        if done {
            return Ok(lines);
        }
    }
    Err("connection closed before a response arrived".into())
}

/// Sends one request line to `addr` and hands every non-final reply line
/// to `on_line` as it arrives — the streaming interface `watch`
/// subscriptions and live dashboards need (a `watch` emits unboundedly
/// many lines, so collecting like [`request`] would never return).
/// Returns the final `response`/`error` line. `on_line` returning
/// `false` abandons the stream early: the connection drops, which the
/// server notices at its next write.
pub fn stream(
    addr: &str,
    line: &str,
    mut on_line: impl FnMut(&str) -> bool,
) -> Result<Option<String>, String> {
    let mut stream =
        net::connect(addr).map_err(|e| format!("cannot connect to {addr:?}: {e}"))?;
    stream
        .write_all(line.as_bytes())
        .and_then(|_| stream.write_all(b"\n"))
        .and_then(|_| stream.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    for line in reader.lines() {
        let line = line.map_err(|e| format!("connection failed mid-reply: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        if is_final(&line) {
            return Ok(Some(line));
        }
        if !on_line(&line) {
            return Ok(None);
        }
    }
    Err("connection closed before a response arrived".into())
}

/// Whether a reply line terminates the request (`type` is `response` or
/// `error`, as opposed to an interleaved `trace` line).
pub fn is_final(line: &str) -> bool {
    parse(line)
        .ok()
        .and_then(|json| {
            json.get("type")
                .and_then(Json::as_str)
                .map(|t| t == "response" || t == "error")
        })
        .unwrap_or(false)
}

/// Maps a final reply line onto the CLI exit-code contract:
/// 0 = sat / architecture / plain success, 1 = unsat / no-solution /
/// inconclusive, 2 = error, 3 = unknown (budget exhausted; campaigns
/// with any unknown job included).
pub fn exit_code(line: &str) -> u8 {
    let Ok(json) = parse(line) else { return 2 };
    match json.get("type").and_then(Json::as_str) {
        Some("response") => {}
        _ => return 2,
    }
    if let Some(verdict) = json.get("verdict").and_then(Json::as_str) {
        return match verdict {
            "sat" | "architecture" => 0,
            "unsat" | "no-solution" | "inconclusive" => 1,
            v if v.starts_with("unknown") => 3,
            _ => 2,
        };
    }
    if let Some(Json::Bool(true)) = json.get("any_unknown") {
        return 3;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_line_detection() {
        assert!(is_final("{\"id\":\"a\",\"type\":\"response\",\"op\":\"ping\",\"ok\":true}"));
        assert!(is_final("{\"id\":null,\"type\":\"error\",\"error\":\"parse\",\"message\":\"x\"}"));
        assert!(!is_final("{\"id\":\"a\",\"type\":\"trace\",\"event\":{}}"));
        assert!(!is_final("not json"));
    }

    #[test]
    fn exit_codes_mirror_the_cli() {
        let resp = |tail: &str| format!("{{\"id\":\"a\",\"type\":\"response\"{tail}}}");
        assert_eq!(exit_code(&resp(",\"verdict\":\"sat\"")), 0);
        assert_eq!(exit_code(&resp(",\"verdict\":\"architecture\"")), 0);
        assert_eq!(exit_code(&resp(",\"verdict\":\"unsat\"")), 1);
        assert_eq!(exit_code(&resp(",\"verdict\":\"no-solution\"")), 1);
        assert_eq!(exit_code(&resp(",\"verdict\":\"unknown(timeout)\"")), 3);
        assert_eq!(exit_code(&resp(",\"verdict\":\"unknown(cancelled)\"")), 3);
        assert_eq!(exit_code(&resp(",\"ok\":true")), 0);
        assert_eq!(exit_code(&resp(",\"any_unknown\":true")), 3);
        assert_eq!(exit_code(&resp(",\"any_unknown\":false")), 0);
        assert_eq!(
            exit_code("{\"id\":\"a\",\"type\":\"error\",\"error\":\"overloaded\",\"message\":\"\"}"),
            2
        );
        assert_eq!(exit_code("garbage"), 2);
    }
}
