//! Persistent threat-analytics service.
//!
//! The one-shot CLI pays the full pipeline on every invocation: load the
//! case, build the DC operating point, encode the base attack semantics,
//! then solve. For interactive workflows — a dashboard probing dozens of
//! scenarios against one grid, a CI loop re-checking a scenario corpus —
//! that re-encoding dominates end-to-end latency. This crate keeps the
//! expensive state alive across requests:
//!
//! * **Protocol** ([`protocol`]): one JSON object per line (JSONL) over a
//!   TCP or unix-domain socket, request/response with optional
//!   interleaved trace events, every line tagged with the request `id`.
//!   A malformed line yields a structured `error` response, never a
//!   disconnect.
//! * **Warm session cache** ([`cache`]): live
//!   [`sta_core::attack::VerifySession`] cores keyed by
//!   `(case, topology, certify)` in an LRU checkout cache. A warm hit
//!   reuses the retained base encoding — learned clauses and the warmed
//!   simplex basis included — so only the scenario delta is paid.
//! * **Admission control** ([`server`]): requests run on a persistent
//!   work-stealing [`sta_campaign::ServicePool`] with a bounded queue;
//!   past capacity the service answers `overloaded` instead of queueing
//!   unboundedly. Per-request deadlines become [`sta_smt::Budget`]s with
//!   cancel tokens, so a graceful drain can cut stragglers loose.
//! * **Telemetry** ([`metrics`]): an always-on measurement plane —
//!   per-op atomic counters, latency and queue-wait histograms, error
//!   taxonomy counts — snapshotted as schema-versioned `sta-metrics/v1`
//!   JSON or Prometheus text via the `metrics` op, folded into an
//!   enriched `stats`, and streamed periodically over `watch`
//!   subscriptions. Campaign requests with `trace:true` stream per-job
//!   progress events live instead of reporting only at the end.
//! * **Client** ([`client`]): the one-shot helper behind `sta client` —
//!   send one request line, collect trace lines until the matching
//!   response, map the verdict onto the CLI's exit codes.
//! * **Dashboard** ([`top`]): the terminal renderer behind `sta top` —
//!   queue depth, worker occupancy, cache temperature and per-op
//!   latency percentiles over a `watch` stream.
//! * **Bench** ([`bench`]): the `sta bench --suite serve` harness pinning
//!   warm-vs-cold request latency in the perf trajectory.
//!
//! Determinism mirrors the campaign contract: with `"timing":false` a
//! response depends only on the request, not on worker count, scheduling,
//! or cache temperature — the service integration tests compare response
//! bytes across `--jobs 1` and `--jobs 4` to pin this down.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(missing_docs)]

pub mod bench;
pub mod cache;
pub mod client;
pub mod metrics;
pub mod net;
pub mod protocol;
pub mod server;
pub mod top;

pub use cache::{SessionCache, SessionKey};
pub use metrics::{MetricOp, MetricsRegistry, MetricsSnapshot, ServiceGauges};
pub use protocol::{ErrorKind, MetricsFormat, Op, ProtocolError, Query, Request};
pub use server::{spawn, ServeConfig, Server, ServerHandle};
